"""Ensure the in-repo sources are importable even without `pip install -e .`.

Offline environments cannot always run pip's isolated build; adding ``src``
to ``sys.path`` keeps `pytest tests/` and `pytest benchmarks/` self-contained.
"""
import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
