"""Setup shim so editable installs work in offline environments.

The canonical project metadata lives in pyproject.toml; this file exists so
that `pip install -e .` succeeds without network access (legacy setup.py
develop path, no wheel package required).
"""
from setuptools import setup

setup()
