#!/usr/bin/env python3
"""Couple the resource manager with actual federated training.

Demonstrates the two accuracy-facing behaviours the paper reports:

1. *Contention hurts accuracy* (Figure 4): evenly partitioning a fixed client
   population across more concurrent jobs shrinks each job's participant
   diversity and lowers its round-to-accuracy curve.
2. *Venn speeds up convergence without changing final accuracy* (Figure 9):
   the scheduler only changes when rounds complete, so accuracy-over-time
   improves while accuracy-per-round is untouched.

Run with::

    python examples/federated_training.py
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.experiments import get_config
from repro.experiments.accuracy import (
    figure4_contention_accuracy,
    figure9_accuracy_over_time,
    final_accuracy_by_policy,
)


def contention_study() -> None:
    curves = figure4_contention_accuracy(
        job_counts=(1, 5, 10, 20), num_rounds=20, num_clients=200, clients_per_round=20
    )
    rows = [
        [k, series[4], series[-1]] for k, series in sorted(curves.items())
    ]
    print(
        format_table(
            ["concurrent jobs", "accuracy @ round 5", "final accuracy"],
            rows,
            precision=3,
            title="Contention study (Figure 4): more jobs sharing the pool",
        )
    )
    print()


def accuracy_over_time_study() -> None:
    config = get_config("quick", seed=7)
    times, curves = figure9_accuracy_over_time(
        config, policies=("fifo", "srsf", "venn"), num_time_points=13
    )
    print(
        format_series(
            [t / 3600.0 for t in times],
            curves,
            x_label="time (h)",
            title="Accuracy over wall-clock time per policy (Figure 9)",
        )
    )
    finals = final_accuracy_by_policy(curves)
    print()
    print(
        format_table(
            ["policy", "final accuracy"],
            [[k, v] for k, v in finals.items()],
            precision=3,
            title="Final accuracy is policy-independent",
        )
    )


def main() -> None:
    contention_study()
    accuracy_over_time_study()


if __name__ == "__main__":
    main()
