#!/usr/bin/env python3
"""Quickstart: share one device pool among CL jobs under different schedulers.

Builds a small simulated environment (synthetic device capacity +
availability traces, a workload of CL jobs sampled from the demand trace),
runs it under random matching, FIFO, SRSF and Venn, and prints the average
job completion time (JCT) and its breakdown for each policy.

Run with::

    python examples/quickstart.py [--preset quick|default] [--seed 7]
"""

from __future__ import annotations

import argparse

from repro.analysis.report import format_table
from repro.analysis.stats import summarize_run
from repro.experiments import build_environment, get_config, run_policies

POLICIES = ("random", "fifo", "srsf", "venn")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="quick", choices=["quick", "default"])
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = get_config(args.preset, seed=args.seed)
    print(
        f"Building environment: {config.num_devices} devices, "
        f"{config.num_jobs} jobs, horizon {config.horizon / 3600:.0f} h"
    )
    env = build_environment(config)
    print(
        f"Workload total demand: {env.workload.total_demand} device-participations; "
        f"{len(env.availability.sessions)} availability sessions\n"
    )

    results = run_policies(env, POLICIES)
    baseline = results["random"].average_jct

    rows = []
    for name in POLICIES:
        metrics = results[name]
        summary = summarize_run(metrics)
        rows.append(
            [
                name,
                summary["average_jct"] / 3600.0,
                baseline / max(metrics.average_jct, 1e-9),
                summary["completion_rate"],
                summary["average_scheduling_delay"],
                summary["average_response_time"],
                int(summary["total_aborts"]),
            ]
        )
    print(
        format_table(
            [
                "policy",
                "avg JCT (h)",
                "speed-up vs random",
                "completion rate",
                "avg sched delay (s)",
                "avg response (s)",
                "aborted rounds",
            ],
            rows,
            title="End-to-end comparison of CL resource managers",
        )
    )


if __name__ == "__main__":
    main()
