"""Million-device simulation on the coordinator/shard engine.

Runs one contended scenario with ``num_shards=os.cpu_count()`` device
shards and prints the per-shard event counts plus the shard/coordinator
wall-time split.  The sharded engine makes bit-identical decisions for any
shard count (add ``--verify`` to prove it against the single-queue engine
— it roughly doubles the runtime).

At the default million-device scale this takes a few minutes; use
``--devices 50000`` for a quick look.

Usage::

    PYTHONPATH=src python examples/sharded_scale.py [--devices N]
        [--num-shards K] [--hours H] [--verify]
"""

from __future__ import annotations

import argparse
import os
import time

from repro.core.baselines import make_policy
from repro.sim.engine import SimulationConfig, Simulator
from repro.sim.latency import LatencyConfig
from repro.traces.capacity import CapacitySampler
from repro.traces.device_trace import DiurnalAvailabilityModel, DiurnalConfig
from repro.traces.workloads import WorkloadConfig, WorkloadGenerator


def build_environment(num_devices: int, num_jobs: int, horizon: float,
                      seed: int):
    print(f"building environment: {num_devices:,} devices, {num_jobs} jobs ...")
    t0 = time.perf_counter()
    devices = CapacitySampler(seed=seed).sample_devices(num_devices)
    trace = DiurnalAvailabilityModel(
        DiurnalConfig(horizon=horizon), seed=seed + 1
    ).generate(num_devices)
    workload = WorkloadGenerator(
        WorkloadConfig(
            num_jobs=num_jobs,
            demand_scale=0.5,
            min_demand=5,
            max_demand=max(10, num_devices // 10),
            rounds_scale=0.5,
            max_rounds=25,
            mean_interarrival=max(60.0, horizon / (2.0 * num_jobs)),
        ),
        seed=seed + 2,
    ).generate()
    print(f"  environment ready in {time.perf_counter() - t0:.1f} s "
          f"({len(trace.sessions):,} availability sessions)")
    return devices, trace, workload


def run_once(devices, trace, workload, horizon: float, seed: int,
             num_shards: int):
    policy = make_policy("venn", seed=seed)
    config = SimulationConfig(
        horizon=horizon,
        seed=seed,
        latency=LatencyConfig(),
        max_events=500_000_000,
        num_shards=num_shards,
        profile_shards=num_shards > 1,
    )
    sim = Simulator(devices, trace, workload, policy, config)
    t0 = time.perf_counter()
    metrics = sim.run()
    wall = time.perf_counter() - t0
    return sim, metrics, wall


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=1_000_000)
    parser.add_argument("--jobs", type=int, default=50)
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--num-shards", type=int,
                        default=max(1, os.cpu_count() or 1),
                        help="device shards (default: one per CPU core)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--verify", action="store_true",
                        help="also run the single-queue engine and assert "
                             "bit-identical outcomes")
    args = parser.parse_args()

    horizon = args.hours * 3600.0
    devices, trace, workload = build_environment(
        args.devices, args.jobs, horizon, args.seed
    )

    print(f"\nrunning sharded engine with num_shards={args.num_shards} ...")
    sim, metrics, wall = run_once(
        devices, trace, workload, horizon, args.seed, args.num_shards
    )
    events = sim.events_processed
    print(f"  {events:,} events in {wall:.1f} s "
          f"({events / wall:,.0f} events/s), "
          f"completion rate {metrics.completion_rate:.2f}, "
          f"average JCT {metrics.average_jct / 3600.0:.2f} h")

    stats = sim.shard_stats()
    if stats:
        shard_time = sum(s["drain_time_s"] for s in stats)
        print(f"\nper-shard / coordinator time split "
              f"(shard drains {shard_time:.1f} s, coordinator "
              f"{max(0.0, wall - shard_time):.1f} s of {wall:.1f} s wall):")
        header = (f"  {'shard':>5} {'devices':>9} {'events':>10} "
                  f"{'checkins':>9} {'responses':>9} {'assignments':>11} "
                  f"{'drain s':>8} {'plan ver':>8}")
        print(header)
        for s in stats:
            print(f"  {s['shard']:>5} {s['devices']:>9,} "
                  f"{s['events_processed']:>10,} {s['checkins']:>9,} "
                  f"{s['responses']:>9,} {s['assignments_received']:>11,} "
                  f"{s['drain_time_s']:>8.1f} "
                  f"{str(s['last_plan_version']):>8}")

    if args.verify:
        print("\nverifying against the single-queue engine ...")
        _, single, single_wall = run_once(
            devices, trace, workload, horizon, args.seed, 1
        )
        identical = (
            single.total_checkins == metrics.total_checkins
            and single.total_responses == metrics.total_responses
            and single.total_failures == metrics.total_failures
            and single.total_aborts == metrics.total_aborts
            and {j: m.jct for j, m in single.jobs.items()}
            == {j: m.jct for j, m in metrics.jobs.items()}
        )
        print(f"  single-queue engine: {events / single_wall:,.0f} events/s "
              f"({single_wall:.1f} s); outcomes identical: {identical}")
        if not identical:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
