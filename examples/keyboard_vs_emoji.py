#!/usr/bin/env python3
"""The paper's motivating scenario: keyboard vs emoji prediction jobs.

Recreates (at adjustable scale) the Figure-3 situation from the paper's
introduction: a keyboard-prediction job that can use *any* device competes
with two emoji-prediction jobs that can only use devices holding emoji data
(roughly half of the population).  Random matching and SRSF waste scarce
emoji-eligible devices on the keyboard job; Venn reserves them for the emoji
jobs and completes everything sooner.

The script runs both the exact offline analysis (the toy example with its ILP
optimum) and a full event-driven simulation of the same contention pattern.

Run with::

    python examples/keyboard_vs_emoji.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import format_table
from repro.core.baselines import make_policy
from repro.core.requirements import EligibilityRequirement
from repro.core.types import DeviceProfile, JobSpec
from repro.experiments.figures import figure3_toy_example
from repro.sim.engine import SimulationConfig, run_simulation
from repro.sim.latency import LatencyConfig
from repro.traces.device_trace import AvailabilitySession, DeviceAvailabilityTrace

KEYBOARD = EligibilityRequirement("keyboard_any")
EMOJI = EligibilityRequirement("emoji_only", data_domain="emoji")


def offline_toy_example() -> None:
    """The exact Figure-3 instance solved offline (including the ILP optimum)."""
    toy = figure3_toy_example()
    print(
        format_table(
            ["strategy", "average JCT (time units)"],
            [
                ["random matching", toy.random_jct],
                ["SRSF", toy.srsf_jct],
                ["Venn (Algorithm 1)", toy.venn_jct],
                ["optimal (ILP)", toy.optimal_jct],
            ],
            title="Offline toy example (paper Figure 3: 12 / 11 / 9.3)",
        )
    )
    print()


def build_scenario(num_devices: int = 300, seed: int = 0):
    """A simulated version of the scenario with devices trickling in."""
    rng = np.random.default_rng(seed)
    devices, sessions = [], []
    horizon = 24 * 3600.0
    for i in range(num_devices):
        has_emoji = i % 2 == 0
        devices.append(
            DeviceProfile(
                device_id=i,
                cpu_score=float(rng.uniform(0.2, 1.0)),
                memory_score=float(rng.uniform(0.2, 1.0)),
                speed_factor=float(rng.uniform(0.8, 2.5)),
                data_domains=frozenset({"emoji"}) if has_emoji else frozenset(),
                reliability=0.95,
            )
        )
        start = float(rng.uniform(0.0, horizon * 0.5))
        sessions.append(AvailabilitySession(i, start, min(horizon, start + 6 * 3600.0)))
    trace = DeviceAvailabilityTrace(horizon=horizon, sessions=sessions)

    jobs = [
        JobSpec(job_id=1, requirement=KEYBOARD, demand_per_round=20, num_rounds=3,
                round_deadline=3600.0, base_task_duration=60.0, name="keyboard"),
        JobSpec(job_id=2, requirement=EMOJI, demand_per_round=25, num_rounds=3,
                round_deadline=3600.0, base_task_duration=60.0, name="emoji-1"),
        JobSpec(job_id=3, requirement=EMOJI, demand_per_round=25, num_rounds=3,
                round_deadline=3600.0, base_task_duration=60.0, name="emoji-2"),
    ]
    return devices, trace, jobs, horizon


def simulated_scenario() -> None:
    devices, trace, jobs, horizon = build_scenario()
    config = SimulationConfig(
        horizon=horizon, enforce_daily_limit=False, seed=1,
        latency=LatencyConfig(compute_sigma=0.25),
    )
    rows = []
    for policy_name in ("random", "srsf", "venn"):
        policy = make_policy(policy_name, seed=3)
        metrics = run_simulation(devices, trace, jobs, policy, config)
        per_job = {m.name: m for m in metrics.jobs.values()}
        rows.append(
            [
                policy_name,
                metrics.average_jct / 3600.0,
                per_job["keyboard"].jct / 3600.0 if per_job["keyboard"].jct else float("nan"),
                np.mean([
                    per_job["emoji-1"].jct or horizon,
                    per_job["emoji-2"].jct or horizon,
                ]) / 3600.0,
                metrics.completion_rate,
            ]
        )
    print(
        format_table(
            ["policy", "avg JCT (h)", "keyboard JCT (h)", "avg emoji JCT (h)",
             "completion rate"],
            rows,
            title="Simulated keyboard-vs-emoji contention",
        )
    )


def main() -> None:
    offline_toy_example()
    simulated_scenario()


if __name__ == "__main__":
    main()
