#!/usr/bin/env python3
"""Write and evaluate a custom scheduling policy against Venn.

The resource manager's policy interface
(:class:`repro.core.policy.SchedulingPolicy`) is deliberately small: register
jobs and requests, and answer "which open request should this checked-in
device serve?".  This example implements a simple *least-progress-first*
policy (devices go to the job that has completed the smallest fraction of its
rounds) and compares it with the built-in policies on the quick workload.

Run with::

    python examples/custom_policy.py
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.report import format_table
from repro.core.baselines import make_policy
from repro.core.policy import BasePolicy
from repro.core.types import DeviceProfile, ResourceRequest
from repro.experiments import build_environment, get_config
from repro.sim.engine import Simulator


class LeastProgressFirstPolicy(BasePolicy):
    """Offer each device to the eligible job with the least round progress."""

    name = "least_progress"

    def _progress(self, job_id: int) -> float:
        job = self.jobs[job_id]
        done = self.rounds_completed.get(job_id, 0)
        return done / max(1, job.num_rounds)

    def assign(
        self, device: DeviceProfile, now: float
    ) -> Optional[ResourceRequest]:
        candidates = self.eligible_open_requests(device)
        if not candidates:
            return None
        candidates.sort(key=lambda r: (self._progress(r.job_id), r.job_id))
        return candidates[0]


def main() -> None:
    config = get_config("quick", seed=11)
    env = build_environment(config)

    policies = {
        "random": make_policy("random", seed=1),
        "srsf": make_policy("srsf"),
        "venn": make_policy("venn", seed=1),
        "least_progress (custom)": LeastProgressFirstPolicy(),
    }

    rows = []
    baseline_jct = None
    for label, policy in policies.items():
        sim = Simulator(
            devices=env.devices,
            availability=env.availability,
            workload=env.workload,
            policy=policy,
            config=config.simulation,
        )
        metrics = sim.run()
        if baseline_jct is None:
            baseline_jct = metrics.average_jct
        rows.append(
            [
                label,
                metrics.average_jct / 3600.0,
                baseline_jct / max(metrics.average_jct, 1e-9),
                metrics.completion_rate,
            ]
        )
    print(
        format_table(
            ["policy", "avg JCT (h)", "speed-up vs random", "completion rate"],
            rows,
            title="Custom policy vs the built-in schedulers",
        )
    )


if __name__ == "__main__":
    main()
