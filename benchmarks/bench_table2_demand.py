"""Table 2: Venn's JCT improvement restricted to the smallest-demand jobs.

The paper reports that jobs in the lowest total-demand percentiles benefit
the most from Venn (e.g. 11.5x for the 25th percentile of the Even workload,
decreasing towards the 75th percentile).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_speedup_table
from repro.experiments.endtoend import table2_demand_percentiles


def test_table2_speedup_by_total_demand(benchmark, bench_config):
    table = run_once(
        benchmark,
        table2_demand_percentiles,
        bench_config,
        scenarios=("even", "low", "high"),
        percentiles=(25.0, 50.0, 75.0),
    )
    printable = {
        scenario: {f"p{int(p)}": v for p, v in row.items()}
        for scenario, row in table.items()
    }
    print()
    print(
        format_speedup_table(
            printable,
            title="Table 2 — Venn speed-up by total-demand percentile",
        )
    )
    for scenario, row in table.items():
        assert row, f"no percentile data for {scenario}"
        assert all(v > 0 for v in row.values())
    # Small jobs benefit at least as much as the broader population on the
    # majority of scenarios (paper: they benefit the most).
    favourable = sum(
        1 for row in table.values() if row.get(25.0, 0) >= row.get(75.0, 0) * 0.8
    )
    assert favourable >= len(table) / 2
