"""Design-choice ablations called out in DESIGN.md.

Two knobs of the Venn scheduler that are not separate figures in the paper
but are worth quantifying in this reproduction:

* the inter-group reallocation phase of Algorithm 1 (lines 10-23), and
* the intra-group demand metric (current-round demand vs total remaining
  demand, §4.2.1).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments.endtoend import run_policies
from repro.experiments.environment import build_environment


def _run_variants(config):
    env = build_environment(config)
    variants = {
        "venn (full)": {},
        "venn w/o inter-group reallocation": {"enable_reallocation": False},
        "venn round-demand ordering": {"demand_mode": "round"},
    }
    results = {"random": run_policies(env, ("random",))["random"]}
    for label, kwargs in variants.items():
        results[label] = run_policies(env, ("venn",), policy_kwargs={"venn": kwargs})[
            "venn"
        ]
    base = results["random"].average_jct
    return {
        label: base / max(m.average_jct, 1e-9)
        for label, m in results.items()
        if label != "random"
    }


def test_design_choice_ablation(benchmark, bench_config):
    speedups = run_once(benchmark, _run_variants, bench_config)
    print()
    print(
        format_table(
            ["variant", "speed-up over random"],
            [[k, v] for k, v in speedups.items()],
            title="Design-choice ablation — Venn scheduler variants",
        )
    )
    assert all(v > 0 for v in speedups.values())
    assert speedups["venn (full)"] > 0.9
