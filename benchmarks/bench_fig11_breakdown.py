"""Figure 11: component breakdown of Venn's improvement.

The paper decomposes Venn's gain into the scheduling (Algorithm 1) and
matching (Algorithm 2) components by evaluating Random, FIFO, Venn without
scheduling, Venn without matching and full Venn on the Low and High
workloads.  Matching helps most at low contention; scheduling at high.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_speedup_table
from repro.experiments.breakdown import FIGURE11_POLICIES, figure11_component_breakdown


def test_figure11_component_breakdown(benchmark, bench_config):
    table = run_once(
        benchmark,
        figure11_component_breakdown,
        bench_config,
        scenarios=("low", "high"),
        policies=FIGURE11_POLICIES,
    )
    print()
    print(
        format_speedup_table(
            table,
            title="Figure 11 — improvement over random per Venn component",
        )
    )
    for scenario, row in table.items():
        assert row["random"] == 1.0
        # Full Venn is at least as good as the scheduling-only variant less a
        # small tolerance (matching never hurts by design).
        assert row["venn"] >= row["venn_wo_match"] * 0.9
        assert row["venn"] > 0.9
