"""Figure 9: average test accuracy over wall-clock time per policy.

The scheduling policy changes *when* rounds complete, not what is learnt per
round, so Venn should reach a given accuracy earlier while the final accuracy
is unchanged across policies.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis.report import format_series
from repro.experiments.accuracy import (
    figure9_accuracy_over_time,
    final_accuracy_by_policy,
)


def test_figure9_accuracy_over_time(benchmark, bench_config):
    times, curves = run_once(
        benchmark,
        figure9_accuracy_over_time,
        bench_config,
        policies=("fifo", "srsf", "venn"),
        num_time_points=13,
    )
    print()
    print(
        format_series(
            [t / 3600.0 for t in times],
            curves,
            x_label="time (h)",
            title="Figure 9 — average test accuracy over time",
        )
    )
    finals = final_accuracy_by_policy(curves)
    assert set(finals) == {"fifo", "srsf", "venn"}
    values = list(finals.values())
    # Final accuracy is essentially policy-independent.
    assert max(values) - min(values) < 0.1
    # Venn's accuracy is never far behind at any point in time, and its
    # time-averaged accuracy (a proxy for convergence speed) is competitive.
    assert np.mean(curves["venn"]) >= np.mean(curves["fifo"]) - 0.05
