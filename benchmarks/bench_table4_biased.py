"""Table 4: average JCT improvement on the four category-biased workloads.

Each biased workload assigns half of its jobs to one focal device category
(§5.4).  The paper reports Venn improvements of 1.94x-2.27x across the four
biases, always ahead of FIFO and SRSF.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_speedup_table
from repro.experiments.endtoend import table4_biased_workloads


def test_table4_biased_workloads(benchmark, bench_config):
    table = run_once(
        benchmark,
        table4_biased_workloads,
        bench_config,
        policies=("random", "fifo", "srsf", "venn"),
    )
    print()
    print(
        format_speedup_table(
            table,
            title="Table 4 — average JCT improvement on biased workloads",
        )
    )
    assert set(table) == {
        "general_heavy",
        "compute_heavy",
        "memory_heavy",
        "resource_heavy",
    }
    # Venn beats random on every bias.
    assert all(row["venn"] > 1.0 for row in table.values())
