"""Figure 2 / Figure 8: trace characterisation benchmarks.

Regenerates the data behind Figure 2a (diurnal device availability),
Figure 2b (hardware heterogeneity and model eligibility), Figure 8a (the four
eligibility regions) and Figure 8b (the job demand trace).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments.figures import (
    figure2a_availability_curve,
    figure2b_capacity_heterogeneity,
    figure8a_category_shares,
    figure8b_job_demand_stats,
)


def test_figure2a_diurnal_availability(benchmark):
    times, frac = run_once(
        benchmark, figure2a_availability_curve, num_devices=1000, resolution=1800.0
    )
    steady = frac[len(frac) // 4 :]
    peak, trough = float(steady.max()), float(steady[steady > 0].min())
    print()
    print(
        format_table(
            ["statistic", "value"],
            [
                ["peak online fraction", peak],
                ["trough online fraction", trough],
                ["peak / trough swing", peak / max(trough, 1e-9)],
            ],
            title="Figure 2a — diurnal device availability (paper: ~2x swing)",
        )
    )
    assert peak > trough
    assert peak / max(trough, 1e-9) > 1.3


def test_figure2b_hardware_heterogeneity(benchmark):
    shares = run_once(benchmark, figure2b_capacity_heterogeneity, num_devices=2000)
    print()
    print(
        format_table(
            ["model", "qualified device fraction"],
            list(shares.items()),
            title="Figure 2b — devices qualified per on-device model",
        )
    )
    assert shares["mobilenet"] > shares["videosr"]


def test_figure8a_eligibility_categories(benchmark):
    shares = run_once(benchmark, figure8a_category_shares, num_devices=2000)
    print()
    print(
        format_table(
            ["category", "eligible fraction"],
            list(shares.items()),
            title="Figure 8a — device eligibility categories",
        )
    )
    assert shares["general"] == 1.0
    assert 0.0 < shares["high_performance"] < shares["general"]


def test_figure8b_job_demand_trace(benchmark):
    stats = run_once(benchmark, figure8b_job_demand_stats, num_jobs=400)
    print()
    print(
        format_table(
            ["statistic", "value"],
            list(stats.items()),
            title="Figure 8b — CL job demand trace",
        )
    )
    assert stats["max_rounds"] <= 4000
    assert stats["max_participants"] <= 1500
