"""Figure 12: JCT improvement as the number of concurrent jobs grows.

The paper shows Venn's advantage over random matching widening with the
number of jobs (25 → 75), since more jobs means more contention.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_speedup_table
from repro.experiments.ablation import figure12_num_jobs


def test_figure12_impact_of_number_of_jobs(benchmark, bench_config):
    table = run_once(
        benchmark,
        figure12_num_jobs,
        bench_config,
        job_counts=(8, 16, 24),
        policies=("fifo", "srsf", "venn"),
    )
    printable = {f"{n} jobs": row for n, row in table.items()}
    print()
    print(
        format_speedup_table(
            printable,
            row_label="workload size",
            title="Figure 12 — improvement over random vs number of jobs",
        )
    )
    assert set(table) == {8, 16, 24}
    # Venn beats random at the highest contention level.
    assert table[24]["venn"] > 1.0
