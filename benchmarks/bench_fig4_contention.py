"""Figure 4: impact of resource contention on model accuracy.

Evenly partitioning a fixed client pool across more concurrent jobs shrinks
each job's participant diversity and degrades its round-to-accuracy curve.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments.accuracy import figure4_contention_accuracy


def test_figure4_contention_accuracy(benchmark):
    curves = run_once(
        benchmark,
        figure4_contention_accuracy,
        job_counts=(1, 5, 10, 20),
        num_rounds=15,
        num_clients=200,
        clients_per_round=20,
    )
    print()
    print(
        format_table(
            ["concurrent jobs", "final avg. test accuracy"],
            [[k, series[-1]] for k, series in sorted(curves.items())],
            precision=3,
            title="Figure 4 — accuracy vs number of jobs sharing the pool",
        )
    )
    assert set(curves) == {1, 5, 10, 20}
    # The single-job (full pool) configuration is at least as accurate as the
    # most contended one.
    assert curves[1][-1] >= curves[20][-1] - 0.02
