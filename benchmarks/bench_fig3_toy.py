"""Figure 3: the toy example comparing Random, SRSF, Venn and the optimum.

Paper values: Random 12, SRSF 11, Optimal 9.3 time units; Venn's scheduling
order attains the optimum on this instance.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments.figures import figure3_toy_example


def test_figure3_toy_example(benchmark):
    toy = run_once(benchmark, figure3_toy_example)
    print()
    print(
        format_table(
            ["strategy", "average JCT (time units)"],
            [
                ["random matching", toy.random_jct],
                ["SRSF", toy.srsf_jct],
                ["Venn (Algorithm 1)", toy.venn_jct],
                ["optimal (ILP, Appendix B)", toy.optimal_jct],
            ],
            title="Figure 3 — toy example (paper: random 12, SRSF 11, optimal 9.3)",
        )
    )
    assert toy.optimal_jct <= toy.venn_jct <= toy.srsf_jct
    assert toy.srsf_jct <= toy.random_jct + 0.5
    assert abs(toy.venn_jct - toy.optimal_jct) < 1e-6
