"""Figure 10: scheduler overhead.

The paper reports that one scheduling/matching invocation stays well under a
millisecond-to-low-milliseconds budget even with 1000 jobs and 100 job
groups, thanks to the max(O(m log m), O(n^2)) complexity.  This benchmark
measures exactly that invocation: a full plan rebuild on a loaded scheduler.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import build_loaded_scheduler


@pytest.mark.parametrize(
    "num_jobs,num_groups",
    [(100, 20), (500, 20), (1000, 20), (500, 100), (1000, 100)],
)
def test_figure10_scheduler_overhead(benchmark, num_jobs, num_groups):
    scheduler = build_loaded_scheduler(num_jobs=num_jobs, num_groups=num_groups)
    result = benchmark(scheduler.rebuild_plan, 10.0)
    assert len(result.group_order) == num_groups
    # One invocation must stay far below one second even at the largest scale.
    assert benchmark.stats.stats.mean < 1.0
