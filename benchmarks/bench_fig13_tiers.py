"""Figure 13: impact of the number of device tiers on Venn's improvement.

The paper shows gains appearing once 2+ tiers are available to the matching
algorithm and plateauing as the tier count grows further.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments.ablation import figure13_num_tiers


def test_figure13_impact_of_number_of_tiers(benchmark, bench_config):
    table = run_once(
        benchmark,
        figure13_num_tiers,
        bench_config,
        tier_counts=(1, 2, 3, 4),
        scenario="low",
    )
    print()
    print(
        format_table(
            ["tiers (V)", "speed-up over random"],
            [[v, s] for v, s in table.items()],
            title="Figure 13 — Venn improvement vs number of tiers",
        )
    )
    assert set(table) == {1, 2, 3, 4}
    assert all(s > 0 for s in table.values())
    # Multi-tier matching should not be substantially worse than single-tier.
    assert max(table[2], table[3], table[4]) >= table[1] * 0.85
