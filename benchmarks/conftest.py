"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation at
the ``quick`` experiment scale (see ``repro.experiments.config``) and prints
the resulting rows, so running ``pytest benchmarks/ --benchmark-only -s``
produces a textual version of the paper's evaluation section.

The heavy end-to-end benchmarks use ``benchmark.pedantic(..., rounds=1)``:
they are macro-benchmarks whose value is the printed table and the wall-clock
time of one full experiment, not a micro-benchmark statistic.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import quick_config  # noqa: E402
from repro.experiments.environment import build_environment  # noqa: E402


@pytest.fixture(scope="session")
def bench_config():
    """The quick-scale experiment configuration used by all benchmarks."""
    return quick_config(seed=7)


@pytest.fixture(scope="session")
def bench_environment(bench_config):
    """A shared environment (devices + availability + workload)."""
    return build_environment(bench_config)


def run_once(benchmark, func, *args, **kwargs):
    """Run a macro-benchmark exactly once and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
