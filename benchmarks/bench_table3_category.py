"""Table 3: Venn's JCT improvement per device-eligibility category.

The paper reports that jobs asking for scarcer resources (Compute-rich,
Memory-rich, High-performance) benefit much more from Venn than jobs that can
use General devices.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_speedup_table
from repro.experiments.endtoend import table3_categories


def test_table3_speedup_by_category(benchmark, bench_config):
    table = run_once(
        benchmark,
        table3_categories,
        bench_config,
        scenarios=("even", "low", "high"),
    )
    print()
    print(
        format_speedup_table(
            table,
            title="Table 3 — Venn speed-up by eligibility category",
        )
    )
    for scenario, row in table.items():
        assert row, f"no category data for {scenario}"
        assert all(v > 0 for v in row.values())
    # Scarce-resource jobs benefit at least as much as general jobs on the
    # majority of scenarios.
    def scarce_max(row):
        return max(
            (v for k, v in row.items() if k != "general"), default=0.0
        )

    favourable = sum(
        1
        for row in table.values()
        if scarce_max(row) >= row.get("general", 0.0) * 0.8
    )
    assert favourable >= len(table) / 2
