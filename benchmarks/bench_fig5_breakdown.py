"""Figure 5: JCT breakdown (scheduling delay vs response collection time).

Under random matching, the paper shows the scheduling delay growing with the
number of concurrent jobs until it dominates the response collection time.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments.breakdown import figure5_jct_breakdown


def test_figure5_jct_breakdown(benchmark, bench_config):
    rows = run_once(
        benchmark,
        figure5_jct_breakdown,
        bench_config,
        job_counts=(8, 16),
        policy="random",
    )
    print()
    print(
        format_table(
            ["contention", "scheduling delay (s)", "response time (s)", "total (s)"],
            [
                [f"{n} jobs", r.scheduling_delay, r.response_time, r.total]
                for n, r in rows.items()
            ],
            title="Figure 5 — JCT breakdown under random matching",
        )
    )
    low, high = rows[8], rows[16]
    assert low.total > 0 and high.total > 0
    # Contention inflates the scheduling delay more than the response time.
    assert high.scheduling_delay >= low.scheduling_delay * 0.8
