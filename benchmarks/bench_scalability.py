"""Scalability sweep: events/sec and check-in latency vs device/job count.

This is the benchmark behind the paper's ``max(O(m log m), O(n^2))``
complexity claim at realistic scale: it sweeps synthetic traces of
{1k, 10k, 100k, 1M} devices × {5, 50, 200} jobs through the simulator and
records, per cell,

* end-to-end events/sec of the simulation main loop,
* p50/p99 latency of the policy's per-device ``assign`` decision, and
* plan-rebuild counts (for Venn).

Two code paths can be measured:

* the default **indexed** fast path (``AtomIndex`` + signature-bucketed
  idle pool + batched check-ins), and
* the **legacy scan** path (``--legacy-scan``) reproducing the seed's
  pre-index linear scans — policy-side ``use_index=False`` plus
  ``SimulationConfig(indexed_dispatch=False)``.

``--compare`` runs every cell on both paths and reports the speedup, which
is the acceptance evidence for this PR (the 100k × 50 cell must show ≥ 5×).
Results are written as a JSON artifact (``--output``).

Examples
--------
Smoke test (seconds, used by CI)::

    PYTHONPATH=src python benchmarks/bench_scalability.py --smoke

The acceptance cell::

    PYTHONPATH=src python benchmarks/bench_scalability.py \
        --devices 100000 --jobs 50 --horizon-hours 2 --compare \
        --output benchmarks/out/scalability_100k.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # allow running without pip install / PYTHONPATH
    sys.path.insert(0, _SRC)

from repro.core.baselines import make_policy  # noqa: E402
from repro.sim.engine import SimulationConfig, Simulator  # noqa: E402
from repro.sim.latency import LatencyConfig  # noqa: E402
from repro.traces.capacity import CapacitySampler  # noqa: E402
from repro.traces.device_trace import (  # noqa: E402
    DiurnalAvailabilityModel,
    DiurnalConfig,
)
from repro.traces.workloads import WorkloadConfig, WorkloadGenerator  # noqa: E402


class TimedPolicy:
    """Transparent policy wrapper timing every ``assign`` decision."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = getattr(inner, "name", type(inner).__name__)
        self.assign_latencies: List[float] = []

    def assign(self, device, now):
        t0 = time.perf_counter()
        out = self._inner.assign(device, now)
        self.assign_latencies.append(time.perf_counter() - t0)
        return out

    def __getattr__(self, item):
        return getattr(self._inner, item)


def build_cell(num_devices: int, num_jobs: int, horizon: float, seed: int):
    """Synthesise devices, availability trace and workload for one cell."""
    devices = CapacitySampler(seed=seed).sample_devices(num_devices)
    trace = DiurnalAvailabilityModel(
        DiurnalConfig(horizon=horizon), seed=seed + 1
    ).generate(num_devices)
    workload = WorkloadGenerator(
        WorkloadConfig(
            num_jobs=num_jobs,
            # Size demand against the device pool so the workload stays
            # contended for the whole horizon (jobs churn rounds and retries
            # throughout) instead of finishing in the first simulated hours —
            # a benchmark cell that drains early never stresses the check-in
            # path at scale.
            demand_scale=0.5,
            min_demand=5,
            max_demand=max(10, num_devices // 10),
            rounds_scale=0.5,
            max_rounds=25,
            mean_interarrival=max(60.0, horizon / (2.0 * num_jobs)),
        ),
        seed=seed + 2,
    ).generate()
    return devices, trace, workload


def run_cell(
    num_devices: int,
    num_jobs: int,
    horizon: float,
    seed: int,
    policy_name: str,
    indexed: bool,
) -> Dict:
    devices, trace, workload = build_cell(num_devices, num_jobs, horizon, seed)
    kwargs = {}
    if policy_name.startswith("venn"):
        kwargs["use_index"] = indexed
    policy = TimedPolicy(make_policy(policy_name, seed=seed, **kwargs))
    config = SimulationConfig(
        horizon=horizon,
        seed=seed,
        indexed_dispatch=indexed,
        latency=LatencyConfig(),
        max_events=200_000_000,
    )
    sim = Simulator(devices, trace, workload, policy, config)
    t0 = time.perf_counter()
    metrics = sim.run()
    wall = time.perf_counter() - t0
    lat = np.asarray(policy.assign_latencies, dtype=float)
    cell = {
        "devices": num_devices,
        "jobs": num_jobs,
        "horizon_s": horizon,
        "policy": policy.name,
        "path": "indexed" if indexed else "legacy-scan",
        "wall_s": round(wall, 4),
        "events": sim.events_processed,
        "events_per_sec": round(sim.events_processed / max(wall, 1e-9), 1),
        "checkins": metrics.total_checkins,
        "assign_calls": int(lat.size),
        "assign_p50_us": round(float(np.percentile(lat, 50)) * 1e6, 2) if lat.size else None,
        "assign_p99_us": round(float(np.percentile(lat, 99)) * 1e6, 2) if lat.size else None,
        "completion_rate": metrics.completion_rate,
        "plan_rebuilds": getattr(policy, "plan_rebuilds", None),
    }
    return cell


def parse_int_list(text: str) -> List[int]:
    return [int(x) for x in text.replace(" ", "").split(",") if x]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", default="1000,10000,100000,1000000",
                        help="comma-separated device counts")
    parser.add_argument("--jobs", default="5,50,200",
                        help="comma-separated job counts")
    parser.add_argument("--policy", default="venn",
                        help="policy name (see repro.core.baselines.make_policy)")
    parser.add_argument("--horizon-hours", type=float, default=24.0,
                        help="simulated horizon per cell")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--legacy-scan", action="store_true",
                        help="measure the pre-index linear-scan path only")
    parser.add_argument("--compare", action="store_true",
                        help="run each cell on both paths and report speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI (overrides sweep + horizon)")
    parser.add_argument("--output", default="benchmarks/out/scalability.json")
    args = parser.parse_args(argv)

    device_counts = parse_int_list(args.devices)
    job_counts = parse_int_list(args.jobs)
    horizon = args.horizon_hours * 3600.0
    if args.smoke:
        device_counts, job_counts, horizon = [300], [4], 2 * 3600.0

    cells: List[Dict] = []
    for n_dev in device_counts:
        for n_jobs in job_counts:
            paths = [True, False] if (args.compare or args.smoke) else [
                not args.legacy_scan
            ]
            pair: Dict[str, Dict] = {}
            for indexed in paths:
                label = "indexed" if indexed else "legacy-scan"
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} path={label} ...",
                    file=sys.stderr, flush=True,
                )
                cell = run_cell(
                    n_dev, n_jobs, horizon, args.seed, args.policy, indexed
                )
                pair[label] = cell
                cells.append(cell)
                print(
                    f"[cell]   {cell['events_per_sec']:.0f} events/s, "
                    f"p99 assign {cell['assign_p99_us']} us, "
                    f"wall {cell['wall_s']:.1f} s",
                    file=sys.stderr, flush=True,
                )
            if len(pair) == 2:
                speedup = (
                    pair["indexed"]["events_per_sec"]
                    / max(pair["legacy-scan"]["events_per_sec"], 1e-9)
                )
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} "
                    f"speedup indexed/legacy = {speedup:.2f}x",
                    file=sys.stderr, flush=True,
                )
                cells.append({
                    "devices": n_dev, "jobs": n_jobs,
                    "summary": "speedup", "events_per_sec_ratio": round(speedup, 3),
                })

    artifact = {
        "benchmark": "bench_scalability",
        "policy": args.policy,
        "seed": args.seed,
        "horizon_hours": horizon / 3600.0,
        "smoke": bool(args.smoke),
        "cells": cells,
    }
    out_path = args.output
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as fh:
        json.dump(artifact, fh, indent=2)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
