"""Scalability sweep: events/sec and check-in latency vs device/job count.

This is the benchmark behind the paper's ``max(O(m log m), O(n^2))``
complexity claim at realistic scale: it sweeps synthetic traces of
{1k, 10k, 100k, 1M} devices × {5, 50, 200} jobs through the simulator and
records, per cell,

* end-to-end events/sec of the simulation main loop,
* p50/p99/p99.9 latency of the policy's per-device ``assign`` decision,
* plan-maintenance work: full rebuilds, incremental in-place updates
  (= rebuilds avoided), index patch sizes and the wall-time share spent
  maintaining the plan (see ``repro/sim/profile.py``), and
* a decision hash — a digest of the full ``(time, device, job)``
  assignment sequence — so different code paths can be asserted
  bit-identical, not just similar.

Axes that can be compared:

* **indexed vs legacy-scan** (``--compare``): the ``AtomIndex`` +
  signature-bucketed dispatch fast path against the seed's pre-index linear
  scans (policy-side ``use_index=False`` plus
  ``SimulationConfig(indexed_dispatch=False)``).  The hash comparison is
  recorded in the speedup summary but not fatal: the golden tests pin the
  paths decision-identical at small scale, but under day-long heavy
  contention they can drift apart (the committed PR-1 baseline already
  recorded different event counts per path).
* **incremental vs full plan maintenance** (``--maintenance-compare``):
  the in-place delta layer (``repro/core/plan_delta.py``) against the
  from-scratch ``build_plan`` oracle.  Decision hashes must match exactly;
  the benchmark exits non-zero if they do not.
* **sharded vs single-queue engine** (``--num-shards 1,2,4,8``): the
  coordinator/device-shard engine (``repro/sim/shard.py``) at each listed
  shard count against the ``num_shards=1`` single-queue reference.  Both
  the decision hash *and* a metrics digest (counters + per-job JCTs) must
  match for every shard count — the sharded engine promises bit-identical
  runs for any shard layout — and the benchmark exits non-zero on any
  divergence (the CI ``shard-identity`` gate).
* **vectorized vs scalar hot path** (``--vectorized-compare``): the
  struct-of-arrays engine (``SimulationConfig(vectorized_dispatch=True)``,
  ``repro/sim/vector.py``) at every listed shard count against the scalar
  reference.  Decision hash, metrics digest and event count must all match
  — the vectorized-identity gate is fatal like the shard gate — and the
  per-shard-count events/sec ratio is recorded in the artifact.
* **batched vs per-device decisions** (``--assign-batch-compare``): every
  vectorized cell re-run with ``SimulationConfig(batched_assign=False)``,
  so large dispatch cohorts go through per-device ``assign`` consults
  instead of ``assign_batch``/``assign_batch_bulk``.  Decision hash,
  metrics digest and event count must match bit-for-bit (fatal), and the
  batched/unbatched events-per-second ratio is recorded.  Add
  ``--decision-profile`` for an instrumented cell with a per-phase
  breakdown of the batched decision path (candidate lookup / admission /
  bookkeeping / outcome sampling).
* **checkpointed vs uncheckpointed** (``--checkpoint-compare``, interval
  ``--checkpoint-every``): the primary cell re-run with periodic
  full-state snapshots (``SimulationConfig(checkpoint_interval=N)``,
  ``docs/RESILIENCE.md``).  Checkpointing is pure observation, so the gate
  is fatal on any divergence; the artifact records snapshot count and the
  checkpoint wall-time share.

Every fatal gate prints the *first divergent decision record* (index,
simulated time, device, job — both runs' values) and the first differing
metrics field via :mod:`repro.resilience.record`, so a broken identity
contract is diagnosable from the CI log alone.

``--smoke`` runs one tiny cell across all combinations, including
``num_shards=2`` and the vectorized twin (seconds; used by CI), and
``--check-baseline`` fails the run when any
indexed/sharded/vectorized+incremental ``events_per_sec`` regresses more
than ``--max-regression`` against a committed artifact — the CI
``perf-smoke`` gate.

Examples
--------
CI smoke + regression gate::

    PYTHONPATH=src python benchmarks/bench_scalability.py --smoke \
        --check-baseline benchmarks/baselines/scalability_smoke.json

The acceptance cells (both comparisons, 24 h horizon)::

    PYTHONPATH=src python benchmarks/bench_scalability.py \
        --devices 100000 --jobs 50 --horizon-hours 24 \
        --compare --maintenance-compare \
        --output benchmarks/out/scalability_100k.json

The million-device cell with the shard sweep (the legacy scan takes ~40 min
and is skipped above ``--legacy-max-devices``)::

    PYTHONPATH=src python benchmarks/bench_scalability.py \
        --devices 1000000 --jobs 50 --horizon-hours 24 \
        --num-shards 1,2,4,8 \
        --maintenance-compare --output benchmarks/out/scalability_1m.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # allow running without pip install / PYTHONPATH
    sys.path.insert(0, _SRC)

from repro.core.baselines import make_policy  # noqa: E402
from repro.resilience.record import (  # noqa: E402
    decision_hash,
    describe_metrics_divergence,
    format_divergence,
    metrics_digest,
)
from repro.sim.engine import SimulationConfig, Simulator  # noqa: E402
from repro.sim.latency import LatencyConfig  # noqa: E402
from repro.traces.capacity import CapacitySampler  # noqa: E402
from repro.traces.device_trace import (  # noqa: E402
    DiurnalAvailabilityModel,
    DiurnalConfig,
)
from repro.traces.workloads import WorkloadConfig, WorkloadGenerator  # noqa: E402


class TimedPolicy:
    """Transparent policy wrapper timing and recording every ``assign``.

    Actual assignments are recorded as plain ``(now, device_id, job_id)``
    tuples (None decisions excluded, so the digest is comparable between
    the indexed and legacy dispatch paths, which offer different — but
    decision-equivalent — device streams to the policy).  Plain tuples
    instead of a running ``hashlib`` object buy two things: the wrapper
    pickles into engine checkpoints (``--checkpoint-compare``), and a
    failed identity gate can print the *first divergent decision* instead
    of two opaque hex strings.  The hash itself
    (:func:`repro.resilience.record.decision_hash`) is byte-compatible
    with the historical accumulator.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = getattr(inner, "name", type(inner).__name__)
        self.assign_latencies: List[float] = []
        self.decisions: List[Tuple[float, int, int]] = []
        self.batch_assign_s = 0.0
        self.batch_devices = 0
        self.batch_proposals = 0
        if not hasattr(inner, "assign_batch_bulk"):
            # Don't advertise the ledger path for policies that lack it —
            # the engine probes with getattr and must fall back cleanly.
            self.assign_batch_bulk = None

    def assign(self, device, now):
        t0 = time.perf_counter()
        out = self._inner.assign(device, now)
        self.assign_latencies.append(time.perf_counter() - t0)
        if out is not None:
            self.decisions.append((now, device.device_id, out.job_id))
        return out

    def assign_batch(self, devices, now, commit):
        # Explicit wrapper (``__getattr__`` delegation would bypass
        # recording): proposals are logged from inside the commit callback,
        # which the policy invokes in offer order — the same order the
        # scalar path appends its records.  Commit-time recording matches
        # assign-time recording because every shipped policy's proposals
        # pass engine validation (they all pre-filter on open/demand/
        # not-assigned before proposing).
        decisions = self.decisions
        device_ids = [d.device_id for d in devices]

        def recording_commit(i, request):
            decisions.append((now, device_ids[i], request.job_id))
            self.batch_proposals += 1
            return commit(i, request)

        t0 = time.perf_counter()
        out = self._inner.assign_batch(devices, now, recording_commit)
        self.batch_assign_s += time.perf_counter() - t0
        self.batch_devices += len(devices)
        return out

    def assign_batch_bulk(self, devices, now):
        # Same reasoning as assign_batch: without an explicit wrapper the
        # engine would resolve the inner policy's ledger path directly and
        # the proposals would never reach the decision record.
        t0 = time.perf_counter()
        consumed, proposals = self._inner.assign_batch_bulk(devices, now)
        self.batch_assign_s += time.perf_counter() - t0
        self.batch_devices += consumed
        self.batch_proposals += len(proposals)
        decisions = self.decisions
        for i, request in proposals:
            decisions.append((now, devices[i].device_id, request.job_id))
        return consumed, proposals

    @property
    def decision_hash(self) -> str:
        return decision_hash(self.decisions)

    @property
    def profile_decisions(self):
        return getattr(self._inner, "profile_decisions", False)

    @profile_decisions.setter
    def profile_decisions(self, value):
        # The engine flips this flag on the policy it was handed; plain
        # assignment would land in the wrapper's dict, not the inner
        # policy's, and profiling would silently stay off.
        self._inner.profile_decisions = value

    def __getattr__(self, item):
        # Guarded like RecordingPolicy: pickle probes attributes on an
        # empty instance dict during unpickling.
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(item)
        return getattr(inner, item)


def build_cell(num_devices: int, num_jobs: int, horizon: float, seed: int):
    """Synthesise devices, availability trace and workload for one cell."""
    devices = CapacitySampler(seed=seed).sample_devices(num_devices)
    trace = DiurnalAvailabilityModel(
        DiurnalConfig(horizon=horizon), seed=seed + 1
    ).generate(num_devices)
    workload = WorkloadGenerator(
        WorkloadConfig(
            num_jobs=num_jobs,
            # Size demand against the device pool so the workload stays
            # contended for the whole horizon (jobs churn rounds and retries
            # throughout) instead of finishing in the first simulated hours —
            # a benchmark cell that drains early never stresses the check-in
            # path at scale.
            demand_scale=0.5,
            min_demand=5,
            max_demand=max(10, num_devices // 10),
            rounds_scale=0.5,
            max_rounds=25,
            mean_interarrival=max(60.0, horizon / (2.0 * num_jobs)),
        ),
        seed=seed + 2,
    ).generate()
    return devices, trace, workload


def percentile_us(lat: np.ndarray, q: float) -> Optional[float]:
    if not lat.size:
        return None
    return round(float(np.percentile(lat, q)) * 1e6, 2)


#: Digest of the merged run metrics (counters + per-job censored JCTs).
#: The shard-identity gate compares this *in addition to* the decision
#: hash: identical decisions with a broken metrics reduction (e.g. a
#: double-counted shard) would still be caught.  Shared with the chaos
#: harness so every identity gate in the repo speaks one digest.
metrics_hash = metrics_digest


def run_cell(
    num_devices: int,
    num_jobs: int,
    horizon: float,
    seed: int,
    policy_name: str,
    indexed: bool,
    maintenance: str,
    repeats: int = 1,
    num_shards: int = 1,
    vectorized: bool = False,
    checkpoint_interval: Optional[int] = None,
    batched: bool = True,
    batched_response: bool = True,
    profile_decisions: bool = False,
) -> Dict:
    """Run one cell ``repeats`` times and keep the fastest run.

    Decisions are deterministic, so repeats must agree bit-for-bit (they
    are asserted to); only the wall clock varies.  Best-of-N is the honest
    choice on shared/noisy hardware: the minimum wall time is the closest
    observable to the code's actual cost.
    """
    best: Optional[Dict] = None
    for _ in range(max(1, repeats)):
        cell = _run_cell_once(
            num_devices, num_jobs, horizon, seed, policy_name, indexed,
            maintenance, num_shards, vectorized, checkpoint_interval,
            batched, batched_response, profile_decisions,
        )
        if best is not None and cell["decision_hash"] != best["decision_hash"]:
            raise AssertionError(
                "nondeterminism across benchmark repeats: "
                f"{cell['decision_hash']} != {best['decision_hash']}"
            )
        if best is None or cell["events_per_sec"] > best["events_per_sec"]:
            best = cell
    return best


def _run_cell_once(
    num_devices: int,
    num_jobs: int,
    horizon: float,
    seed: int,
    policy_name: str,
    indexed: bool,
    maintenance: str,
    num_shards: int = 1,
    vectorized: bool = False,
    checkpoint_interval: Optional[int] = None,
    batched: bool = True,
    batched_response: bool = True,
    profile_decisions: bool = False,
) -> Dict:
    devices, trace, workload = build_cell(num_devices, num_jobs, horizon, seed)
    kwargs = {}
    if policy_name.startswith("venn"):
        kwargs["use_index"] = indexed
        kwargs["plan_maintenance"] = maintenance
    policy = TimedPolicy(make_policy(policy_name, seed=seed, **kwargs))
    config = SimulationConfig(
        horizon=horizon,
        seed=seed,
        indexed_dispatch=indexed,
        latency=LatencyConfig(),
        max_events=200_000_000,
        num_shards=num_shards,
        vectorized_dispatch=vectorized,
        checkpoint_interval=checkpoint_interval,
        batched_assign=batched,
        batched_response=batched_response,
        profile_decisions=profile_decisions,
    )
    sim = Simulator(devices, trace, workload, policy, config)
    t0 = time.perf_counter()
    metrics = sim.run()
    wall = time.perf_counter() - t0
    lat = np.asarray(policy.assign_latencies, dtype=float)
    if profile_decisions:
        path = "decision-profile"
    elif vectorized and not batched:
        path = "vectorized-unbatched"
    elif vectorized and not batched_response:
        path = "vectorized-response-scalar"
    elif vectorized:
        path = "vectorized"
    elif num_shards > 1:
        path = "sharded"
    elif indexed:
        path = "indexed"
    else:
        path = "legacy-scan"
    cell = {
        "devices": num_devices,
        "jobs": num_jobs,
        "horizon_s": horizon,
        "policy": policy.name,
        "path": path,
        "num_shards": num_shards,
        "plan_maintenance": (
            maintenance if policy_name.startswith("venn") else None
        ),
        "wall_s": round(wall, 4),
        "events": sim.events_processed,
        "events_per_sec": round(sim.events_processed / max(wall, 1e-9), 1),
        "checkins": metrics.total_checkins,
        "assign_calls": int(lat.size),
        "assign_p50_us": percentile_us(lat, 50),
        "assign_p99_us": percentile_us(lat, 99),
        # p99 hides the rebuild tail: the (few thousand) assigns that pay a
        # plan refresh live beyond the 99th percentile of (hundreds of
        # thousands of) calls.  p99.9 exposes them.
        "assign_p999_us": percentile_us(lat, 99.9),
        "completion_rate": metrics.completion_rate,
        "plan_rebuilds": getattr(policy, "plan_rebuilds", None),
        "decision_hash": policy.decision_hash,
        "metrics_hash": metrics_hash(metrics),
        # Raw records for first-divergence diagnostics on a failed gate;
        # underscore-prefixed keys are stripped before the artifact is
        # written (they are process-local, not JSON-friendly).
        "_decisions": policy.decisions,
        "_metrics": metrics,
    }
    if vectorized:
        cell["batched_assign"] = batched
        cell["batch_devices"] = policy.batch_devices
        cell["batch_proposals"] = policy.batch_proposals
        cell["batch_assign_s"] = round(policy.batch_assign_s, 4)
        cell["batched_response"] = batched_response
        cell["response_cohorts"] = sim.response_cohorts
        cell["response_batched_events"] = sim.response_batched_events
    if profile_decisions:
        # Per-phase wall-time breakdown of the batched decision path: the
        # policy accounts candidate lookup / admission / bookkeeping, the
        # engine accounts outcome sampling (the batched rng draws at
        # flush time).
        breakdown = dict(getattr(policy, "decision_profile", {}) or {})
        for key_, value in list(breakdown.items()):
            if isinstance(value, float):
                breakdown[key_] = round(value, 4)
        breakdown["outcome_sampling_s"] = round(sim.outcome_sampling_s, 4)
        # Response-phase breakdown: how much of the drain ran through the
        # cohort path and what it cost.
        breakdown["response_cohorts"] = sim.response_cohorts
        breakdown["response_batched_events"] = sim.response_batched_events
        breakdown["response_batch_s"] = round(sim.response_batch_s, 4)
        cell["decision_profile"] = breakdown
    if checkpoint_interval is not None:
        cell["checkpoint_interval"] = checkpoint_interval
        cell["checkpoints_taken"] = sim.checkpoints_taken
        cell["checkpoint_time_s"] = round(sim.checkpoint_time_s, 4)
        cell["checkpoint_time_share"] = round(
            sim.checkpoint_time_s / max(wall, 1e-9), 4
        )
    profile = metrics.plan_maintenance
    if profile is not None:
        cell["plan_incremental_updates"] = profile["incremental_updates"]
        cell["rebuilds_avoided"] = profile["rebuilds_avoided"]
        cell["plan_time_s"] = profile["maintenance_time_s"]
        cell["plan_time_share"] = round(
            profile["maintenance_time_s"] / max(wall, 1e-9), 4
        )
        cell["index_patches"] = profile["index_patches"]
        cell["index_atoms_patched"] = profile["index_atoms_patched"]
        cell["plan_triggers"] = profile["triggers"]
    return cell


def _print_divergence(
    cell_a: Dict, cell_b: Dict, label_a: str, label_b: str
) -> None:
    """Actionable gate output: the first divergent decision record (index,
    time, device, job — both runs' values), then the first differing
    metrics field — instead of two opaque hex digests."""
    print(
        "[cell]   "
        + format_divergence(
            cell_a["_decisions"], cell_b["_decisions"],
            label_a=label_a, label_b=label_b,
        ),
        file=sys.stderr, flush=True,
    )
    print(
        "[cell]   "
        + describe_metrics_divergence(
            cell_a["_metrics"], cell_b["_metrics"],
            label_a=label_a, label_b=label_b,
        ),
        file=sys.stderr, flush=True,
    )


def parse_int_list(text: str) -> List[int]:
    return [int(x) for x in text.replace(" ", "").split(",") if x]


def cell_combos(
    args, policy_is_venn: bool, num_devices: int
) -> List[Tuple[bool, str, int, bool]]:
    """(indexed, plan_maintenance, num_shards, vectorized) combos per cell.

    The shard sweep applies to the primary (indexed, primary-maintenance)
    configuration; the maintenance-compare and legacy-scan references run
    once, on the single-queue engine, since the shard-identity gate already
    pins every shard count to the num_shards=1 decisions bit-for-bit.
    ``--vectorized-compare`` adds a struct-of-arrays twin of every primary
    shard count, gated bit-identical against the scalar reference.
    """
    maint = args.plan_maintenance if policy_is_venn else "full"
    combos: List[Tuple[bool, str, int, bool]] = []
    if args.legacy_scan:
        combos.append((False, "full", 1, False))
        return combos
    for shards in args.shard_counts:
        combos.append((True, maint, shards, False))
    if 1 not in args.shard_counts:
        # The sharding comparison needs its single-queue reference.
        combos.insert(0, (True, maint, 1, False))
    if args.vectorized_compare:
        for shards in args.shard_counts:
            combos.append((True, maint, shards, True))
    if args.maintenance_compare and policy_is_venn:
        other = "full" if maint == "incremental" else "incremental"
        combos.append((True, other, 1, False))
    if args.compare and num_devices <= args.legacy_max_devices:
        # The legacy-scan reference always runs the paper-literal full
        # rebuild: it reproduces the seed's behaviour.  Cells above
        # --legacy-max-devices skip it (the linear scans take O(hours) at
        # 10^6 devices; the equivalence is already pinned at smaller cells
        # and by the golden tests).
        combos.append((False, "full", 1, False))
    return combos


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", default="1000,10000,100000,1000000",
                        help="comma-separated device counts")
    parser.add_argument("--jobs", default="5,50,200",
                        help="comma-separated job counts")
    parser.add_argument("--policy", default="venn",
                        help="policy name (see repro.core.baselines.make_policy)")
    parser.add_argument("--horizon-hours", type=float, default=24.0,
                        help="simulated horizon per cell")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=1,
                        help="run each cell N times and record the fastest "
                             "(decisions are asserted identical across "
                             "repeats; use >1 on noisy/shared hardware)")
    parser.add_argument("--plan-maintenance", default="incremental",
                        choices=["incremental", "full"],
                        help="Venn plan-maintenance mode for the primary run")
    parser.add_argument("--num-shards", default="1",
                        help="comma-separated device-shard counts for the "
                             "primary configuration (1 = single-queue "
                             "engine).  Decision and metrics hashes must "
                             "match across all counts; divergence fails "
                             "the run")
    parser.add_argument("--legacy-scan", action="store_true",
                        help="measure the pre-index linear-scan path only")
    parser.add_argument("--compare", action="store_true",
                        help="run each cell on both dispatch paths and report "
                             "the indexed/legacy speedup")
    parser.add_argument("--legacy-max-devices", type=int, default=200_000,
                        help="skip the legacy-scan reference for cells with "
                             "more devices than this (default 200k; the "
                             "linear scans take hours at 10^6 devices)")
    parser.add_argument("--maintenance-compare", action="store_true",
                        help="run each cell in both plan-maintenance modes, "
                             "assert decision identity and report the "
                             "incremental/full speedup")
    parser.add_argument("--checkpoint-compare", action="store_true",
                        help="run a periodically checkpointed twin of the "
                             "primary cell; decision hash, metrics hash and "
                             "event count must match the uncheckpointed run "
                             "bit-for-bit (fatal otherwise), and the "
                             "checkpoint overhead is recorded")
    parser.add_argument("--checkpoint-every", type=int, default=2000,
                        help="checkpoint interval in events for "
                             "--checkpoint-compare (default 2000)")
    parser.add_argument("--vectorized-compare", action="store_true",
                        help="run each primary shard count on the "
                             "struct-of-arrays hot path too; decision hash, "
                             "metrics hash and event count must match the "
                             "scalar run bit-for-bit (fatal otherwise)")
    parser.add_argument("--assign-batch-compare", action="store_true",
                        help="run an unbatched (batched_assign=False) twin "
                             "of every vectorized cell; decision hash, "
                             "metrics hash and event count must match the "
                             "batched run bit-for-bit (fatal otherwise).  "
                             "Implies --vectorized-compare")
    parser.add_argument("--response-batch-compare", action="store_true",
                        help="run a response-scalar (batched_response="
                             "False) twin of every vectorized cell; "
                             "decision hash, metrics hash and event count "
                             "must match the cohort-drained run "
                             "bit-for-bit (fatal otherwise).  Implies "
                             "--vectorized-compare")
    parser.add_argument("--decision-profile", action="store_true",
                        help="add an instrumented vectorized cell per sweep "
                             "point with a per-phase breakdown of the "
                             "batched decision path (candidate lookup / "
                             "admission / bookkeeping / outcome sampling) "
                             "in the JSON artifact")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sweep for CI (overrides sweep + horizon, "
                             "implies --compare, --maintenance-compare and "
                             "--vectorized-compare)")
    parser.add_argument("--check-baseline", default=None, metavar="PATH",
                        help="committed artifact to compare against; fails "
                             "when indexed+incremental events_per_sec "
                             "regresses more than --max-regression")
    parser.add_argument("--max-regression", type=float, default=0.2,
                        help="tolerated fractional events_per_sec regression "
                             "for --check-baseline (default 0.2)")
    parser.add_argument("--output", default="benchmarks/out/scalability.json")
    args = parser.parse_args(argv)

    device_counts = parse_int_list(args.devices)
    job_counts = parse_int_list(args.jobs)
    horizon = args.horizon_hours * 3600.0
    args.shard_counts = parse_int_list(args.num_shards)
    if args.smoke:
        # Big enough that events_per_sec is stable (a sub-0.1 s cell would
        # make the CI regression gate pure noise), small enough to finish
        # all path/mode/shard combos in seconds.
        device_counts, job_counts, horizon = [5000], [8], 6 * 3600.0
        args.compare = True
        args.maintenance_compare = True
        args.vectorized_compare = True
        args.checkpoint_compare = True
        args.assign_batch_compare = True
        args.response_batch_compare = True
        if args.shard_counts == [1]:
            args.shard_counts = [1, 2]
    if args.assign_batch_compare or args.response_batch_compare:
        # The unbatched twins compare against the vectorized cell.
        args.vectorized_compare = True

    policy_is_venn = args.policy.startswith("venn")
    decision_mismatch = False
    cells: List[Dict] = []
    for n_dev in device_counts:
        for n_jobs in job_counts:
            by_combo: Dict[Tuple[str, str, int], Dict] = {}
            for indexed, maintenance, shards, vectorized in cell_combos(
                args, policy_is_venn, n_dev
            ):
                if vectorized:
                    label = "vectorized"
                elif shards > 1:
                    label = "sharded"
                elif indexed:
                    label = "indexed"
                else:
                    label = "legacy-scan"
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} path={label} "
                    f"maintenance={maintenance} shards={shards} ...",
                    file=sys.stderr, flush=True,
                )
                cell = run_cell(
                    n_dev, n_jobs, horizon, args.seed, args.policy,
                    indexed, maintenance, repeats=args.repeats,
                    num_shards=shards, vectorized=vectorized,
                )
                by_combo[(label, maintenance, shards)] = cell
                cells.append(cell)
                print(
                    f"[cell]   {cell['events_per_sec']:.0f} events/s, "
                    f"p99/p99.9 assign {cell['assign_p99_us']}/"
                    f"{cell['assign_p999_us']} us, "
                    f"plan share {cell.get('plan_time_share', 'n/a')}, "
                    f"wall {cell['wall_s']:.1f} s",
                    file=sys.stderr, flush=True,
                )

            maint_primary = args.plan_maintenance if policy_is_venn else "full"
            base_key = ("indexed", maint_primary, 1)
            base_cell = by_combo.get(base_key)
            for shards in sorted(set(args.shard_counts)):
                if shards == 1:
                    continue
                sharded_cell = by_combo.get(("sharded", maint_primary, shards))
                if sharded_cell is None or base_cell is None:
                    continue
                identical = (
                    sharded_cell["decision_hash"] == base_cell["decision_hash"]
                    and sharded_cell["metrics_hash"] == base_cell["metrics_hash"]
                    and sharded_cell["events"] == base_cell["events"]
                )
                if not identical:
                    # Fatal: the sharded engine promises bit-identical
                    # decisions AND metrics for any shard count.
                    decision_mismatch = True
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"SHARD IDENTITY DIVERGENCE at num_shards={shards}: "
                        f"decisions {sharded_cell['decision_hash'][:12]} vs "
                        f"{base_cell['decision_hash'][:12]}, metrics "
                        f"{sharded_cell['metrics_hash'][:12]} vs "
                        f"{base_cell['metrics_hash'][:12]}",
                        file=sys.stderr, flush=True,
                    )
                    _print_divergence(
                        base_cell, sharded_cell,
                        label_a="num_shards=1",
                        label_b=f"num_shards={shards}",
                    )
                ratio = (
                    sharded_cell["events_per_sec"]
                    / max(base_cell["events_per_sec"], 1e-9)
                )
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} "
                    f"sharded({shards})/single = {ratio:.2f}x, "
                    f"identical: {identical}",
                    file=sys.stderr, flush=True,
                )
                cells.append({
                    "devices": n_dev, "jobs": n_jobs,
                    "summary": "sharding", "num_shards": shards,
                    "events_per_sec_ratio": round(ratio, 3),
                    "decisions_identical": identical,
                })

            for shards in sorted(set(args.shard_counts)):
                vec_cell = by_combo.get(("vectorized", maint_primary, shards))
                if vec_cell is None:
                    continue
                scalar_key = (
                    ("sharded" if shards > 1 else "indexed"),
                    maint_primary, shards,
                )
                scalar_cell = by_combo.get(scalar_key) or base_cell
                if scalar_cell is None:
                    continue
                identical = (
                    vec_cell["decision_hash"] == scalar_cell["decision_hash"]
                    and vec_cell["metrics_hash"] == scalar_cell["metrics_hash"]
                    and vec_cell["events"] == scalar_cell["events"]
                )
                if not identical:
                    # Fatal: the vectorized hot path promises bit-identical
                    # decisions AND metrics to the scalar oracle.
                    decision_mismatch = True
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"VECTORIZED IDENTITY DIVERGENCE at "
                        f"num_shards={shards}: decisions "
                        f"{vec_cell['decision_hash'][:12]} vs "
                        f"{scalar_cell['decision_hash'][:12]}, metrics "
                        f"{vec_cell['metrics_hash'][:12]} vs "
                        f"{scalar_cell['metrics_hash'][:12]}, events "
                        f"{vec_cell['events']} vs {scalar_cell['events']}",
                        file=sys.stderr, flush=True,
                    )
                    _print_divergence(
                        scalar_cell, vec_cell,
                        label_a="scalar", label_b="vectorized",
                    )
                ratio = (
                    vec_cell["events_per_sec"]
                    / max(scalar_cell["events_per_sec"], 1e-9)
                )
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} "
                    f"vectorized/scalar(shards={shards}) = {ratio:.2f}x, "
                    f"identical: {identical}",
                    file=sys.stderr, flush=True,
                )
                cells.append({
                    "devices": n_dev, "jobs": n_jobs,
                    "summary": "vectorized", "num_shards": shards,
                    "events_per_sec_ratio": round(ratio, 3),
                    "decisions_identical": identical,
                })

            if args.assign_batch_compare:
                for shards in sorted(set(args.shard_counts)):
                    vec_cell = by_combo.get(
                        ("vectorized", maint_primary, shards)
                    )
                    if vec_cell is None:
                        continue
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"path=vectorized-unbatched "
                        f"maintenance={maint_primary} shards={shards} ...",
                        file=sys.stderr, flush=True,
                    )
                    unb_cell = run_cell(
                        n_dev, n_jobs, horizon, args.seed, args.policy,
                        True, maint_primary, repeats=args.repeats,
                        num_shards=shards, vectorized=True, batched=False,
                    )
                    cells.append(unb_cell)
                    identical = (
                        unb_cell["decision_hash"] == vec_cell["decision_hash"]
                        and unb_cell["metrics_hash"] == vec_cell["metrics_hash"]
                        and unb_cell["events"] == vec_cell["events"]
                    )
                    if not identical:
                        # Fatal: the batched decision path promises
                        # bit-identical decisions AND metrics to per-device
                        # consults.
                        decision_mismatch = True
                        print(
                            f"[cell] devices={n_dev} jobs={n_jobs} "
                            f"ASSIGN-BATCH IDENTITY DIVERGENCE at "
                            f"num_shards={shards}: decisions "
                            f"{unb_cell['decision_hash'][:12]} vs "
                            f"{vec_cell['decision_hash'][:12]}, metrics "
                            f"{unb_cell['metrics_hash'][:12]} vs "
                            f"{vec_cell['metrics_hash'][:12]}, events "
                            f"{unb_cell['events']} vs {vec_cell['events']}",
                            file=sys.stderr, flush=True,
                        )
                        _print_divergence(
                            unb_cell, vec_cell,
                            label_a="unbatched", label_b="batched",
                        )
                    ratio = (
                        vec_cell["events_per_sec"]
                        / max(unb_cell["events_per_sec"], 1e-9)
                    )
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"batched/unbatched(shards={shards}) = {ratio:.2f}x, "
                        f"identical: {identical}",
                        file=sys.stderr, flush=True,
                    )
                    cells.append({
                        "devices": n_dev, "jobs": n_jobs,
                        "summary": "assign-batch", "num_shards": shards,
                        "events_per_sec_ratio": round(ratio, 3),
                        "decisions_identical": identical,
                    })

            if args.response_batch_compare:
                for shards in sorted(set(args.shard_counts)):
                    vec_cell = by_combo.get(
                        ("vectorized", maint_primary, shards)
                    )
                    if vec_cell is None:
                        continue
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"path=vectorized-response-scalar "
                        f"maintenance={maint_primary} shards={shards} ...",
                        file=sys.stderr, flush=True,
                    )
                    rsp_cell = run_cell(
                        n_dev, n_jobs, horizon, args.seed, args.policy,
                        True, maint_primary, repeats=args.repeats,
                        num_shards=shards, vectorized=True,
                        batched_response=False,
                    )
                    cells.append(rsp_cell)
                    identical = (
                        rsp_cell["decision_hash"] == vec_cell["decision_hash"]
                        and rsp_cell["metrics_hash"] == vec_cell["metrics_hash"]
                        and rsp_cell["events"] == vec_cell["events"]
                    )
                    if not identical:
                        # Fatal: the cohort-drained response path promises
                        # bit-identical decisions AND metrics to the
                        # per-event response handler.
                        decision_mismatch = True
                        print(
                            f"[cell] devices={n_dev} jobs={n_jobs} "
                            f"RESPONSE-BATCH IDENTITY DIVERGENCE at "
                            f"num_shards={shards}: decisions "
                            f"{rsp_cell['decision_hash'][:12]} vs "
                            f"{vec_cell['decision_hash'][:12]}, metrics "
                            f"{rsp_cell['metrics_hash'][:12]} vs "
                            f"{vec_cell['metrics_hash'][:12]}, events "
                            f"{rsp_cell['events']} vs {vec_cell['events']}",
                            file=sys.stderr, flush=True,
                        )
                        _print_divergence(
                            rsp_cell, vec_cell,
                            label_a="response-scalar", label_b="batched",
                        )
                    ratio = (
                        vec_cell["events_per_sec"]
                        / max(rsp_cell["events_per_sec"], 1e-9)
                    )
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"response batched/scalar(shards={shards}) = "
                        f"{ratio:.2f}x over "
                        f"{vec_cell.get('response_cohorts', 0)} cohorts "
                        f"({vec_cell.get('response_batched_events', 0)} "
                        f"batched events), identical: {identical}",
                        file=sys.stderr, flush=True,
                    )
                    cells.append({
                        "devices": n_dev, "jobs": n_jobs,
                        "summary": "response-batch", "num_shards": shards,
                        "events_per_sec_ratio": round(ratio, 3),
                        "decisions_identical": identical,
                    })

            if args.decision_profile:
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} "
                    f"path=decision-profile maintenance={maint_primary} "
                    f"shards=1 ...",
                    file=sys.stderr, flush=True,
                )
                prof_cell = run_cell(
                    n_dev, n_jobs, horizon, args.seed, args.policy,
                    True, maint_primary, repeats=args.repeats,
                    num_shards=1, vectorized=True, profile_decisions=True,
                )
                cells.append(prof_cell)
                breakdown = prof_cell.get("decision_profile", {})
                print(
                    f"[cell]   decision phases: "
                    f"lookup {breakdown.get('candidate_lookup_s', 0.0):.3f}s "
                    f"admission {breakdown.get('admission_s', 0.0):.3f}s "
                    f"bookkeeping {breakdown.get('bookkeeping_s', 0.0):.3f}s "
                    f"outcome-sampling "
                    f"{breakdown.get('outcome_sampling_s', 0.0):.3f}s over "
                    f"{breakdown.get('batch_devices', 0)} batched consults",
                    file=sys.stderr, flush=True,
                )
                print(
                    f"[cell]   response phases: "
                    f"{breakdown.get('response_cohorts', 0)} cohorts, "
                    f"{breakdown.get('response_batched_events', 0)} batched "
                    f"events, batch kernel "
                    f"{breakdown.get('response_batch_s', 0.0):.3f}s",
                    file=sys.stderr, flush=True,
                )

            if args.checkpoint_compare and base_cell is not None:
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} path=indexed "
                    f"maintenance={maint_primary} shards=1 "
                    f"checkpoint_every={args.checkpoint_every} ...",
                    file=sys.stderr, flush=True,
                )
                ckpt_cell = run_cell(
                    n_dev, n_jobs, horizon, args.seed, args.policy,
                    True, maint_primary, repeats=args.repeats,
                    num_shards=1, vectorized=False,
                    checkpoint_interval=args.checkpoint_every,
                )
                cells.append(ckpt_cell)
                identical = (
                    ckpt_cell["decision_hash"] == base_cell["decision_hash"]
                    and ckpt_cell["metrics_hash"] == base_cell["metrics_hash"]
                    and ckpt_cell["events"] == base_cell["events"]
                )
                if not identical:
                    # Fatal: periodic checkpointing is pure observation; it
                    # must never perturb a decision or a metric.
                    decision_mismatch = True
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"CHECKPOINT IDENTITY DIVERGENCE at "
                        f"interval={args.checkpoint_every}: decisions "
                        f"{ckpt_cell['decision_hash'][:12]} vs "
                        f"{base_cell['decision_hash'][:12]}, metrics "
                        f"{ckpt_cell['metrics_hash'][:12]} vs "
                        f"{base_cell['metrics_hash'][:12]}",
                        file=sys.stderr, flush=True,
                    )
                    _print_divergence(
                        base_cell, ckpt_cell,
                        label_a="uncheckpointed", label_b="checkpointed",
                    )
                overhead = (
                    base_cell["events_per_sec"]
                    / max(ckpt_cell["events_per_sec"], 1e-9)
                )
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} "
                    f"checkpointing: {ckpt_cell['checkpoints_taken']} "
                    f"snapshots, {ckpt_cell['checkpoint_time_share']:.1%} of "
                    f"wall, uncheckpointed/checkpointed = {overhead:.2f}x, "
                    f"identical: {identical}",
                    file=sys.stderr, flush=True,
                )
                cells.append({
                    "devices": n_dev, "jobs": n_jobs,
                    "summary": "checkpoint",
                    "checkpoint_interval": args.checkpoint_every,
                    "checkpoints_taken": ckpt_cell["checkpoints_taken"],
                    "checkpoint_time_share": ckpt_cell["checkpoint_time_share"],
                    "events_per_sec_ratio": round(overhead, 3),
                    "decisions_identical": identical,
                })

            primary = ("indexed", maint_primary, 1)
            legacy = ("legacy-scan", "full", 1)
            if primary in by_combo and legacy in by_combo:
                speedup = (
                    by_combo[primary]["events_per_sec"]
                    / max(by_combo[legacy]["events_per_sec"], 1e-9)
                )
                same = (
                    by_combo[primary]["decision_hash"]
                    == by_combo[legacy]["decision_hash"]
                )
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} "
                    f"speedup indexed/legacy = {speedup:.2f}x, "
                    f"decisions identical: {same}",
                    file=sys.stderr, flush=True,
                )
                if not same:
                    # Not fatal: the dispatch paths are pinned
                    # decision-identical by the golden tests at small scale,
                    # but under day-long heavy contention they can drift
                    # apart (the committed PR-1 baseline already recorded
                    # different event counts per path — e.g. the tier
                    # matcher's rng draws follow the assign-call stream,
                    # which differs between paths).  The artifact records
                    # the hash comparison either way.
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} note: "
                        "legacy/indexed decisions differ at this scale "
                        "(pre-existing; see summary record)",
                        file=sys.stderr, flush=True,
                    )
                cells.append({
                    "devices": n_dev, "jobs": n_jobs,
                    "summary": "speedup", "events_per_sec_ratio": round(speedup, 3),
                    "decisions_identical": same,
                })
            inc = ("indexed", "incremental", 1)
            full = ("indexed", "full", 1)
            if inc in by_combo and full in by_combo:
                if by_combo[inc]["decision_hash"] != by_combo[full]["decision_hash"]:
                    # This one IS fatal: incremental maintenance promises
                    # bit-identical decisions to the full-rebuild oracle.
                    decision_mismatch = True
                    print(
                        f"[cell] devices={n_dev} jobs={n_jobs} "
                        f"MAINTENANCE DECISION DIVERGENCE: "
                        f"incremental={by_combo[inc]['decision_hash'][:12]} "
                        f"full={by_combo[full]['decision_hash'][:12]}",
                        file=sys.stderr, flush=True,
                    )
                    _print_divergence(
                        by_combo[full], by_combo[inc],
                        label_a="full", label_b="incremental",
                    )
                ratio = (
                    by_combo[inc]["events_per_sec"]
                    / max(by_combo[full]["events_per_sec"], 1e-9)
                )
                print(
                    f"[cell] devices={n_dev} jobs={n_jobs} "
                    f"incremental/full = {ratio:.2f}x, "
                    f"rebuilds avoided {by_combo[inc].get('rebuilds_avoided')}, "
                    f"decisions identical: "
                    f"{by_combo[inc]['decision_hash'] == by_combo[full]['decision_hash']}",
                    file=sys.stderr, flush=True,
                )
                cells.append({
                    "devices": n_dev, "jobs": n_jobs,
                    "summary": "maintenance",
                    "events_per_sec_ratio": round(ratio, 3),
                    "rebuilds_avoided": by_combo[inc].get("rebuilds_avoided"),
                    "plan_time_share_incremental": by_combo[inc].get("plan_time_share"),
                    "plan_time_share_full": by_combo[full].get("plan_time_share"),
                    "decisions_identical": (
                        by_combo[inc]["decision_hash"]
                        == by_combo[full]["decision_hash"]
                    ),
                })

    artifact = {
        "benchmark": "bench_scalability",
        "policy": args.policy,
        "seed": args.seed,
        "horizon_hours": horizon / 3600.0,
        "smoke": bool(args.smoke),
        # Underscore keys hold process-local diagnostics (raw decision
        # records, metrics objects); the artifact keeps only plain JSON.
        "cells": [
            {k: v for k, v in cell.items() if not k.startswith("_")}
            for cell in cells
        ],
    }
    out_path = args.output
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as fh:
        json.dump(artifact, fh, indent=2)
    print(f"wrote {out_path}")

    if decision_mismatch:
        print("FAIL: a decision-identity contract was violated (incremental "
              "vs full plan maintenance, sharded vs single-queue engine, "
              "vectorized vs scalar hot path, or batched vs per-device "
              "decisions — see SHARD IDENTITY / MAINTENANCE DECISION / "
              "VECTORIZED IDENTITY / ASSIGN-BATCH IDENTITY lines above)",
              file=sys.stderr)
        return 2
    if args.check_baseline:
        failures = check_baseline(cells, args.check_baseline, args.max_regression)
        if failures:
            for line in failures:
                print(f"FAIL: {line}", file=sys.stderr)
            return 3
        print(f"baseline check ok ({args.check_baseline})", file=sys.stderr)
    return 0


def check_baseline(
    cells: List[Dict], baseline_path: str, max_regression: float
) -> List[str]:
    """Compare indexed+incremental cells against a committed artifact.

    Returns a list of human-readable failures (empty = pass).  Only cells
    present in both runs are compared; the committed artifact must be
    regenerated when the benchmark hardware changes.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)

    def key(cell: Dict):
        return (cell["devices"], cell["jobs"], cell["path"],
                cell.get("plan_maintenance"), cell.get("num_shards", 1))

    base_cells = {
        key(c): c
        for c in baseline.get("cells", [])
        if "summary" not in c and c.get("checkpoint_interval") is None
        # The checkpointed twin shares its key with the primary cell; if it
        # lands later in the artifact it would overwrite the primary's
        # throughput and silently lower the floor.
    }
    failures: List[str] = []
    compared = 0
    for cell in cells:
        if "summary" in cell:
            continue
        if cell["path"] not in ("indexed", "sharded", "vectorized"):
            continue
        if cell.get("plan_maintenance") != "incremental":
            continue
        if cell.get("checkpoint_interval") is not None:
            # The checkpointed twin shares its baseline key with the
            # primary cell but pays snapshot overhead by design; gating it
            # against the uncheckpointed baseline would be a false alarm.
            continue
        ref = base_cells.get(key(cell))
        if ref is None:
            continue
        compared += 1
        floor = ref["events_per_sec"] * (1.0 - max_regression)
        if cell["events_per_sec"] < floor:
            failures.append(
                f"devices={cell['devices']} jobs={cell['jobs']} "
                f"shards={cell.get('num_shards', 1)}: "
                f"{cell['events_per_sec']:.0f} ev/s < {floor:.0f} "
                f"(baseline {ref['events_per_sec']:.0f}, "
                f"tolerated regression {max_regression:.0%})"
            )
    if compared == 0:
        # A gate that compares nothing must not report success: this
        # happens when the cell shape changed without regenerating the
        # committed baseline (or when no indexed+incremental cell ran).
        failures.append(
            f"no cells matched {baseline_path}; regenerate the baseline "
            "for the current cell shape (the regression gate would "
            "otherwise be a silent no-op)"
        )
    return failures


if __name__ == "__main__":
    raise SystemExit(main())
