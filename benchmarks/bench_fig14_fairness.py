"""Figure 14: the fairness knob ε.

The paper shows that increasing ε trades average-JCT speed-up (14a) for a
larger fraction of jobs meeting their fair-share JCT (14b); ε = 2 gives 69 %
of jobs their fair share in the paper's setup.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments.ablation import figure14_fairness_knob


def test_figure14_fairness_knob(benchmark, bench_config):
    table = run_once(
        benchmark,
        figure14_fairness_knob,
        bench_config,
        epsilons=(0.0, 2.0, 4.0),
        scenario="even",
    )
    print()
    print(
        format_table(
            ["epsilon", "speed-up over random", "jobs meeting fair-share JCT"],
            [[eps, s, f] for eps, (s, f) in table.items()],
            title="Figure 14 — fairness knob sweep",
        )
    )
    assert set(table) == {0.0, 2.0, 4.0}
    for speedup, fairness in table.values():
        assert speedup > 0
        assert 0.0 <= fairness <= 1.0
