"""Table 1: average JCT improvement over random matching per workload.

The paper reports, for 50-job workloads, improvements of 1.38-1.64x (FIFO),
1.41-1.69x (SRSF) and 1.63-1.88x (Venn).  At the quick benchmark scale the
absolute ratios differ, but the shape — Venn is the best policy and every
ordered policy beats random under contention — should hold.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.report import format_speedup_table
from repro.experiments.endtoend import table1_average_jct
from repro.traces.workloads import DEMAND_SCENARIOS


def test_table1_average_jct_improvement(benchmark, bench_config):
    table = run_once(
        benchmark,
        table1_average_jct,
        bench_config,
        scenarios=DEMAND_SCENARIOS,
        policies=("random", "fifo", "srsf", "venn"),
    )
    print()
    print(
        format_speedup_table(
            table,
            title="Table 1 — average JCT improvement over random matching",
        )
    )
    venn_speedups = [row["venn"] for row in table.values()]
    # Venn should beat random on every workload scenario.
    assert all(s > 1.0 for s in venn_speedups)
    # And be the best (or tied best) policy on the majority of scenarios.
    wins = sum(
        1 for row in table.values() if row["venn"] >= max(row.values()) - 0.1
    )
    assert wins >= len(table) / 2
