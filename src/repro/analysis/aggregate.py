"""Aggregation of sweep JSONL rows into per-(scenario, policy) summaries.

The sweep runner (:mod:`repro.experiments.sweep`) writes one row per
(scenario × seed × policy) cell.  This module folds those rows into the
numbers a scenario matrix is actually read by: mean / p50 / p99 JCT (pooled
over every job of every seed), SLA attainment and error rate per scenario
and policy.  It works off plain dicts so it can equally aggregate a
just-finished in-memory sweep or a JSONL artifact from CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .report import format_table
from .stats import mean_confidence_interval


def write_jsonl(rows: Iterable[Mapping], path: str) -> None:
    """Write rows as JSON Lines with sorted keys (reproducible bytes)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")


def load_jsonl(path: str) -> List[Dict]:
    """Load a JSONL artifact back into a list of row dicts."""
    rows: List[Dict] = []
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON row") from exc
    return rows


@dataclass(frozen=True)
class AggregateRow:
    """Summary of all cells sharing one (scenario, policy) pair."""

    scenario: str
    policy: str
    num_cells: int
    num_jobs: int
    mean_jct: float
    p50_jct: float
    p99_jct: float
    sla_attainment: float
    error_rate: float
    completion_rate: float
    total_aborts: int
    #: Round-completion-time (FCT analogue) statistics, pooled over every
    #: completed round of every cell; 0.0 when no round completed (or the
    #: rows predate the ``round_durations`` field).
    num_rounds: int = 0
    mean_rct: float = 0.0
    p50_rct: float = 0.0
    p99_rct: float = 0.0


def aggregate_rows(
    rows: Sequence[Mapping],
) -> Dict[Tuple[str, str], AggregateRow]:
    """Fold sweep rows into per-(scenario, policy) aggregates.

    JCT statistics pool the per-job JCTs of every seed (each row's
    ``job_jcts`` list) rather than averaging per-cell averages, so scenarios
    with uneven job counts are weighted by job, not by cell.  Rate metrics
    (SLA attainment, error rate, completion rate) are cell means — each cell
    is one independent replication.
    """
    groups: Dict[Tuple[str, str], List[Mapping]] = {}
    for row in rows:
        if row.get("status", "ok") != "ok":
            # Failed sweep cells carry an error payload instead of metrics;
            # they are reported separately, never folded into aggregates.
            continue
        try:
            key = (str(row["scenario"]), str(row["policy"]))
        except KeyError as exc:
            raise ValueError(f"sweep row missing required field: {exc}") from None
        groups.setdefault(key, []).append(row)

    out: Dict[Tuple[str, str], AggregateRow] = {}
    for key in sorted(groups):
        scenario, policy = key
        cells = groups[key]
        jcts = np.array(
            [jct for row in cells for jct in row.get("job_jcts", ())], dtype=float
        )
        if jcts.size:
            mean_jct = float(jcts.mean())
            p50 = float(np.percentile(jcts, 50.0))
            p99 = float(np.percentile(jcts, 99.0))
        else:
            mean_jct = p50 = p99 = 0.0
        rcts = np.array(
            [d for row in cells for d in row.get("round_durations", ())],
            dtype=float,
        )
        if rcts.size:
            mean_rct = float(rcts.mean())
            p50_rct = float(np.percentile(rcts, 50.0))
            p99_rct = float(np.percentile(rcts, 99.0))
        else:
            mean_rct = p50_rct = p99_rct = 0.0
        out[key] = AggregateRow(
            scenario=scenario,
            policy=policy,
            num_cells=len(cells),
            num_jobs=int(jcts.size),
            mean_jct=mean_jct,
            p50_jct=p50,
            p99_jct=p99,
            sla_attainment=float(
                np.mean([row.get("sla_attainment", 0.0) for row in cells])
            ),
            error_rate=float(np.mean([row.get("error_rate", 0.0) for row in cells])),
            completion_rate=float(
                np.mean([row.get("completion_rate", 0.0) for row in cells])
            ),
            total_aborts=int(sum(row.get("total_aborts", 0) for row in cells)),
            num_rounds=int(rcts.size),
            mean_rct=mean_rct,
            p50_rct=p50_rct,
            p99_rct=p99_rct,
        )
    return out


def aggregate_jsonl(path: str) -> Dict[Tuple[str, str], AggregateRow]:
    """Convenience: :func:`load_jsonl` + :func:`aggregate_rows`."""
    return aggregate_rows(load_jsonl(path))


def metrics_row(scenario: str, policy: str, metrics) -> Dict:
    """A minimal aggregation row built from one
    :class:`~repro.sim.metrics.SimulationMetrics`.

    In-memory twin of the sweep runner's JSONL rows: everything
    :func:`aggregate_rows` consumes, nothing serialised.  Partial metrics
    from a sharded run must be reduced first with
    :meth:`~repro.sim.metrics.SimulationMetrics.merge` (the engine returns
    them already merged; this matters only when aggregating shard-level
    snapshots by hand).
    """
    return {
        "scenario": scenario,
        "policy": policy,
        "job_jcts": sorted(metrics.job_jcts().values()),
        "round_durations": sorted(metrics.round_durations()),
        "sla_attainment": metrics.sla_attainment(),
        "error_rate": metrics.error_rate,
        "completion_rate": metrics.completion_rate,
        "total_aborts": metrics.total_aborts,
    }


def aggregate_metrics(
    cells: Iterable[Tuple[str, str, object]],
) -> Dict[Tuple[str, str], AggregateRow]:
    """Aggregate in-memory ``(scenario, policy, SimulationMetrics)`` cells.

    Replaces the JSONL round-trip for callers that already hold metrics
    objects (e.g. a just-finished in-process sweep): the cells flow through
    the same :func:`aggregate_rows` pooling as persisted artifacts, so both
    paths produce identical summaries.
    """
    return aggregate_rows(
        [metrics_row(scenario, policy, m) for scenario, policy, m in cells]
    )


# --------------------------------------------------------------------------- #
# Time-to-accuracy (co-simulation rows)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TargetAggregate:
    """Time-to-accuracy summary of one (scenario, policy, target) bucket."""

    target: float
    #: Jobs that reached the target / all workload jobs across the cells.
    attained_jobs: int
    total_jobs: int
    #: Mean and Student-t 95% CI of the time-to-target over attaining jobs
    #: (zero-width on 0/1 attaining jobs — see ``mean_confidence_interval``).
    mean_time: float
    time_ci_low: float
    time_ci_high: float

    @property
    def attainment(self) -> float:
        return self.attained_jobs / self.total_jobs if self.total_jobs else 0.0


@dataclass(frozen=True)
class CoSimAggregateRow:
    """Summary of all co-sim cells sharing one (scenario, policy) pair."""

    scenario: str
    policy: str
    num_cells: int
    total_jobs: int
    #: Mean final accuracy over the jobs that completed at least one round.
    mean_final_accuracy: float
    #: Per-target time-to-accuracy summaries, ascending by target.
    targets: Tuple[TargetAggregate, ...]

    def target(self, value: float) -> Optional[TargetAggregate]:
        for t in self.targets:
            if t.target == value:
                return t
        return None


def aggregate_cosim_rows(
    rows: Sequence[Mapping],
) -> Dict[Tuple[str, str], CoSimAggregateRow]:
    """Fold co-simulation sweep rows into per-(scenario, policy) summaries.

    Per-job times to each target pool across every cell of the pair (jobs
    that never reached a target contribute to the attainment denominator
    but not to the mean time), mirroring how :func:`aggregate_rows` pools
    per-job JCTs.  Rows are the dict/JSONL output of ``sweep --cosim``:
    ``targets`` (list of floats), ``time_to_target`` (``{str(target):
    {str(job_id): time-or-null}}``), ``final_accuracies``
    (``{str(job_id): accuracy}``) and ``total_jobs``.
    """
    groups: Dict[Tuple[str, str], List[Mapping]] = {}
    for row in rows:
        if row.get("status", "ok") != "ok":
            # Failed sweep cells carry an error payload instead of metrics.
            continue
        try:
            key = (str(row["scenario"]), str(row["policy"]))
        except KeyError as exc:
            raise ValueError(f"co-sim row missing required field: {exc}") from None
        groups.setdefault(key, []).append(row)

    out: Dict[Tuple[str, str], CoSimAggregateRow] = {}
    for key in sorted(groups):
        scenario, policy = key
        cells = groups[key]
        targets: Dict[float, List[float]] = {}
        total_jobs = 0
        finals: List[float] = []
        for row in cells:
            total_jobs += int(row.get("total_jobs", 0))
            finals.extend(float(a) for a in row.get("final_accuracies", {}).values())
            per_target = row.get("time_to_target", {})
            for raw_target in row.get("targets", ()):
                bucket = targets.setdefault(float(raw_target), [])
                times = per_target.get(str(raw_target), {})
                bucket.extend(float(t) for t in times.values() if t is not None)
        summaries = []
        for target in sorted(targets):
            times = targets[target]
            mean, low, high = mean_confidence_interval(times)
            summaries.append(
                TargetAggregate(
                    target=target,
                    attained_jobs=len(times),
                    total_jobs=total_jobs,
                    mean_time=mean,
                    time_ci_low=low,
                    time_ci_high=high,
                )
            )
        out[key] = CoSimAggregateRow(
            scenario=scenario,
            policy=policy,
            num_cells=len(cells),
            total_jobs=total_jobs,
            mean_final_accuracy=float(np.mean(finals)) if finals else 0.0,
            targets=tuple(summaries),
        )
    return out


def format_cosim_aggregates(
    aggregates: Mapping[Tuple[str, str], CoSimAggregateRow],
    title: str = "Time-to-accuracy (per scenario x policy x target)",
) -> str:
    """Plain-text table of co-sim aggregates, one row per target."""
    headers = [
        "scenario",
        "policy",
        "cells",
        "target",
        "attained",
        "mean TTA (s)",
        "95% CI (s)",
        "final acc",
    ]
    rows = []
    for _, agg in sorted(aggregates.items()):
        for t in agg.targets:
            rows.append(
                [
                    agg.scenario,
                    agg.policy,
                    agg.num_cells,
                    t.target,
                    f"{t.attained_jobs}/{t.total_jobs}",
                    t.mean_time,
                    f"[{t.time_ci_low:.0f}, {t.time_ci_high:.0f}]",
                    agg.mean_final_accuracy,
                ]
            )
    if not rows:
        return title + "\n(no rows)"
    return format_table(headers, rows, title=title)


def format_aggregates(
    aggregates: Mapping[Tuple[str, str], AggregateRow],
    title: str = "Sweep summary (per scenario x policy)",
) -> str:
    """Plain-text table of the aggregates, in scenario/policy order."""
    headers = [
        "scenario",
        "policy",
        "cells",
        "jobs",
        "mean JCT (s)",
        "p50 JCT (s)",
        "p99 JCT (s)",
        "p50 RCT (s)",
        "p99 RCT (s)",
        "SLA",
        "err rate",
        "aborts",
    ]
    rows = [
        [
            agg.scenario,
            agg.policy,
            agg.num_cells,
            agg.num_jobs,
            agg.mean_jct,
            agg.p50_jct,
            agg.p99_jct,
            agg.p50_rct,
            agg.p99_rct,
            agg.sla_attainment,
            agg.error_rate,
            agg.total_aborts,
        ]
        for _, agg in sorted(aggregates.items())
    ]
    if not rows:
        return title + "\n(no rows)"
    return format_table(headers, rows, title=title)


__all__ = [
    "AggregateRow",
    "CoSimAggregateRow",
    "TargetAggregate",
    "aggregate_cosim_rows",
    "aggregate_jsonl",
    "aggregate_metrics",
    "aggregate_rows",
    "format_aggregates",
    "format_cosim_aggregates",
    "load_jsonl",
    "metrics_row",
    "write_jsonl",
]
