"""Plain-text report formatting for tables and figure data.

The benchmark harness prints the same rows/series the paper reports; these
helpers render them as aligned ASCII tables so `pytest benchmarks/` output
(and the examples) are directly readable next to the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_cell(value: object, precision: int = 2) -> str:
    """Render one table cell; floats get ``precision`` decimals."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    Every row must have the same number of cells as ``headers``.
    """
    str_rows: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("every row must match the header length")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedup_table(
    speedups: Mapping[str, Mapping[str, float]],
    row_label: str = "workload",
    title: Optional[str] = None,
) -> str:
    """Render a ``{row -> {policy -> speedup}}`` mapping (Table 1 style)."""
    if not speedups:
        return title or ""
    columns = sorted({p for row in speedups.values() for p in row})
    headers = [row_label] + columns
    rows = []
    for label, row in speedups.items():
        rows.append(
            [label] + [f"{row[c]:.2f}x" if c in row else "-" for c in columns]
        )
    return format_table(headers, rows, title=title)


def format_series(
    x: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    x_label: str = "x",
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render one or more y-series against a shared x axis (figure data)."""
    headers = [x_label] + list(series)
    rows = []
    for i, xv in enumerate(x):
        rows.append([xv] + [s[i] for s in series.values()])
    return format_table(headers, rows, precision=precision, title=title)


def format_mapping(
    mapping: Mapping[str, object], title: Optional[str] = None, precision: int = 2
) -> str:
    """Render a flat key/value mapping."""
    rows = [[k, v] for k, v in mapping.items()]
    return format_table(["metric", "value"], rows, precision=precision, title=title)


__all__ = [
    "format_cell",
    "format_mapping",
    "format_series",
    "format_speedup_table",
    "format_table",
]
