"""Cross-policy statistics: the speed-up numbers the paper's tables report.

Every evaluation table in the paper is a ratio of average JCTs: "how much
faster is policy X than random matching" either overall (Table 1, Table 4,
Figure 12) or restricted to a slice of jobs (Table 2 by total-demand
percentile, Table 3 by eligibility category).  The helpers here turn a
mapping ``policy name -> SimulationMetrics`` into exactly those numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..sim.metrics import SimulationMetrics


def average_jct_speedup(
    results: Mapping[str, SimulationMetrics], baseline: str = "random"
) -> Dict[str, float]:
    """Average-JCT speed-up of every policy relative to ``baseline``."""
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base = results[baseline].average_jct
    out: Dict[str, float] = {}
    for name, metrics in results.items():
        jct = metrics.average_jct
        out[name] = float("inf") if jct <= 0 else base / jct
    return out


def jct_speedup_by_category(
    results: Mapping[str, SimulationMetrics],
    policy: str,
    baseline: str = "random",
) -> Dict[str, float]:
    """Per-eligibility-category speed-up of ``policy`` over ``baseline`` (Table 3)."""
    base_by_cat = results[baseline].jct_by_category()
    new_by_cat = results[policy].jct_by_category()
    out: Dict[str, float] = {}
    for category, base_jct in base_by_cat.items():
        new_jct = new_by_cat.get(category)
        if new_jct is None or new_jct <= 0:
            continue
        out[category] = base_jct / new_jct
    return out


def jct_speedup_by_demand_percentile(
    results: Mapping[str, SimulationMetrics],
    policy: str,
    baseline: str = "random",
    percentiles: Sequence[float] = (25.0, 50.0, 75.0),
) -> Dict[float, float]:
    """Speed-up over the jobs with the smallest total demands (Table 2)."""
    base = results[baseline].jct_by_demand_percentile(percentiles)
    new = results[policy].jct_by_demand_percentile(percentiles)
    out: Dict[float, float] = {}
    for p in percentiles:
        if new.get(p, 0.0) <= 0:
            continue
        out[p] = base[p] / new[p]
    return out


@dataclass
class BreakdownRow:
    """One row of a scheduling-delay / response-time breakdown (Figure 5)."""

    label: str
    scheduling_delay: float
    response_time: float

    @property
    def total(self) -> float:
        return self.scheduling_delay + self.response_time


def jct_breakdown(metrics: SimulationMetrics, label: str = "") -> BreakdownRow:
    """Average scheduling delay vs response time of one run (Figure 5)."""
    return BreakdownRow(
        label=label or metrics.policy,
        scheduling_delay=metrics.average_scheduling_delay,
        response_time=metrics.average_response_time,
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive entries."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return float(np.exp(np.mean(np.log(vals))))


def mean_confidence_interval(
    values: Iterable[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` Student-t confidence interval of the mean.

    Degenerate inputs collapse cleanly instead of raising: an empty sample
    returns ``(0.0, 0.0, 0.0)``, and a single sample or a zero-variance
    sample returns a zero-width interval at the mean (there is no spread
    to infer an interval from).  Sweep aggregates lean on this when a
    (scenario, policy, target) bucket ends up with 0 or 1 attaining jobs.
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    vals = np.asarray([float(v) for v in values], dtype=float)
    if vals.size == 0:
        return (0.0, 0.0, 0.0)
    mean = float(vals.mean())
    if vals.size == 1:
        return (mean, mean, mean)
    sem = float(vals.std(ddof=1)) / math.sqrt(vals.size)
    if sem == 0.0:
        return (mean, mean, mean)
    from scipy import stats as scipy_stats

    half = float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, vals.size - 1)) * sem
    return (mean, mean - half, mean + half)


def fairness_satisfaction(
    metrics: SimulationMetrics,
    solo_jcts: Mapping[int, float],
    num_jobs: Optional[int] = None,
) -> float:
    """Fraction of jobs whose JCT meets the fair-share target (Figure 14b).

    The fair-share JCT of a job is ``M * sd_i`` where ``sd_i`` is its
    contention-free JCT (provided by the caller, typically from a solo
    simulation or an analytic estimate) and ``M`` the number of jobs.
    """
    if not metrics.jobs:
        return 0.0
    M = num_jobs if num_jobs is not None else len(metrics.jobs)
    jcts = metrics.job_jcts()
    satisfied = 0
    counted = 0
    for job_id, jct in jcts.items():
        solo = solo_jcts.get(job_id)
        if solo is None or solo <= 0:
            continue
        counted += 1
        if jct <= M * solo:
            satisfied += 1
    return satisfied / counted if counted else 0.0


def summarize_run(metrics: SimulationMetrics) -> Dict[str, float]:
    """Flat dictionary of headline numbers for logging / reports."""
    return {
        "average_jct": metrics.average_jct,
        "average_completed_jct": metrics.average_completed_jct,
        "completion_rate": metrics.completion_rate,
        "average_scheduling_delay": metrics.average_scheduling_delay,
        "average_response_time": metrics.average_response_time,
        "total_aborts": float(metrics.total_aborts),
        "total_checkins": float(metrics.total_checkins),
        "total_responses": float(metrics.total_responses),
        "total_failures": float(metrics.total_failures),
    }


__all__ = [
    "BreakdownRow",
    "average_jct_speedup",
    "fairness_satisfaction",
    "geometric_mean",
    "jct_breakdown",
    "jct_speedup_by_category",
    "jct_speedup_by_demand_percentile",
    "mean_confidence_interval",
    "summarize_run",
]
