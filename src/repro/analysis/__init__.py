"""Metrics analysis and plain-text reporting helpers."""

from .aggregate import (
    AggregateRow,
    aggregate_jsonl,
    aggregate_metrics,
    aggregate_rows,
    format_aggregates,
    load_jsonl,
    metrics_row,
    write_jsonl,
)
from .report import (
    format_cell,
    format_mapping,
    format_series,
    format_speedup_table,
    format_table,
)
from .stats import (
    BreakdownRow,
    average_jct_speedup,
    fairness_satisfaction,
    geometric_mean,
    jct_breakdown,
    jct_speedup_by_category,
    jct_speedup_by_demand_percentile,
    summarize_run,
)

__all__ = [
    "AggregateRow",
    "BreakdownRow",
    "aggregate_jsonl",
    "aggregate_metrics",
    "aggregate_rows",
    "average_jct_speedup",
    "fairness_satisfaction",
    "format_cell",
    "format_mapping",
    "format_series",
    "format_aggregates",
    "format_speedup_table",
    "format_table",
    "geometric_mean",
    "load_jsonl",
    "metrics_row",
    "write_jsonl",
    "jct_breakdown",
    "jct_speedup_by_category",
    "jct_speedup_by_demand_percentile",
    "summarize_run",
]
