"""Decision recording, digests and first-divergence diagnostics.

The repo's identity gates (shard identity, vectorized identity, plan
maintenance, and now kill-and-resume) compare runs by a blake2b digest of
the assignment sequence.  A digest answers *whether* two runs diverged but
not *where*; and the benchmark's original hashing wrapper accumulated a
``hashlib`` object, which cannot be pickled into a
:meth:`~repro.sim.engine.Simulator.snapshot`.  This module fixes both:

* :class:`RecordingPolicy` — a transparent, **picklable** policy wrapper
  that records every actual assignment as a plain
  ``(now, device_id, job_id)`` tuple.  Snapshot a simulator wrapping one
  and the resumed run's record list continues seamlessly, so the full
  decision sequence of a kill-and-resume run is directly comparable with
  its uninterrupted twin.
* :func:`decision_hash` / :func:`metrics_digest` — the canonical digests
  (shared with ``benchmarks/bench_scalability.py``).
* :func:`first_divergence` / :func:`format_divergence` /
  :func:`describe_metrics_divergence` — actionable gate output: the first
  divergent decision record (index, time, device, job, both values)
  instead of two opaque hex strings.

No imports from the rest of the package: like :mod:`.faults` this is a
leaf module the engine and benchmarks can both use without cycles.
"""

from __future__ import annotations

import hashlib
import struct
from typing import List, Optional, Sequence, Tuple

#: One recorded assignment: (simulated time, device_id, job_id).
DecisionRecord = Tuple[float, int, int]


def decision_hash(decisions: Sequence[DecisionRecord]) -> str:
    """blake2b digest of an assignment sequence.

    Byte-compatible with the benchmark's historical ``TimedPolicy`` hash:
    each record contributes ``struct.pack("<dqq", now, device_id,
    job_id)``, None decisions are never recorded.
    """
    fp = hashlib.blake2b(digest_size=16)
    pack = struct.pack
    for now, device_id, job_id in decisions:
        fp.update(pack("<dqq", now, device_id, job_id))
    return fp.hexdigest()


def metrics_digest(metrics) -> str:
    """Digest of merged run metrics (counters + per-job censored JCTs).

    Identity gates compare this *in addition to* the decision hash:
    identical decisions with a broken metrics reduction (e.g. a
    double-counted shard) would still be caught.
    """
    fp = hashlib.blake2b(digest_size=16)
    fp.update(
        struct.pack(
            "<qqqq",
            metrics.total_checkins,
            metrics.total_responses,
            metrics.total_failures,
            metrics.total_aborts,
        )
    )
    for job_id, jct in sorted(metrics.job_jcts().items()):
        fp.update(struct.pack("<qd", job_id, jct))
    return fp.hexdigest()


class RecordingPolicy:
    """Transparent policy wrapper recording every actual assignment.

    Unlike a running ``hashlib`` object, the record list is plain data:
    a simulator wrapping a :class:`RecordingPolicy` snapshots and resumes
    cleanly, and the records survive the round trip.  ``None`` decisions
    are not recorded (the digest stays comparable between dispatch paths
    that offer different — but decision-equivalent — device streams).

    Only the *decision* entry points need explicit wrappers (below).  The
    response-side hooks — ``on_response`` and the batched
    ``on_response_batch`` — are deliberately left to ``__getattr__``
    forwarding: they resolve to the inner policy's bound methods, so the
    default batch hook's "policy never overrode ``on_response``" check
    evaluates against the inner policy's type, exactly as if the wrapper
    were not there.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = getattr(inner, "name", type(inner).__name__)
        self.decisions: List[DecisionRecord] = []
        if not hasattr(inner, "assign_batch_bulk"):
            # Don't advertise the ledger path for policies without it —
            # the engine probes with getattr and must fall back cleanly.
            self.assign_batch_bulk = None

    def assign(self, device, now):
        out = self._inner.assign(device, now)
        if out is not None:
            self.decisions.append((now, device.device_id, out.job_id))
        return out

    def assign_batch(self, devices, now, commit):
        # Explicit wrappers for the batched decision paths: ``__getattr__``
        # delegation would resolve them on the inner policy directly and
        # batched proposals would never reach the decision record.  The
        # commit protocol records from inside the callback (proposals are
        # logged in offer order, like the scalar path's append-per-assign);
        # the ledger protocol records from the returned proposal list.
        decisions = self.decisions

        def recording_commit(i, request):
            decisions.append((now, devices[i].device_id, request.job_id))
            return commit(i, request)

        return self._inner.assign_batch(devices, now, recording_commit)

    def assign_batch_bulk(self, devices, now):
        consumed, proposals = self._inner.assign_batch_bulk(devices, now)
        decisions = self.decisions
        for i, request in proposals:
            decisions.append((now, devices[i].device_id, request.job_id))
        return consumed, proposals

    @property
    def decision_hash(self) -> str:
        return decision_hash(self.decisions)

    @property
    def profile_decisions(self):
        return getattr(self._inner, "profile_decisions", False)

    @profile_decisions.setter
    def profile_decisions(self, value):
        # The engine flips this flag on the policy it was handed; plain
        # attribute assignment would land in the wrapper's instance dict
        # and the inner policy would keep profiling disabled.
        self._inner.profile_decisions = value

    def __getattr__(self, item):
        # Guarded forwarding: during unpickling the instance dict is empty
        # and pickle probes for optional protocol methods; recursing into
        # getattr(self._inner, ...) before _inner exists would loop forever.
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(item)
        return getattr(inner, item)


def first_divergence(
    a: Sequence[DecisionRecord], b: Sequence[DecisionRecord]
) -> Optional[int]:
    """Index of the first differing record, or None if identical.

    A strict prefix diverges at ``min(len(a), len(b))`` (the shorter run
    simply stopped making decisions).
    """
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    if len(a) != len(b):
        return n
    return None


def _fmt_record(records: Sequence[DecisionRecord], index: int) -> str:
    if index < len(records):
        now, device_id, job_id = records[index]
        return f"(t={now:.3f}s device={device_id} job={job_id})"
    return f"<no record; run made only {len(records)} decisions>"


def format_divergence(
    a: Sequence[DecisionRecord],
    b: Sequence[DecisionRecord],
    label_a: str = "reference",
    label_b: str = "candidate",
) -> str:
    """Human-readable first-divergence report for a failed decision gate."""
    index = first_divergence(a, b)
    if index is None:
        return (
            f"decision sequences identical ({len(a)} records) — "
            "divergence must be in metrics or event counts"
        )
    return (
        f"first divergent decision at index {index} "
        f"(of {len(a)} {label_a} / {len(b)} {label_b} records): "
        f"{label_a}={_fmt_record(a, index)} "
        f"{label_b}={_fmt_record(b, index)}"
    )


def describe_metrics_divergence(
    a, b, label_a: str = "reference", label_b: str = "candidate"
) -> str:
    """First differing metrics field between two SimulationMetrics.

    Compares the exact fields :func:`metrics_digest` hashes — the four
    lifecycle counters, then per-job JCTs in job-id order.
    """
    for name in (
        "total_checkins",
        "total_responses",
        "total_failures",
        "total_aborts",
    ):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            return f"metrics diverge at {name}: {label_a}={va} {label_b}={vb}"
    jcts_a, jcts_b = a.job_jcts(), b.job_jcts()
    for job_id in sorted(set(jcts_a) | set(jcts_b)):
        va, vb = jcts_a.get(job_id), jcts_b.get(job_id)
        if va != vb:
            return (
                f"metrics diverge at job {job_id} JCT: "
                f"{label_a}={va} {label_b}={vb}"
            )
    return "metrics fields identical"


__all__ = [
    "DecisionRecord",
    "RecordingPolicy",
    "decision_hash",
    "describe_metrics_divergence",
    "first_divergence",
    "format_divergence",
    "metrics_digest",
]
