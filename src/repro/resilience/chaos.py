"""Chaos harness: kill runs at random events, resume, assert identity.

``python -m repro.resilience.chaos`` is the executable form of the
exact-resume contract (``docs/RESILIENCE.md``): for each engine mode it

1. runs an uninterrupted *reference* simulation and records its decision
   sequence and metrics digest;
2. samples crash points uniformly over the reference run's event count;
3. for each crash point, runs a twin with periodic checkpointing and a
   ``coordinator_crash`` fault at that event, catches the
   :class:`~repro.resilience.SimulatedCrash`, resumes from the **latest
   checkpoint** (fault cleared, like a restarted process), and asserts the
   resumed run's decision hash and metrics digest are bit-identical to the
   reference.

Any divergence prints the first divergent decision record (index, time,
device, job — both runs' values) and fails the process, which is what the
CI ``chaos-smoke`` job gates on.

The harness lives outside :mod:`repro.resilience`'s ``__init__`` because
it imports the experiment layer (which imports the engine, which imports
the resilience leaf modules) — importing it eagerly would cycle.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np

from ..core.baselines import make_policy
from ..experiments.config import ExperimentConfig, get_config
from ..experiments.environment import build_environment
from ..sim.engine import Simulator
from .faults import FaultPlan, SimulatedCrash
from .record import RecordingPolicy, format_divergence, metrics_digest
from .snapshot import LatestSnapshotStore


def build_simulator(
    cfg: ExperimentConfig,
    *,
    policy_name: str,
    num_shards: int,
    vectorized: bool,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_interval: Optional[int] = None,
    checkpoint_sink=None,
) -> Simulator:
    """One fully wired simulator for a chaos run.

    The environment (devices, availability, workload) is rebuilt from the
    config's seed each call — bit-identical across calls, like a process
    restart re-reading its inputs.
    """
    sim_cfg = replace(
        cfg.simulation,
        num_shards=num_shards,
        vectorized_dispatch=vectorized,
        fault_plan=fault_plan,
        checkpoint_interval=checkpoint_interval,
    )
    env = build_environment(cfg)
    kwargs = {}
    if policy_name.startswith("venn"):
        kwargs["plan_maintenance"] = cfg.plan_maintenance
    policy = RecordingPolicy(
        make_policy(policy_name, seed=cfg.seed_for("policy"), **kwargs)
    )
    return Simulator(
        devices=env.devices,
        availability=env.availability,
        workload=env.workload,
        policy=policy,
        config=sim_cfg,
        checkpoint_sink=checkpoint_sink,
    )


def run_mode(
    cfg: ExperimentConfig,
    *,
    policy_name: str,
    num_shards: int,
    vectorized: bool,
    crashes: int,
    checkpoint_every: int,
    rng: np.random.Generator,
    verbose: bool = False,
) -> List[str]:
    """Kill-and-resume one engine mode at ``crashes`` random events.

    Returns a list of failure descriptions (empty = the mode passed).
    """
    label = f"shards={num_shards} {'vec' if vectorized else 'scalar'}"
    reference = build_simulator(
        cfg,
        policy_name=policy_name,
        num_shards=num_shards,
        vectorized=vectorized,
    )
    ref_metrics = reference.run()
    ref_decisions = reference.policy.decisions
    ref_digest = metrics_digest(ref_metrics)
    n_events = reference.events_processed
    # Crash strictly inside the run: event 0 has nothing to resume over
    # and a crash at the final event is the uninterrupted run.
    k = min(crashes, max(1, n_events - 1))
    crash_points = sorted(
        (rng.choice(n_events - 1, size=k, replace=False) + 1).tolist()
    )
    failures: List[str] = []
    for at_event in crash_points:
        store = LatestSnapshotStore()
        sim = build_simulator(
            cfg,
            policy_name=policy_name,
            num_shards=num_shards,
            vectorized=vectorized,
            fault_plan=FaultPlan.crash_at(at_event),
            checkpoint_interval=checkpoint_every,
            checkpoint_sink=store,
        )
        # A crash before the first periodic checkpoint restarts from the
        # pre-run snapshot — the "no checkpoint yet" recovery path.
        snapshot = sim.snapshot()
        try:
            sim.run()
            failures.append(
                f"[{label}] crash at event {at_event} never fired "
                f"(run finished after {sim.events_processed} events)"
            )
            continue
        except SimulatedCrash:
            pass
        if store.latest is not None:
            snapshot = store.latest
        resumed = Simulator.resume(snapshot, fault_plan=None)
        res_metrics = resumed.run()
        problems = []
        if resumed.policy.decisions != ref_decisions:
            problems.append(
                format_divergence(
                    ref_decisions,
                    resumed.policy.decisions,
                    label_a="uninterrupted",
                    label_b="resumed",
                )
            )
        if metrics_digest(res_metrics) != ref_digest:
            problems.append(
                f"metrics digest diverged: uninterrupted={ref_digest} "
                f"resumed={metrics_digest(res_metrics)}"
            )
        if problems:
            failures.append(
                f"[{label}] crash at event {at_event} "
                f"(resumed from event {snapshot.events_processed}): "
                + "; ".join(problems)
            )
        elif verbose:
            print(
                f"  {label}: crash@{at_event} -> resume@"
                f"{snapshot.events_processed} OK"
            )
    status = "FAIL" if failures else "ok"
    print(
        f"{label}: {k} kill-and-resume runs over {n_events} events "
        f"({len(failures)} divergent) {status}"
    )
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=(
            "Crash the simulator at random events, resume from the latest "
            "checkpoint and assert bit-identical decisions and metrics."
        )
    )
    parser.add_argument(
        "--crashes",
        type=int,
        default=20,
        help="crash points sampled per engine mode (default 20)",
    )
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts to cover (default 1,2,4)",
    )
    parser.add_argument(
        "--modes",
        default="scalar,vectorized",
        help="engine modes: scalar, vectorized, or both (default both)",
    )
    parser.add_argument(
        "--preset",
        default="quick",
        choices=("quick", "default", "large"),
        help="experiment preset sizing the environment (default quick)",
    )
    parser.add_argument("--seed", type=int, default=123)
    parser.add_argument(
        "--crash-seed",
        type=int,
        default=2024,
        help="seed of the crash-point sampler (decoupled from --seed)",
    )
    parser.add_argument("--policy", default="venn")
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=500,
        help="periodic checkpoint interval in events (default 500)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    shard_counts = sorted({int(s) for s in args.shards.split(",") if s})
    if not shard_counts or min(shard_counts) < 1:
        parser.error("--shards needs positive integers")
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    unknown = set(modes) - {"scalar", "vectorized"}
    if unknown or not modes:
        parser.error("--modes takes 'scalar' and/or 'vectorized'")

    cfg = get_config(args.preset, seed=args.seed)
    rng = np.random.default_rng(args.crash_seed)
    t0 = time.perf_counter()
    failures: List[str] = []
    for num_shards in shard_counts:
        for mode in modes:
            failures.extend(
                run_mode(
                    cfg,
                    policy_name=args.policy,
                    num_shards=num_shards,
                    vectorized=(mode == "vectorized"),
                    crashes=args.crashes,
                    checkpoint_every=args.checkpoint_every,
                    rng=rng,
                    verbose=args.verbose,
                )
            )
    elapsed = time.perf_counter() - t0
    if failures:
        print(f"\nchaos: {len(failures)} divergent resume(s) in {elapsed:.1f}s")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"chaos: all kill-and-resume runs bit-identical ({elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
