"""Crash safety for the simulation engine: checkpoints, faults, chaos.

Three pillars (see ``docs/RESILIENCE.md``):

* **Checkpoint/restore** — :meth:`repro.sim.engine.Simulator.snapshot` /
  :meth:`~repro.sim.engine.Simulator.resume` plus
  ``SimulationConfig(checkpoint_interval=N)`` for periodic snapshots.
  The contract is *exact resume*: a run resumed from any checkpoint
  reproduces the uninterrupted run's decisions and metrics bit-identically
  at every shard count, scalar and vectorized.
* **Fault injection** — declarative :class:`FaultPlan` (coordinator crash,
  shard kill/stall, dropped plan broadcast) attached via
  ``SimulationConfig(fault_plan=...)``; a strict no-op when absent.
* **Chaos harness** — ``python -m repro.resilience.chaos`` kills runs at
  random events, resumes from the latest checkpoint and asserts hash
  identity against the uninterrupted twin (the CI ``chaos-smoke`` gate).

:mod:`.chaos` is intentionally not imported here: it pulls in the
experiment layer, which itself imports the engine — importing it eagerly
would cycle.
"""

from .faults import (
    COORDINATOR_CRASH,
    DROP_PLAN_BROADCAST,
    FAULT_KINDS,
    KILL_SHARD,
    SHARD_FAULT_KINDS,
    STALL_SHARD,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
)
from .record import (
    DecisionRecord,
    RecordingPolicy,
    decision_hash,
    describe_metrics_divergence,
    first_divergence,
    format_divergence,
    metrics_digest,
)
from .snapshot import LatestSnapshotStore, SimulationSnapshot

__all__ = [
    "COORDINATOR_CRASH",
    "DROP_PLAN_BROADCAST",
    "DecisionRecord",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KILL_SHARD",
    "LatestSnapshotStore",
    "RecordingPolicy",
    "SHARD_FAULT_KINDS",
    "STALL_SHARD",
    "SimulatedCrash",
    "SimulationSnapshot",
    "decision_hash",
    "describe_metrics_divergence",
    "first_divergence",
    "format_divergence",
    "metrics_digest",
]
