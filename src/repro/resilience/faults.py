"""Declarative fault injection for the simulation engine.

The ROADMAP's live-coordinator ambitions need the engine to *model* the
failure modes a real deployment sees — a device shard dying mid-run, the
coordinator process crashing, a plan broadcast that never reaches a shard,
a shard whose event drain stalls — and to recover from them along the
paper's determinism contract.  This module is the declarative surface:

* :class:`FaultSpec` — one fault (kind, firing point, target, duration);
* :class:`FaultPlan` — an immutable set of faults attached to a run via
  ``SimulationConfig(fault_plan=...)``;
* :class:`FaultInjector` — the engine-side interpreter, polled once per
  processed event batch at a safe boundary;
* :class:`SimulatedCrash` — raised when a ``coordinator_crash`` fault
  fires; the chaos harness (:mod:`repro.resilience.chaos`) catches it and
  resumes from the latest checkpoint.

Design constraints (mirroring PR 6's ``degrades_network`` gating):

* **no-op when absent** — a run without a fault plan executes exactly the
  historical code path: the engine polls nothing, shards take one extra
  comparison per scheduled response, and every decision/metrics hash is
  unchanged (the golden fixtures pin this);
* **deterministic when present** — faults fire at event-count boundaries,
  not wall-clock times, so a faulted run is exactly reproducible (the
  fault tests replay plans and assert identical hashes);
* **leaf module** — no imports from the rest of the package, so the
  engine can import it without cycles and snapshots embedding an injector
  stay picklable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Fault kinds.
COORDINATOR_CRASH = "coordinator_crash"
KILL_SHARD = "kill_shard"
STALL_SHARD = "stall_shard"
DROP_PLAN_BROADCAST = "drop_plan_broadcast"

FAULT_KINDS = frozenset(
    {COORDINATOR_CRASH, KILL_SHARD, STALL_SHARD, DROP_PLAN_BROADCAST}
)

#: Kinds that target one device shard (and therefore need the
#: coordinator/shard engine).
SHARD_FAULT_KINDS = frozenset({KILL_SHARD, STALL_SHARD, DROP_PLAN_BROADCAST})


class SimulatedCrash(RuntimeError):
    """Raised by a ``coordinator_crash`` fault at an event boundary.

    The simulation state is consistent when this propagates (the fault
    fires between fully processed events), so the run can be resumed from
    any earlier checkpoint — or, with no checkpoint, restarted from
    scratch — and replayed bit-identically.
    """

    def __init__(self, events_processed: int, now: float) -> None:
        super().__init__(
            f"injected coordinator crash after {events_processed} events "
            f"(t={now:.1f}s)"
        )
        self.events_processed = events_processed
        self.now = now


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    ``at_event`` counts *processed simulation events*: the fault fires at
    the first safe boundary where the engine's event counter has reached
    it.  Shard-targeted kinds carry the shard index and an outage
    ``duration`` in simulated seconds; ``drop_plan_broadcast`` instead
    uses ``backoff`` — the simulated delay until the coordinator notices
    and re-broadcasts the current plan version.
    """

    kind: str
    at_event: int
    shard: Optional[int] = None
    duration: float = 0.0
    backoff: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.at_event < 0:
            raise ValueError("at_event must be non-negative")
        if self.kind in SHARD_FAULT_KINDS:
            if self.shard is None or self.shard < 0:
                raise ValueError(f"{self.kind} needs a non-negative shard index")
        elif self.shard is not None:
            raise ValueError(f"{self.kind} does not target a shard")
        if self.kind in (KILL_SHARD, STALL_SHARD) and self.duration <= 0:
            raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind == DROP_PLAN_BROADCAST and self.backoff <= 0:
            raise ValueError("drop_plan_broadcast needs a positive backoff")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of faults for one run.

    Attach with ``SimulationConfig(fault_plan=plan)``.  Constructors for
    the common single-fault plans are provided; compose several faults by
    passing the specs directly.
    """

    faults: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected FaultSpec, got {type(spec).__name__}")

    # ------------------------------------------------------------------ #
    # Single-fault constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def crash_at(cls, at_event: int) -> "FaultPlan":
        """Coordinator process dies after ``at_event`` processed events."""
        return cls((FaultSpec(COORDINATOR_CRASH, at_event),))

    @classmethod
    def kill_shard(
        cls, shard: int, at_event: int, duration: float
    ) -> "FaultPlan":
        """Shard ``shard`` dies for ``duration`` simulated seconds."""
        return cls((FaultSpec(KILL_SHARD, at_event, shard, duration),))

    @classmethod
    def stall_shard(
        cls, shard: int, at_event: int, duration: float
    ) -> "FaultPlan":
        """Shard ``shard``'s response drain stalls for ``duration`` seconds."""
        return cls((FaultSpec(STALL_SHARD, at_event, shard, duration),))

    @classmethod
    def drop_plan_broadcast(
        cls, shard: int, at_event: int, backoff: float = 60.0
    ) -> "FaultPlan":
        """The next plan broadcast to ``shard`` is lost; the coordinator
        re-broadcasts after ``backoff`` simulated seconds."""
        return cls(
            (FaultSpec(DROP_PLAN_BROADCAST, at_event, shard, backoff=backoff),)
        )

    @property
    def needs_sharded_engine(self) -> bool:
        return any(f.kind in SHARD_FAULT_KINDS for f in self.faults)

    @property
    def max_shard(self) -> int:
        """Largest shard index any fault targets (-1 if none)."""
        return max(
            (f.shard for f in self.faults if f.shard is not None), default=-1
        )


class FaultInjector:
    """Engine-side interpreter of a :class:`FaultPlan`.

    The engine polls :meth:`poll` once per processed event batch, at a
    boundary where no event is half-applied.  The injector fires every
    fault whose ``at_event`` has been reached, in ``(at_event,
    declaration-order)`` order, and delivers pending plan re-broadcasts
    whose backoff has elapsed.  All state is plain data, so an injector
    embedded in a :meth:`~repro.sim.engine.Simulator.snapshot` pickles
    cleanly; a resumed run replays faults that had not fired at checkpoint
    time (clear them with ``Simulator.resume(..., fault_plan=None)``).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # Stable sort: same-at_event faults keep declaration order.
        self._pending: List[FaultSpec] = sorted(
            plan.faults, key=lambda f: f.at_event
        )
        self._cursor = 0
        #: Scheduled plan re-broadcasts: ``(due_time, shard_index)``.
        self._rebroadcasts: List[Tuple[float, int]] = []
        self.stats: Dict[str, int] = {
            "faults_fired": 0,
            "crashes": 0,
            "shards_killed": 0,
            "shards_stalled": 0,
            "broadcasts_dropped": 0,
            "plan_rebroadcasts": 0,
        }

    def validate(self, sim) -> None:
        """Fail fast (at run start) on faults the engine cannot host."""
        for spec in self._pending:
            if spec.kind in SHARD_FAULT_KINDS:
                if not sim._sharded:
                    raise ValueError(
                        f"{spec.kind} faults need the coordinator/shard "
                        "engine (SimulationConfig(num_shards=N) or "
                        "sharded_dispatch=True)"
                    )
                if spec.shard >= sim._num_shards:
                    raise ValueError(
                        f"{spec.kind} targets shard {spec.shard} but the run "
                        f"has only {sim._num_shards} shard(s)"
                    )

    def poll(self, sim) -> bool:
        """Fire every due fault; return True if any shard state changed.

        Called by the engine between events.  May raise
        :class:`SimulatedCrash` (coordinator faults propagate out of
        ``Simulator.run``).
        """
        fired = False
        if self._rebroadcasts:
            now = sim.now
            due = [r for r in self._rebroadcasts if r[0] <= now]
            if due:
                self._rebroadcasts = [
                    r for r in self._rebroadcasts if r[0] > now
                ]
                plan_version = getattr(sim.policy, "plan_version", None)
                for _, shard_index in due:
                    shard = sim._shards[shard_index]
                    if plan_version is not None:
                        shard.last_plan_version = plan_version
                    shard.plan_rebroadcasts += 1
                    self.stats["plan_rebroadcasts"] += 1
                fired = True
        events = sim._events_processed
        while (
            self._cursor < len(self._pending)
            and self._pending[self._cursor].at_event <= events
        ):
            spec = self._pending[self._cursor]
            self._cursor += 1
            self._fire(sim, spec)
            fired = True
        return fired

    @property
    def exhausted(self) -> bool:
        """All faults fired and no re-broadcast outstanding."""
        return self._cursor >= len(self._pending) and not self._rebroadcasts

    def _fire(self, sim, spec: FaultSpec) -> None:
        self.stats["faults_fired"] += 1
        if spec.kind == COORDINATOR_CRASH:
            self.stats["crashes"] += 1
            raise SimulatedCrash(sim._events_processed, sim.now)
        shard = sim._shards[spec.shard]
        if spec.kind == KILL_SHARD:
            self.stats["shards_killed"] += 1
            shard.kill_until(sim.now + spec.duration)
        elif spec.kind == STALL_SHARD:
            self.stats["shards_stalled"] += 1
            shard.delay_responses_until(sim.now + spec.duration)
        else:  # DROP_PLAN_BROADCAST
            self.stats["broadcasts_dropped"] += 1
            shard.broadcast_drop_pending += 1
            self._rebroadcasts.append((sim.now + spec.backoff, spec.shard))


__all__ = [
    "COORDINATOR_CRASH",
    "DROP_PLAN_BROADCAST",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KILL_SHARD",
    "SHARD_FAULT_KINDS",
    "STALL_SHARD",
    "SimulatedCrash",
]
