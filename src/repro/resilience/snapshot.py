"""Checkpoint container + convenience sinks for crash-safe simulation.

The engine's :meth:`~repro.sim.engine.Simulator.snapshot` captures the
*entire* simulation state by pickling the simulator object graph — event
queue heap and sequence counter, device runtimes / struct-of-arrays
vector state, shard stream cursors and response heaps, scheduling plan +
atom-index epoch, supply-estimator buckets, the RNG master key with every
per-device draw counter, and all in-flight resource requests.  The pickle
memo preserves the shared-reference structure (engine ↔ policy ↔ shard
state point at the same objects), which is what makes the restored graph
behave identically to the original.

This module holds the plain-data wrapper around that payload plus a tiny
sink for periodic checkpointing.  It is a leaf module (no package
imports), so the engine can use it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class SimulationSnapshot:
    """One full-state checkpoint of a :class:`~repro.sim.engine.Simulator`.

    ``payload`` is the pickled simulator; ``events_processed`` / ``now`` /
    ``started`` describe the capture point without deserialising (a
    pre-run snapshot has ``started=False`` — resuming it replays the whole
    run from scratch).
    """

    payload: bytes
    events_processed: int
    now: float
    started: bool

    @property
    def size_bytes(self) -> int:
        return len(self.payload)


class LatestSnapshotStore:
    """Checkpoint sink keeping the most recent snapshot (plus a count).

    Pass as ``Simulator(..., checkpoint_sink=store)`` — or rely on the
    simulator's own ``last_snapshot`` attribute; the store exists for
    callers that outlive the simulator object (e.g. the chaos harness's
    crash-and-resume loop) or want the history length.
    """

    def __init__(self, keep_history: bool = False) -> None:
        self.latest: Optional[SimulationSnapshot] = None
        self.count = 0
        self.history: List[SimulationSnapshot] = []
        self._keep_history = keep_history

    def __call__(self, snapshot: SimulationSnapshot) -> None:
        self.latest = snapshot
        self.count += 1
        if self._keep_history:
            self.history.append(snapshot)


__all__ = ["LatestSnapshotStore", "SimulationSnapshot"]
