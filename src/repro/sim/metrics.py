"""Simulation metrics: JCT, scheduling delay and response-collection time.

The paper's primary metric is the average job completion time (JCT); its
analysis figures additionally break JCT into scheduling delay and response
collection time (Figure 1 / Figure 5) and slice improvements by job size and
eligibility category (Tables 2 and 3).  This module computes all of those
from the simulator's per-job round records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from .job import JobRuntime


@dataclass
class JobMetrics:
    """Metrics of a single job after a simulation run."""

    job_id: int
    name: str
    category: str
    demand_per_round: int
    num_rounds: int
    total_demand: int
    arrival_time: float
    completed: bool
    jct: Optional[float]
    #: Per-completed-round scheduling delays / response collection times.
    scheduling_delays: List[float] = field(default_factory=list)
    response_times: List[float] = field(default_factory=list)
    #: Per-completed-round reporting sets (sorted device ids that reported
    #: before the round closed) and absolute completion times, in round
    #: order.  These are what couple the simulator to federated training:
    #: the co-simulation layer trains exactly these participants and places
    #: the resulting accuracy at exactly these times.
    round_participants: List[Sequence[int]] = field(default_factory=list)
    round_completion_times: List[float] = field(default_factory=list)
    #: Per-completed-round durations of the successful attempt, submit to
    #: close — the round-completion-time (FCT-analogue) distribution the
    #: network-degradation scenarios are judged on.
    round_durations: List[float] = field(default_factory=list)
    aborted_rounds: int = 0
    rounds_completed: int = 0
    #: Per-round deadline of the job's spec; 0 means unknown (job excluded
    #: from deadline-based SLO accounting).
    round_deadline: float = 0.0

    @property
    def slo_target(self) -> float:
        """Deadline-derived JCT budget: every round finishing exactly at its
        deadline once, with no aborted attempts.  0 when the deadline is
        unknown."""
        return self.num_rounds * self.round_deadline

    @property
    def mean_scheduling_delay(self) -> float:
        return float(np.mean(self.scheduling_delays)) if self.scheduling_delays else 0.0

    @property
    def mean_response_time(self) -> float:
        return float(np.mean(self.response_times)) if self.response_times else 0.0


@dataclass
class SimulationMetrics:
    """Aggregate metrics of one simulation run."""

    policy: str
    horizon: float
    jobs: Dict[int, JobMetrics] = field(default_factory=dict)
    #: Total device check-ins observed during the run.
    total_checkins: int = 0
    #: Total successful task responses.
    total_responses: int = 0
    #: Total device-task failures (dropouts / offline).
    total_failures: int = 0
    #: Total aborted round attempts across all jobs.
    total_aborts: int = 0
    #: Plan-maintenance profile snapshot (policies that expose a
    #: ``plan_profile``, i.e. Venn; ``None`` otherwise).  See
    #: :class:`repro.sim.profile.PlanMaintenanceProfile`.
    plan_maintenance: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    # Exact reduction
    # ------------------------------------------------------------------ #
    def merge(self, other: "SimulationMetrics") -> "SimulationMetrics":
        """Exact reduction of two partial metrics of the *same* run/setup.

        The sharded engine keeps per-shard counter metrics (check-ins,
        responses, failures are device physics and live with the owning
        shard) and the coordinator keeps job metrics and abort counts;
        merging them reconstructs exactly what the single-queue engine
        would have counted — every field is either a disjoint union (jobs)
        or a sum (counters, plan-maintenance profile snapshots), so the
        reduction is associative, commutative and loss-free.

        Raises ``ValueError`` when the two sides disagree on policy or
        horizon, or track overlapping job ids (those are different runs,
        not partitions of one).
        """
        if self.policy != other.policy:
            raise ValueError(
                f"cannot merge metrics of different policies: "
                f"{self.policy!r} vs {other.policy!r}"
            )
        if self.horizon != other.horizon:
            raise ValueError(
                f"cannot merge metrics of different horizons: "
                f"{self.horizon!r} vs {other.horizon!r}"
            )
        overlap = self.jobs.keys() & other.jobs.keys()
        if overlap:
            raise ValueError(
                f"cannot merge metrics with overlapping jobs: {sorted(overlap)[:5]}"
            )
        return SimulationMetrics(
            policy=self.policy,
            horizon=self.horizon,
            jobs={**self.jobs, **other.jobs},
            total_checkins=self.total_checkins + other.total_checkins,
            total_responses=self.total_responses + other.total_responses,
            total_failures=self.total_failures + other.total_failures,
            total_aborts=self.total_aborts + other.total_aborts,
            plan_maintenance=_merge_plan_maintenance(
                self.plan_maintenance, other.plan_maintenance
            ),
        )

    @staticmethod
    def merge_all(
        parts: Sequence["SimulationMetrics"],
    ) -> "SimulationMetrics":
        """Reduce several partial metrics with :meth:`merge`."""
        if not parts:
            raise ValueError("need at least one SimulationMetrics to merge")
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.merge(part)
        return merged

    # ------------------------------------------------------------------ #
    # JCT aggregates
    # ------------------------------------------------------------------ #
    def job_jcts(self, censor_to_horizon: bool = True) -> Dict[int, float]:
        """JCT per job; unfinished jobs are censored to the horizon.

        Censoring keeps cross-policy comparisons meaningful: a policy that
        fails to finish a job within the horizon is charged at least the
        horizon-minus-arrival time for it.
        """
        out: Dict[int, float] = {}
        for job_id, jm in self.jobs.items():
            if jm.jct is not None:
                out[job_id] = jm.jct
            elif censor_to_horizon:
                out[job_id] = max(0.0, self.horizon - jm.arrival_time)
        return out

    @property
    def average_jct(self) -> float:
        """Average JCT over all jobs (unfinished censored to the horizon)."""
        jcts = list(self.job_jcts().values())
        return float(np.mean(jcts)) if jcts else 0.0

    @property
    def average_completed_jct(self) -> float:
        """Average JCT over completed jobs only."""
        jcts = [m.jct for m in self.jobs.values() if m.jct is not None]
        return float(np.mean(jcts)) if jcts else 0.0

    @property
    def completion_rate(self) -> float:
        if not self.jobs:
            return 0.0
        return sum(1 for m in self.jobs.values() if m.completed) / len(self.jobs)

    @property
    def average_scheduling_delay(self) -> float:
        delays = [d for m in self.jobs.values() for d in m.scheduling_delays]
        return float(np.mean(delays)) if delays else 0.0

    @property
    def average_response_time(self) -> float:
        times = [t for m in self.jobs.values() for t in m.response_times]
        return float(np.mean(times)) if times else 0.0

    def jct_percentile(self, p: float) -> float:
        """``p``-th percentile of per-job JCTs (censored to the horizon).

        Returns 0.0 for an empty run.  With a single job every percentile is
        that job's JCT; numpy's linear interpolation handles the rest.
        """
        if not (0.0 <= p <= 100.0):
            raise ValueError("percentile must be in [0, 100]")
        jcts = list(self.job_jcts().values())
        if not jcts:
            return 0.0
        return float(np.percentile(np.asarray(jcts, dtype=float), p))

    def jct_percentiles(
        self, percentiles: Sequence[float] = (50.0, 99.0)
    ) -> Dict[float, float]:
        """Several JCT percentiles at once (sweep rows report p50/p99)."""
        return {float(p): self.jct_percentile(p) for p in percentiles}

    # ------------------------------------------------------------------ #
    # Round-completion times (FCT analogue)
    # ------------------------------------------------------------------ #
    def round_durations(self) -> List[float]:
        """Pooled per-round completion times (successful attempt, submit to
        close) across all jobs, in job-id order then round order.

        This is the simulator's flow-completion-time analogue: network
        degradation (loss retries, link flaps, slow link tiers) shows up
        here long before it moves the per-job JCT aggregates.
        """
        out: List[float] = []
        for job_id in sorted(self.jobs):
            out.extend(self.jobs[job_id].round_durations)
        return out

    @property
    def average_round_duration(self) -> float:
        durations = self.round_durations()
        return float(np.mean(durations)) if durations else 0.0

    def round_duration_percentile(self, p: float) -> float:
        """``p``-th percentile of pooled round-completion times (0.0 when
        no round completed)."""
        if not (0.0 <= p <= 100.0):
            raise ValueError("percentile must be in [0, 100]")
        durations = self.round_durations()
        if not durations:
            return 0.0
        return float(np.percentile(np.asarray(durations, dtype=float), p))

    @property
    def error_rate(self) -> float:
        """Fraction of device responses that were failures (dropouts)."""
        attempts = self.total_responses + self.total_failures
        if attempts <= 0:
            return 0.0
        return self.total_failures / attempts

    def sla_attainment(self, slo_scale: float = 2.0) -> float:
        """Fraction of jobs that completed within ``slo_scale ×`` their
        deadline-derived JCT budget (:attr:`JobMetrics.slo_target`).

        A job's budget is ``num_rounds × round_deadline`` — the JCT it would
        have if every round barely met its deadline with no aborts — so
        ``slo_scale`` is the number of "worst-case rounds" the operator
        tolerates per round on average.  Jobs with a degenerate budget
        (``round_deadline <= 0``, hence ``slo_target <= 0``) carry no SLO
        and are excluded from both the numerator and the denominator — a
        zero deadline means "no deadline recorded", not "impossible SLA",
        so such jobs must not drag attainment toward zero.  An unfinished
        job never attains its SLA.  Returns 0.0 when no job carries a
        positive budget.
        """
        if slo_scale <= 0:
            raise ValueError("slo_scale must be positive")
        counted = 0
        attained = 0
        for jm in self.jobs.values():
            target = jm.slo_target
            if target <= 0:
                continue
            counted += 1
            if jm.completed and jm.jct is not None and jm.jct <= slo_scale * target:
                attained += 1
        return attained / counted if counted else 0.0

    # ------------------------------------------------------------------ #
    # Slicing (Tables 2 and 3)
    # ------------------------------------------------------------------ #
    def jct_by_category(self) -> Dict[str, float]:
        """Average JCT per eligibility category."""
        buckets: Dict[str, List[float]] = {}
        jcts = self.job_jcts()
        for job_id, jm in self.jobs.items():
            buckets.setdefault(jm.category, []).append(jcts[job_id])
        return {cat: float(np.mean(v)) for cat, v in buckets.items()}

    def jct_by_demand_percentile(
        self, percentiles: Sequence[float] = (25.0, 50.0, 75.0)
    ) -> Dict[float, float]:
        """Average JCT of jobs at or below each demand percentile.

        For each requested percentile ``p`` the cut is
        ``np.percentile(total demands, p)`` and the bucket is the jobs whose
        total demand is **inclusively** ``<= cut`` — a job sitting exactly
        on the percentile value belongs to that percentile's bucket, and
        ties at the cut are all included, so buckets are monotone supersets
        as ``p`` grows.  The inclusive cut also guarantees every bucket for
        ``p >= 0`` is non-empty when any job exists (the minimum-demand job
        always qualifies), so the output is NaN-free by construction; an
        empty metrics object (or a degenerate bucket) yields ``0.0`` rather
        than ``NaN``.  Keys are normalised to ``float`` so callers indexing
        with ``25`` vs ``25.0`` agree.
        """
        if not self.jobs:
            return {float(p): 0.0 for p in percentiles}
        totals = np.array([m.total_demand for m in self.jobs.values()], dtype=float)
        jcts = self.job_jcts()
        out: Dict[float, float] = {}
        for p in percentiles:
            cut = float(np.percentile(totals, p))
            selected = [
                jcts[j] for j, m in self.jobs.items() if m.total_demand <= cut
            ]
            out[float(p)] = float(np.mean(selected)) if selected else 0.0
        return out


def _merge_plan_maintenance(
    a: Optional[Dict[str, object]], b: Optional[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """Sum two plan-maintenance profile snapshots (None-propagating).

    Snapshots are the dict form of
    :class:`~repro.core.profile.PlanMaintenanceProfile`: every scalar field
    is an additive counter or wall-time total and ``triggers`` is a counter
    mapping, so summing field-wise is the exact reduction of profiles that
    describe disjoint work.
    """
    if a is None:
        return dict(b) if b is not None else None
    if b is None:
        return dict(a)
    merged: Dict[str, object] = {}
    for key in a.keys() | b.keys():
        va, vb = a.get(key), b.get(key)
        if isinstance(va, dict) or isinstance(vb, dict):
            va = va or {}
            vb = vb or {}
            merged[key] = {
                k: va.get(k, 0) + vb.get(k, 0)
                for k in sorted(va.keys() | vb.keys())
            }
        else:
            merged[key] = (va or 0) + (vb or 0)
    return merged


def collect_job_metrics(
    runtime: JobRuntime, category: str = "general"
) -> JobMetrics:
    """Build a :class:`JobMetrics` from a finished (or censored) job runtime."""
    spec = runtime.spec
    sched = [
        r.scheduling_delay
        for r in runtime.rounds
        if r.completed and r.scheduling_delay is not None
    ]
    resp = [
        r.response_collection_time
        for r in runtime.rounds
        if r.completed and r.response_collection_time is not None
    ]
    participants = [list(r.participants) for r in runtime.rounds if r.completed]
    completions = [
        r.completion_time
        for r in runtime.rounds
        if r.completed and r.completion_time is not None
    ]
    durations = [
        r.duration
        for r in runtime.rounds
        if r.completed and r.duration is not None
    ]
    aborted = sum(r.aborted_attempts for r in runtime.rounds)
    # Count aborted attempts of the in-flight round as well.
    aborted += runtime.attempt
    return JobMetrics(
        job_id=spec.job_id,
        name=spec.name,
        category=category,
        demand_per_round=spec.demand_per_round,
        num_rounds=spec.num_rounds,
        total_demand=spec.total_demand,
        arrival_time=spec.arrival_time,
        completed=runtime.is_finished,
        jct=runtime.jct,
        scheduling_delays=sched,
        response_times=resp,
        round_participants=participants,
        round_completion_times=completions,
        round_durations=durations,
        aborted_rounds=aborted,
        rounds_completed=runtime.rounds_completed,
        round_deadline=spec.round_deadline,
    )


def speedup_over(
    baseline: SimulationMetrics, other: SimulationMetrics
) -> float:
    """Average-JCT speed-up of ``other`` relative to ``baseline`` (>1 is better)."""
    other_jct = other.average_jct
    if other_jct <= 0:
        return float("inf")
    return baseline.average_jct / other_jct


def per_job_speedups(
    baseline: SimulationMetrics, other: SimulationMetrics
) -> Dict[int, float]:
    """Per-job JCT speed-ups of ``other`` relative to ``baseline``."""
    base = baseline.job_jcts()
    new = other.job_jcts()
    out: Dict[int, float] = {}
    for job_id, b in base.items():
        n = new.get(job_id)
        if n is None or n <= 0:
            continue
        out[job_id] = b / n
    return out


__all__ = [
    "JobMetrics",
    "SimulationMetrics",
    "collect_job_metrics",
    "per_job_speedups",
    "speedup_over",
]
