"""Per-device runtime state tracked by the simulation engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..core.types import DeviceProfile

#: Seconds per day, used for the one-job-per-day realism constraint (§5.1).
SECONDS_PER_DAY = 24 * 3600.0


def day_index(now: float) -> int:
    """Calendar day a timestamp belongs to, for the one-job-per-day budget.

    Every daily-limit decision in the engine — recording participation,
    re-checking eligibility mid-dispatch, and unparking benched devices —
    must agree on which day a timestamp falls in, or a device parked "until
    tomorrow" can be unparked on a day where the budget check still says
    "today".  The canonical form is float floor-division, ``now //
    86400.0``, which is computed exactly (fmod-based, no intermediate
    quotient rounding); ``numpy.floor_divide`` implements the same
    algorithm, which keeps the vectorized engine's day masks bit-identical
    to this scalar path at exact midnight boundaries and at floats one ULP
    below them (``tests/sim/test_dispatch.py`` pins both).
    """
    return int(now // SECONDS_PER_DAY)


class DeviceStatus(enum.Enum):
    OFFLINE = "offline"
    IDLE = "idle"
    BUSY = "busy"


@dataclass(slots=True)
class DeviceRuntime:
    """Mutable simulation state of one device.

    Wraps the immutable :class:`~repro.core.types.DeviceProfile` with the
    dynamic bits the engine needs: whether the device is online, until when,
    whether it is currently executing a task and when it last participated in
    a job (for the one-job-per-day constraint).
    """

    profile: DeviceProfile
    status: DeviceStatus = DeviceStatus.OFFLINE
    #: End of the current availability session (valid while online).
    session_end: float = 0.0
    #: Job currently being served, if busy.
    current_job: Optional[int] = None
    #: Request currently being served, if busy.
    current_request: Optional[int] = None
    #: Day index (floor(time / 86400)) of the last participation, or None.
    last_participation_day: Optional[int] = None
    #: Total tasks completed successfully.
    tasks_completed: int = 0
    #: Total tasks that failed (dropout or offline before finishing).
    tasks_failed: int = 0
    #: The profile's device id, denormalised onto the runtime object: this
    #: is read millions of times per large run and a stored attribute beats
    #: a forwarding property on the hot path.
    device_id: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.device_id = self.profile.device_id

    @property
    def is_online(self) -> bool:
        return self.status in (DeviceStatus.IDLE, DeviceStatus.BUSY)

    @property
    def is_idle(self) -> bool:
        return self.status is DeviceStatus.IDLE

    # ------------------------------------------------------------------ #
    # Transitions
    # ------------------------------------------------------------------ #
    def check_in(self, now: float, session_end: float) -> None:
        if session_end <= now:
            raise ValueError("session_end must be after check-in time")
        if self.status is DeviceStatus.BUSY:
            raise RuntimeError(
                f"device {self.device_id} cannot check in while busy"
            )
        self.status = DeviceStatus.IDLE
        self.session_end = session_end

    def check_out(self) -> None:
        """End the availability session (only while not mid-task)."""
        if self.status is DeviceStatus.BUSY:
            # The engine resolves busy devices at response/failure time; a
            # checkout while busy simply records that the session is over.
            return
        self.status = DeviceStatus.OFFLINE
        self.current_job = None
        self.current_request = None

    def start_task(self, job_id: int, request_id: int, now: float) -> None:
        if self.status is not DeviceStatus.IDLE:
            raise RuntimeError(
                f"device {self.device_id} must be idle to start a task "
                f"(status={self.status.value})"
            )
        self.status = DeviceStatus.BUSY
        self.current_job = job_id
        self.current_request = request_id
        self.last_participation_day = day_index(now)

    def finish_task(self, now: float, success: bool) -> None:
        if self.status is not DeviceStatus.BUSY:
            raise RuntimeError(f"device {self.device_id} is not executing a task")
        if success:
            self.tasks_completed += 1
        else:
            self.tasks_failed += 1
        self.current_job = None
        self.current_request = None
        # The device returns to the pool only if its session is still open.
        self.status = DeviceStatus.IDLE if now < self.session_end else DeviceStatus.OFFLINE

    # ------------------------------------------------------------------ #
    # Eligibility helpers
    # ------------------------------------------------------------------ #
    def participated_today(self, now: float) -> bool:
        if self.last_participation_day is None:
            return False
        return self.last_participation_day == day_index(now)

    def can_take_task(self, now: float, enforce_daily_limit: bool = True) -> bool:
        """Whether the device may be offered to a job right now."""
        if not self.is_idle:
            return False
        if now >= self.session_end:
            return False
        if enforce_daily_limit and self.participated_today(now):
            return False
        return True


__all__ = ["DeviceRuntime", "DeviceStatus", "SECONDS_PER_DAY", "day_index"]
