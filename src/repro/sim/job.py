"""Per-job runtime state: rounds, requests, retries and completion."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.types import JobSpec, JobState, RequestState, ResourceRequest


@dataclass(slots=True)
class RoundRecord:
    """Outcome of one (possibly retried) training round."""

    round_index: int
    #: Number of aborted attempts before the successful one.
    aborted_attempts: int = 0
    #: Timing of the successful attempt (None when the round never finished).
    scheduling_delay: Optional[float] = None
    response_collection_time: Optional[float] = None
    duration: Optional[float] = None
    completed: bool = False
    #: Sorted device ids that reported back before the successful attempt
    #: closed — the round's *reporting set*.  Stragglers that were assigned
    #: but had not responded when the round completed are absent, which is
    #: exactly what makes the set the right input for co-simulated federated
    #: training (:mod:`repro.cosim`).
    participants: Tuple[int, ...] = ()
    #: Absolute simulation time at which the round completed.
    completion_time: Optional[float] = None


@dataclass(frozen=True, slots=True)
class RoundCompletion:
    """Event handed to the engine's round callback when a round succeeds.

    Emitted by the coordinator on both the single-queue and the sharded
    engine, in event order, with identical content for any shard count —
    the callback contract the co-simulation layer builds on.
    """

    job_id: int
    round_index: int
    completion_time: float
    #: Sorted device ids that reported back (the reporting set).
    participants: Tuple[int, ...]
    #: Devices assigned to the round's successful attempt (reporting set
    #: plus stragglers whose responses had not arrived at completion).
    num_assigned: int
    #: Aborted attempts this round burned before succeeding.
    aborted_attempts: int
    #: Whether this was the job's final round.
    job_finished: bool


@dataclass(slots=True)
class JobRuntime:
    """Mutable simulation state of one CL job."""

    spec: JobSpec
    state: JobState = JobState.QUEUED
    current_round: int = 0
    #: The request currently open for the job, if any.
    open_request: Optional[ResourceRequest] = None
    #: Attempt counter for the current round (resets every round).
    attempt: int = 0
    #: Completed / attempted round records.
    rounds: List[RoundRecord] = field(default_factory=list)
    completion_time: Optional[float] = None
    #: All requests ever issued (useful for metrics / debugging).
    request_history: List[ResourceRequest] = field(default_factory=list)

    @property
    def job_id(self) -> int:
        return self.spec.job_id

    @property
    def is_finished(self) -> bool:
        return self.state is JobState.FINISHED

    @property
    def rounds_completed(self) -> int:
        return sum(1 for r in self.rounds if r.completed)

    @property
    def jct(self) -> Optional[float]:
        """Job completion time (completion - arrival), if finished."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.spec.arrival_time

    # ------------------------------------------------------------------ #
    # Round / request lifecycle
    # ------------------------------------------------------------------ #
    def _round_record(self) -> RoundRecord:
        while len(self.rounds) <= self.current_round:
            self.rounds.append(RoundRecord(round_index=len(self.rounds)))
        return self.rounds[self.current_round]

    def open_round_request(self, request_id: int, now: float) -> ResourceRequest:
        """Open a request for the current round (a new attempt)."""
        if self.is_finished:
            raise RuntimeError(f"job {self.job_id} already finished")
        if self.open_request is not None and self.open_request.is_open:
            raise RuntimeError(f"job {self.job_id} already has an open request")
        self.state = JobState.RUNNING
        request = ResourceRequest(
            request_id=request_id,
            job_id=self.job_id,
            demand=self.spec.demand_per_round,
            submit_time=now,
            deadline=now + self.spec.round_deadline,
            min_reports=self.spec.min_reports,
            round_index=self.current_round,
        )
        self.open_request = request
        self.request_history.append(request)
        self._round_record()  # ensure the record exists
        return request

    def complete_round(self, now: float) -> bool:
        """Mark the current round successful.  Returns True when the job is done."""
        request = self.open_request
        if request is None:
            raise RuntimeError("no open request to complete")
        request.state = RequestState.COMPLETED
        request.close_time = now
        record = self._round_record()
        record.completed = True
        record.aborted_attempts = self.attempt
        record.scheduling_delay = request.scheduling_delay
        record.response_collection_time = request.response_collection_time
        record.duration = request.duration
        record.participants = tuple(sorted(request.responses))
        record.completion_time = now
        self.open_request = None
        self.attempt = 0
        self.current_round += 1
        if self.current_round >= self.spec.num_rounds:
            self.state = JobState.FINISHED
            self.completion_time = now
            return True
        return False

    def release_request(self, request: ResourceRequest) -> None:
        """Drop one closed request from the history.

        Called by the engine once the request's last in-flight response has
        fired (nothing can reference it again); together with the engine's
        request-table eviction this keeps multi-day runs from retaining
        every request ever opened.  A job's requests open strictly one at a
        time, so evictions arrive in near-FIFO order and the head check
        settles the common case without a scan.
        """
        history = self.request_history
        if history and history[0] is request:
            del history[0]
            return
        for i, held in enumerate(history):
            if held is request:
                del history[i]
                return

    def abort_round(self, now: float) -> None:
        """The current attempt missed its deadline; it will be retried."""
        request = self.open_request
        if request is None:
            raise RuntimeError("no open request to abort")
        request.state = RequestState.ABORTED
        request.close_time = now
        self.open_request = None
        self.attempt += 1

    def cancel(self, now: float) -> None:
        """Cancel the job (e.g. at the simulation horizon)."""
        if self.open_request is not None and self.open_request.is_open:
            self.open_request.state = RequestState.CANCELLED
            self.open_request.close_time = now
            self.open_request = None
        if not self.is_finished:
            self.state = JobState.CANCELLED


__all__ = ["JobRuntime", "RoundCompletion", "RoundRecord"]
