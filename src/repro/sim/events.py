"""Event definitions and the event queue of the CL simulator.

The simulator is a classic discrete-event engine: every state change is an
:class:`Event` with a timestamp, events are processed in time order, and
processing an event may schedule further events.  Ties are broken by an
insertion sequence number so runs are fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional


class EventType(enum.Enum):
    """All event kinds understood by the engine."""

    #: A CL job arrives and registers with the resource manager.
    JOB_ARRIVAL = "job_arrival"
    #: A device comes online (starts an availability session).
    DEVICE_CHECKIN = "device_checkin"
    #: A device's availability session ends.
    DEVICE_CHECKOUT = "device_checkout"
    #: A device finishes its assigned task and reports back.
    DEVICE_RESPONSE = "device_response"
    #: A round's deadline fires (the round aborts unless already complete).
    REQUEST_DEADLINE = "request_deadline"
    #: The simulation horizon is reached; remaining work is censored.
    HORIZON = "horizon"


@dataclass(slots=True)
class Event:
    """A single scheduled event.

    Only ``time`` and ``seq`` take part in ordering (enforced by the queue,
    which keys its heap on ``(time, seq)`` tuples so comparisons run in C
    rather than through generated dataclass methods — a measurable win when
    million-device traces push millions of events through the heap).  The
    event-specific data lives in fixed slotted fields (device id, request
    id, ...) instead of a per-event payload dict: at 10^6-device scale the
    engine allocates millions of events, and the dict-per-event plus the
    string-keyed lookups in every handler were measurable.  Unused fields
    keep their sentinel defaults; :attr:`payload` is retained as a
    compatibility view for tests and debugging.
    """

    time: float
    seq: int
    type: EventType
    device_id: int = -1
    request_id: int = -1
    job_id: int = -1
    #: End of the availability session (check-in / checkout events).
    session_end: float = 0.0
    #: Whether a DEVICE_RESPONSE reports success.
    success: bool = False
    #: Events can be cancelled lazily (e.g. a deadline for a request that
    #: already completed); the engine skips cancelled events when popping.
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def payload(self) -> Dict[str, Any]:
        """Dict view of the event-specific fields that were explicitly set
        (sentinel defaults are omitted).  Compatibility/debugging only —
        the engine reads the slotted fields directly."""
        out: Dict[str, Any] = {}
        if self.device_id != -1:
            out["device_id"] = self.device_id
        if self.request_id != -1:
            out["request_id"] = self.request_id
        if self.job_id != -1:
            out["job_id"] = self.job_id
        if self.session_end != 0.0:
            out["session_end"] = self.session_end
        if self.success:
            out["success"] = self.success
        return out

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Internally the heap holds ``(time, seq, event)`` tuples: ``seq`` is a
    unique insertion counter, so comparisons never reach the event object
    and ties break by insertion order, exactly as before.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, time: float, type: EventType, **payload: Any) -> Event:
        """Schedule an event and return it (so callers may cancel it later)."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        seq = next(self._counter)
        event = Event(time=time, seq=seq, type=type, **payload)
        heapq.heappush(self._heap, (time, seq, event))
        self._size += 1
        return event

    def next_seq(self) -> int:
        """Claim the next sequence number without scheduling an event.

        The sharded engine uses this to stamp response events it hands to a
        device shard's queue: the number comes from the *same* counter as
        :meth:`push`, so dynamic events sort identically whether they live
        in this queue or in a shard's.
        """
        return next(self._counter)

    def reserve(self, count: int) -> None:
        """Skip ``count`` sequence numbers.

        The sharded engine reserves the numbers its static shard streams
        carry (two per availability session, assigned at build time) so the
        counter continues exactly where the single-queue engine's would.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count:
            self._counter = itertools.count(next(self._counter) + count)

    def peek_key(self) -> Optional[tuple]:
        """``(time, seq)`` of the next non-cancelled event, or ``None``."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._size -= 1
        return self._heap[0][:2] if self._heap else None

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            self._size -= 1
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without popping it."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._size -= 1
        return self._heap[0][0] if self._heap else None

    def pop_run(self, time: float, type: EventType) -> list:
        """Pop the contiguous run of events matching ``time`` and ``type``.

        Only events that are *next* in the global (time, seq) order are
        taken, so interleaving an event of a different type (or a later
        timestamp) stops the run.  This lets the engine batch, e.g., the
        thousands of device check-ins that land on the same trace timestamp
        without reordering anything relative to one-at-a-time processing.
        """
        out: list = []
        heap = self._heap
        while heap:
            head = heap[0][2]
            if head.cancelled:
                heapq.heappop(heap)
                self._size -= 1
                continue
            if head.time != time or head.type is not type:
                break
            out.append(heapq.heappop(heap)[2])
            self._size -= 1
        return out

    def drain(self) -> Iterator[Event]:
        """Iterate remaining events in order (consumes the queue)."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event


__all__ = ["Event", "EventQueue", "EventType"]
