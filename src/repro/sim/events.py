"""Event definitions and the event queue of the CL simulator.

The simulator is a classic discrete-event engine: every state change is an
:class:`Event` with a timestamp, events are processed in time order, and
processing an event may schedule further events.  Ties are broken by an
insertion sequence number so runs are fully deterministic.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional


class EventType(enum.Enum):
    """All event kinds understood by the engine."""

    #: A CL job arrives and registers with the resource manager.
    JOB_ARRIVAL = "job_arrival"
    #: A device comes online (starts an availability session).
    DEVICE_CHECKIN = "device_checkin"
    #: A device's availability session ends.
    DEVICE_CHECKOUT = "device_checkout"
    #: A device finishes its assigned task and reports back.
    DEVICE_RESPONSE = "device_response"
    #: A round's deadline fires (the round aborts unless already complete).
    REQUEST_DEADLINE = "request_deadline"
    #: The simulation horizon is reached; remaining work is censored.
    HORIZON = "horizon"


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Only ``time`` and ``seq`` take part in ordering; the payload carries the
    event-specific data (device id, request id, ...).
    """

    time: float
    seq: int
    type: EventType = field(compare=False)
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)
    #: Events can be cancelled lazily (e.g. a deadline for a request that
    #: already completed); the engine skips cancelled events when popping.
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, time: float, type: EventType, **payload: Any) -> Event:
        """Schedule an event and return it (so callers may cancel it later)."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=time, seq=next(self._counter), type=type, payload=payload)
        heapq.heappush(self._heap, event)
        self._size += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            self._size -= 1
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._size -= 1
        return self._heap[0].time if self._heap else None

    def drain(self) -> Iterator[Event]:
        """Iterate remaining events in order (consumes the queue)."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event


__all__ = ["Event", "EventQueue", "EventType"]
