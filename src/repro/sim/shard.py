"""Device shards: the device-physics half of the sharded simulation engine.

The monolithic engine kept every device's availability events in one global
heap and computed device eligibility signatures one at a time on the hot
path.  The sharded engine (``SimulationConfig(num_shards=N)``) splits that
work across N :class:`DeviceShard` objects, each owning a partition of the
device population (``device_id % num_shards == shard_index``):

* the shard's **static event stream** — every check-in / checkout of its
  devices over the horizon — is built once as sorted parallel arrays
  instead of millions of heap pushes;
* the shard's **dynamic queue** holds the response events of its devices
  (scheduled by the coordinator when it assigns one of the shard's devices);
* the shard's **idle pool** (:class:`~repro.sim.dispatch.IdleDevicePool`)
  tracks which of its devices are dispatchable, including daily-budget
  parking;
* the shard's **eligibility signatures** are precomputed for the workload's
  requirement set in one vectorised pass (:func:`compute_signatures`).

The coordinator (the engine) merges the shard streams deterministically by
``(time, seq)`` — see :data:`make_static_stream` for how ``seq`` is chosen —
and exchanges batched messages with the shards: shard→coordinator batches of
check-in/checkout/response records (the engine drains them in runs), and
coordinator→shard assignment messages (:meth:`DeviceShard.schedule_response`)
carrying the scheduler's current plan version.

Determinism contract
--------------------

Static events carry the exact sequence numbers the single-queue engine would
have assigned them (job arrivals take ``0..J-1``, then session *i* of the
globally-sorted session list takes ``J + 2i`` for its check-in and
``J + 2i + 1`` for its checkout).  Dynamic events take coordinator-issued
sequence numbers from the same counter.  Merging shard streams by
``(time, seq)`` therefore reproduces the legacy engine's processing order
*exactly*, for any shard count — the property the shard-identity tests and
the benchmark's decision hash enforce.

Shard builds are embarrassingly parallel (each shard touches only its own
sessions and devices); :func:`build_shards` fans the per-shard array
construction out to a process pool when ``workers > 1`` and falls back to
inline construction otherwise (e.g. single-core hosts, where worker
processes are pure overhead).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..core.requirements import EligibilityRequirement, signature_of
from ..core.types import DeviceProfile
from .device import DeviceRuntime
from .dispatch import IdleDevicePool
from .metrics import SimulationMetrics

#: Static-stream event kinds (dynamic responses live in the shard heap).
KIND_CHECKIN = 0
KIND_CHECKOUT = 1

#: Sentinel key sorting after every real event.
INF_KEY: Tuple[float, int] = (float("inf"), 1 << 62)


def shard_of(device_id: int, num_shards: int) -> int:
    """The shard owning ``device_id`` (fixed modulo partition)."""
    return device_id % num_shards


def compute_signatures(
    devices: Sequence[DeviceProfile],
    requirements: Sequence[EligibilityRequirement],
) -> Dict[int, FrozenSet[str]]:
    """Eligibility signature of every device, vectorised when possible.

    Produces exactly what :func:`repro.core.requirements.signature_of`
    would per device, but in a handful of numpy passes over the population
    instead of ``len(devices) × len(requirements)`` predicate calls: one
    boolean mask per requirement over (cpu, memory, domain) arrays, packed
    into per-device bitmasks, then interned into shared frozensets.

    Subclassed requirements (anything overriding ``is_eligible``) fall back
    to the exact per-device loop.
    """
    reqs = list(requirements)
    if not reqs:
        empty = frozenset()
        return {d.device_id: empty for d in devices}
    if len(reqs) > 63 or any(
        type(r) is not EligibilityRequirement for r in reqs
    ):
        # The vectorised path packs one requirement per int64 bit; beyond
        # 63 the shift overflows silently.  Workloads that large fall back
        # to the exact per-device walk.
        return {d.device_id: signature_of(d, reqs) for d in devices}
    n = len(devices)
    cpu = np.fromiter((d.cpu_score for d in devices), dtype=np.float64, count=n)
    mem = np.fromiter(
        (d.memory_score for d in devices), dtype=np.float64, count=n
    )
    domain_masks: Dict[str, np.ndarray] = {}
    for r in reqs:
        if r.data_domain is not None and r.data_domain not in domain_masks:
            dom = r.data_domain
            domain_masks[dom] = np.fromiter(
                (dom in d.data_domains for d in devices), dtype=bool, count=n
            )
    bits = np.zeros(n, dtype=np.int64)
    for k, r in enumerate(reqs):
        ok = (cpu >= r.min_cpu) & (mem >= r.min_memory)
        if r.data_domain is not None:
            ok = ok & domain_masks[r.data_domain]
        bits |= ok.astype(np.int64) << k
    # Intern: devices overwhelmingly share a handful of distinct signatures.
    table: Dict[int, FrozenSet[str]] = {}
    out: Dict[int, FrozenSet[str]] = {}
    mask_list = bits.tolist()
    for device, mask in zip(devices, mask_list):
        sig = table.get(mask)
        if sig is None:
            sig = frozenset(
                reqs[k].name for k in range(len(reqs)) if (mask >> k) & 1
            )
            table[mask] = sig
        out[device.device_id] = sig
    return out


def make_static_stream(
    starts: np.ndarray,
    device_ids: np.ndarray,
    ends: np.ndarray,
    seqs: np.ndarray,
    horizon: float,
) -> Tuple[list, list, list, list, list]:
    """Build one shard's sorted static event stream.

    Inputs are the shard's sessions *in global session-sort order* together
    with the global sequence number of each session's check-in event (the
    checkout takes ``seq + 1``).  Returns five parallel Python lists
    ``(time, seq, device_id, session_end, kind)`` sorted by ``(time, seq)``
    — plain lists, because element access in the merge loop is measurably
    cheaper than numpy scalar extraction.
    """
    n = len(starts)
    times = np.concatenate([starts, np.minimum(ends, horizon)])
    seq_all = np.concatenate([seqs, seqs + 1])
    devs = np.concatenate([device_ids, device_ids])
    sends = np.concatenate([ends, ends])
    kinds = np.concatenate(
        [
            np.full(n, KIND_CHECKIN, dtype=np.int8),
            np.full(n, KIND_CHECKOUT, dtype=np.int8),
        ]
    )
    order = np.lexsort((seq_all, times))
    return (
        times[order].tolist(),
        seq_all[order].tolist(),
        devs[order].tolist(),
        sends[order].tolist(),
        kinds[order].tolist(),
    )


def _build_stream_worker(args):
    """Process-pool entry: build one shard's stream arrays (picklable I/O)."""
    starts, device_ids, ends, seqs, horizon = args
    return make_static_stream(starts, device_ids, ends, seqs, horizon)


class DeviceShard:
    """One shard of the device population and its event streams.

    The shard owns device-local physics state — runtimes, the static
    check-in/checkout stream, the dynamic response queue, the idle pool and
    per-shard metrics counters — while the coordinator owns every decision.
    In-process the "messages" between the two are direct method calls
    (:meth:`schedule_response` is the coordinator→shard edge; the engine's
    stream drain is the shard→coordinator edge), but all state accessed
    through them is shard-resident, which is what keeps the protocol
    process-ready.
    """

    def __init__(
        self,
        index: int,
        stream: Tuple[list, list, list, list, list],
        runtimes: Dict[int, DeviceRuntime],
        policy_name: str,
        horizon: float,
    ) -> None:
        self.index = index
        (
            self.st_time,
            self.st_seq,
            self.st_dev,
            self.st_send,
            self.st_kind,
        ) = stream
        self.st_len = len(self.st_time)
        self.cursor = 0
        #: Dynamic (response) min-heap of
        #: ``(time, seq, device_id, request_id, job_id, success)`` tuples.
        #: Same-timestamp runs at the heap head are drained as *cohorts*
        #: by the merge loop's batched response path (fault rewrites —
        #: :meth:`kill_until`, :meth:`delay_responses_until` — pile
        #: responses onto one timestamp, which is exactly the regime the
        #: cohort drain targets); each entry still fires exactly once.
        self.heap: List[Tuple[float, int, int, int, int, bool]] = []
        self.runtimes = runtimes
        self.pool = IdleDevicePool()
        #: Per-shard mergeable metrics (counter fields only; job metrics
        #: stay with the coordinator, which owns the job lifecycle).
        self.metrics = SimulationMetrics(policy=policy_name, horizon=horizon)
        #: Coordinator→shard message bookkeeping (assignment batches).
        self.assignments_received = 0
        self.last_plan_version: Optional[int] = None
        #: Events this shard contributed to the merged run.
        self.events_processed = 0
        #: Wall time the coordinator spent draining this shard's batches
        #: (populated only when the engine runs with ``profile_shards``).
        self.drain_time_s = 0.0
        #: Fault-injection state (:mod:`repro.resilience.faults`).  The
        #: defaults keep the pristine path byte-identical: ``down_until``
        #: stays 0.0 (every response time is >= 0, so the outage rewrite in
        #: :meth:`schedule_response` never triggers) and the drop counter
        #: stays 0.
        self.down_until = 0.0
        self.broadcast_drop_pending = 0
        self.broadcasts_dropped = 0
        self.plan_rebroadcasts = 0
        self.static_skipped = 0
        self.responses_failed_by_fault = 0
        self.responses_delayed_by_fault = 0
        #: Numpy twins of the static stream (vectorized engine only; built
        #: by :meth:`attach_vector_arrays`).
        self.sa_time: Optional[np.ndarray] = None
        self.sa_seq: Optional[np.ndarray] = None
        self.sa_slot: Optional[np.ndarray] = None
        self.sa_send: Optional[np.ndarray] = None
        self.sa_ci: Optional[np.ndarray] = None

    def attach_vector_arrays(self, slots: "np.ndarray") -> None:
        """Build numpy twins of the static stream for the vectorized engine.

        ``slots`` maps each stream event's device id to its global slot in
        the engine's :class:`~repro.sim.vector.VectorDeviceState` (computed
        once, vectorized, by the engine).  The Python lists stay around for
        :meth:`head_key`; the arrays are what the batched drain kernels
        slice.
        """
        self.sa_time = np.asarray(self.st_time, dtype=np.float64)
        self.sa_seq = np.asarray(self.st_seq, dtype=np.int64)
        self.sa_slot = np.asarray(slots, dtype=np.int64)
        self.sa_send = np.asarray(self.st_send, dtype=np.float64)
        self.sa_ci = (
            np.asarray(self.st_kind, dtype=np.int8) == KIND_CHECKIN
        )
        #: Python-int twin of ``sa_slot`` for the engine's small-run fold
        #: loop (plain list indexing beats numpy scalar indexing there).
        self.sl_slot = self.sa_slot.tolist()

    # ------------------------------------------------------------------ #
    # Stream interface
    # ------------------------------------------------------------------ #
    def head_key(self) -> Tuple[float, int]:
        """(time, seq) of the shard's next event; :data:`INF_KEY` if done."""
        if self.cursor < self.st_len:
            static = (self.st_time[self.cursor], self.st_seq[self.cursor])
            if self.heap and self.heap[0][0:2] < static:
                return self.heap[0][0:2]
            return static
        if self.heap:
            return self.heap[0][0:2]
        return INF_KEY

    def schedule_response(
        self,
        time: float,
        seq: int,
        device_id: int,
        request_id: int,
        job_id: int,
        success: bool,
        plan_version: Optional[int] = None,
    ) -> None:
        """Coordinator→shard message: one of this shard's devices was
        assigned; its (pre-drawn) response fires at ``time``."""
        if time < self.down_until:
            # Fault injection: the shard is dead when this task would have
            # reported.  The work is lost; the coordinator observes the
            # failure when the shard reconnects.  (``down_until`` is 0.0 on
            # pristine runs, so this branch is unreachable there.)
            time = self.down_until
            success = False
            self.responses_failed_by_fault += 1
        heapq.heappush(
            self.heap, (time, seq, device_id, request_id, job_id, success)
        )
        self.assignments_received += 1
        if plan_version is not None:
            if self.broadcast_drop_pending:
                # Fault injection: this assignment's plan broadcast was
                # lost in flight; the shard keeps its stale plan version
                # until the coordinator's re-broadcast lands.
                self.broadcast_drop_pending -= 1
                self.broadcasts_dropped += 1
            else:
                self.last_plan_version = plan_version

    # ------------------------------------------------------------------ #
    # Fault injection (:mod:`repro.resilience.faults`)
    # ------------------------------------------------------------------ #
    def kill_until(self, end: float) -> None:
        """The shard dies now and reconnects at ``end`` (simulated time).

        Three degraded-mode effects, all deterministic:

        * in-flight responses due during the outage are lost — they are
          rewritten to *failures delivered at* ``end`` (original sequence
          numbers kept, so the post-outage order is total and
          reproducible);
        * static check-ins/checkouts during the outage never reach the
          coordinator — the stream cursor skips past them (the defensive
          idle-pool filters make the resulting stale entries harmless);
        * until ``end``, new assignments to this shard's devices are
          converted to reconnect-time failures by
          :meth:`schedule_response` — the coordinator proceeds on stale
          state and learns of the losses when the shard returns.
        """
        self.down_until = max(self.down_until, end)
        if self.heap:
            rewritten = []
            changed = False
            for (t, seq, dev, req, job, success) in self.heap:
                if t < end:
                    rewritten.append((end, seq, dev, req, job, False))
                    self.responses_failed_by_fault += 1
                    changed = True
                else:
                    rewritten.append((t, seq, dev, req, job, success))
            if changed:
                heapq.heapify(rewritten)
                self.heap = rewritten
        hi = bisect_left(self.st_time, end, self.cursor)
        if hi > self.cursor:
            self.static_skipped += hi - self.cursor
            self.cursor = hi

    def delay_responses_until(self, end: float) -> None:
        """The shard's response drain stalls until ``end``.

        In-flight responses due during the stall are delivered — outcomes
        unchanged — when the drain recovers at ``end``.  Responses landing
        after their request's deadline hit the engine's defensive
        closed-request path (budget refund), exactly like any late
        straggler.
        """
        if not self.heap:
            return
        rewritten = []
        changed = False
        for (t, seq, dev, req, job, success) in self.heap:
            if t < end:
                rewritten.append((end, seq, dev, req, job, success))
                self.responses_delayed_by_fault += 1
                changed = True
            else:
                rewritten.append((t, seq, dev, req, job, success))
        if changed:
            heapq.heapify(rewritten)
            self.heap = rewritten

    def fault_counters(self) -> Dict[str, int]:
        """Per-shard degraded-mode counters (all zero on pristine runs)."""
        return {
            "static_skipped": self.static_skipped,
            "responses_failed_by_fault": self.responses_failed_by_fault,
            "responses_delayed_by_fault": self.responses_delayed_by_fault,
            "broadcasts_dropped": self.broadcasts_dropped,
            "plan_rebroadcasts": self.plan_rebroadcasts,
        }

    def stats(self) -> Dict[str, object]:
        """Per-shard summary for benchmarks and the scaling example."""
        return {
            "shard": self.index,
            "devices": len(self.runtimes),
            "static_events": self.st_len,
            "events_processed": self.events_processed,
            "checkins": self.metrics.total_checkins,
            "responses": self.metrics.total_responses,
            "failures": self.metrics.total_failures,
            "assignments_received": self.assignments_received,
            "last_plan_version": self.last_plan_version,
            "drain_time_s": round(self.drain_time_s, 4),
            **self.fault_counters(),
        }


def build_shards(
    devices: Sequence[DeviceProfile],
    runtimes: Dict[int, DeviceRuntime],
    availability,
    num_shards: int,
    horizon: float,
    seq_start: int,
    policy_name: str,
    workers: int = 0,
) -> Tuple[List[DeviceShard], int]:
    """Partition the population into shards with ready event streams.

    Returns ``(shards, seqs_consumed)`` where ``seqs_consumed`` is the
    number of sequence numbers the static streams claimed (the coordinator
    advances its own event counter past them so dynamic events sort after
    same-time static ones exactly as in the single-queue engine).

    ``workers > 1`` builds the per-shard arrays in a process pool; anything
    else builds inline.  Both produce identical shards.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    starts, ids, ends = availability.checkin_events_arrays()
    keep = starts < horizon
    starts, ids, ends = starts[keep], ids[keep], ends[keep]
    # Global session-sort-order sequence numbers: session i's check-in gets
    # seq_start + 2i, its checkout seq_start + 2i + 1 (the legacy engine's
    # exact enumeration).
    seqs = seq_start + 2 * np.arange(len(starts), dtype=np.int64)
    shard_masks = [ids % num_shards == k for k in range(num_shards)]
    jobs_args = [
        (starts[m], ids[m], ends[m], seqs[m], horizon) for m in shard_masks
    ]
    if workers > 1 and num_shards > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, num_shards)) as ex:
            streams = list(ex.map(_build_stream_worker, jobs_args))
    else:
        streams = [make_static_stream(*args) for args in jobs_args]
    runtimes_per_shard: List[Dict[int, DeviceRuntime]] = [
        {} for _ in range(num_shards)
    ]
    for d in devices:
        device_id = d.device_id
        runtimes_per_shard[device_id % num_shards][device_id] = runtimes[
            device_id
        ]
    shards = [
        DeviceShard(
            index=k,
            stream=streams[k],
            runtimes=runtimes_per_shard[k],
            policy_name=policy_name,
            horizon=horizon,
        )
        for k in range(num_shards)
    ]
    return shards, 2 * len(starts)


__all__ = [
    "DeviceShard",
    "INF_KEY",
    "KIND_CHECKIN",
    "KIND_CHECKOUT",
    "build_shards",
    "compute_signatures",
    "make_static_stream",
    "shard_of",
]
