"""Indexed dispatch structures for the simulation engine's check-in fast path.

The seed engine kept two O(n) scans on its hot path:

* ``_has_unsatisfied_request`` walked every job to decide whether dispatching
  was worthwhile, and
* ``_dispatch_idle_devices`` walked *every idle device* — including devices
  that had already spent their one-job-per-day budget or could never satisfy
  any pending requirement — offering each to the policy.

At million-device scale the second scan dominates everything: each request
arrival could trigger a full sweep over the idle population.  This module
provides the two indexed replacements:

:class:`PendingRequestPool`
    O(1) bookkeeping of which jobs currently have open, unsatisfied
    requests, plus a multiset of their requirement names so dispatch knows
    which device signatures are worth visiting.

:class:`IdleDevicePool`
    Idle devices bucketed by eligibility-atom signature, each bucket a
    device-id min-heap, so dispatch visits devices in deterministic
    ascending-id order *restricted to signatures that intersect a pending
    requirement*.  Devices that exhausted the one-job-per-day budget are
    parked on a calendar heap and promoted back automatically once their
    blackout day ends, so they cost nothing while ineligible.

Both structures are pure bookkeeping: they never decide *which* request a
device serves (the policy does) and the engine's legacy full-scan dispatch
remains available via ``SimulationConfig(indexed_dispatch=False)`` — the two
paths produce identical assignment sequences, which the golden regression
tests assert.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .device import day_index


class PendingRequestPool:
    """Tracks jobs with open, unsatisfied resource requests in O(1)."""

    def __init__(self) -> None:
        #: job_id -> requirement name, for unsatisfied open requests.
        self._jobs: Dict[int, str] = {}
        #: Multiset of pending requirement names.
        self._req_counts: Counter = Counter()
        #: Bumped whenever the *set* of pending requirement names changes.
        #: Dispatch compares this instead of materialising (and comparing)
        #: a fresh name set per visited device.
        self.names_version: int = 0

    def __bool__(self) -> bool:
        return bool(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

    def __len__(self) -> int:
        return len(self._jobs)

    def add(self, job_id: int, requirement_name: str) -> None:
        """A request opened (or re-opened) with unmet demand."""
        old = self._jobs.get(job_id)
        if old == requirement_name:
            return  # re-open under the same name: multiset unchanged
        if old is not None:
            self.remove(job_id)
        self._jobs[job_id] = requirement_name
        if self._req_counts[requirement_name] == 0:
            self.names_version += 1
        self._req_counts[requirement_name] += 1

    def remove(self, job_id: int) -> None:
        """The job's request was fully assigned or reached a terminal state."""
        name = self._jobs.pop(job_id, None)
        if name is None:
            return
        self._req_counts[name] -= 1
        if self._req_counts[name] <= 0:
            del self._req_counts[name]
            self.names_version += 1

    def pending_requirements(self) -> Set[str]:
        """Requirement names with at least one unsatisfied request."""
        return set(self._req_counts)

    def pending_jobs(self):
        """Job ids with open, unsatisfied requests (iteration view).

        Used by the batched dispatch path to size decision cohorts against
        the actual remaining demand instead of a fixed chunk width.
        """
        return self._jobs.keys()


class IdleDevicePool:
    """Idle devices bucketed by atom signature for targeted dispatch.

    The pool is an *overlay* over the engine's authoritative idle set: every
    heap entry is validated against the active-membership dict at pop time,
    so stale entries (devices that went busy or offline since being pushed)
    are discarded lazily.
    """

    def __init__(self) -> None:
        #: device_id -> signature, for devices available to dispatch now.
        self._active: Dict[int, FrozenSet[str]] = {}
        #: signature -> min-heap of device ids (lazy entries).
        self._buckets: Dict[FrozenSet[str], List[int]] = {}
        #: device_id -> (signature, first eligible day) for daily-spent devices.
        self._parked: Dict[int, Tuple[FrozenSet[str], int]] = {}
        #: (eligible_day, device_id) promotion min-heap (lazy entries).
        self._parked_heap: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def add(self, device_id: int, signature: FrozenSet[str]) -> None:
        """Make an idle, dispatchable device visible to the pool."""
        self._parked.pop(device_id, None)
        if device_id in self._active:
            return
        self._active[device_id] = signature
        bucket = self._buckets.get(signature)
        if bucket is None:
            bucket = self._buckets[signature] = []
        heapq.heappush(bucket, device_id)

    def park(self, device_id: int, signature: FrozenSet[str],
             eligible_day: int) -> None:
        """Bench an idle device until ``eligible_day`` (daily limit spent)."""
        self._active.pop(device_id, None)
        self._parked[device_id] = (signature, eligible_day)
        heapq.heappush(self._parked_heap, (eligible_day, device_id))

    def unpark(self, device_id: int) -> None:
        """Lift a parking early (the device's round aborted, budget refunded)."""
        entry = self._parked.pop(device_id, None)
        if entry is not None:
            self.add(device_id, entry[0])

    def discard(self, device_id: int) -> None:
        """Remove a device entirely (went busy or offline)."""
        self._active.pop(device_id, None)
        self._parked.pop(device_id, None)

    def promote(self, now: float) -> None:
        """Return parked devices whose blackout day has ended to dispatch."""
        heap = self._parked_heap
        # Must match DeviceRuntime's day accounting exactly (see day_index):
        # if promote() thought a boundary timestamp was "tomorrow" while
        # participated_today() said "today", a parked device would be
        # promoted and then re-parked on every dispatch sweep.
        today = day_index(now)
        while heap and heap[0][0] <= today:
            _, device_id = heapq.heappop(heap)
            entry = self._parked.get(device_id)
            if entry is not None and entry[1] <= today:
                self._parked.pop(device_id)
                self.add(device_id, entry[0])

    def __contains__(self, device_id: int) -> bool:
        return device_id in self._active or device_id in self._parked

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def dispatch(
        self,
        pending_pool: PendingRequestPool,
        now: float,
        visit: Callable[[int], None],
    ) -> None:
        """Offer candidate devices to ``visit`` in ascending device-id order.

        Single-pool convenience wrapper around :func:`dispatch_pools` (the
        sharded engine dispatches across one pool per device shard; the
        monolithic engine owns exactly one pool).
        """
        dispatch_pools([self], pending_pool, now, visit)


def dispatch_pools(
    pools: Sequence["IdleDevicePool"],
    pending_pool: PendingRequestPool,
    now: float,
    visit: Callable[[int], None],
) -> None:
    """Offer candidate devices across ``pools`` in ascending device-id order.

    Only buckets whose signature intersects the pool's pending requirement
    names are visited — devices that cannot satisfy any pending requirement
    are never touched.  ``visit`` offers one device to the policy; whether
    the pending *name set* changed afterwards is detected through the pool's
    ``names_version`` counter (an int compare per visit, instead of
    materialising and comparing a fresh set).  Demand can only shrink while
    dispatching (responses and deadlines are future events), so when a
    requirement drops out the bucket list is re-filtered and the remaining
    sweep narrows to signatures that can still serve something — e.g. once
    the general jobs fill, a million general-only devices are no longer
    walked in search of the last high-performance stragglers.  Devices that
    remain active after being visited are re-queued for future dispatches;
    each device is visited at most once per call.

    With several pools (one per device shard) the sweep is a k-way merge:
    each step pops the globally smallest candidate device id across every
    pool's eligible buckets, so the visit order — and therefore every
    scheduling decision — is identical to a single pool holding the union
    of the shards.
    """
    for pool in pools:
        pool.promote(now)
    pending = pending_pool.pending_requirements()
    version = pending_pool.names_version

    def eligible_buckets() -> List[Tuple["IdleDevicePool", List[int]]]:
        return [
            (pool, bucket)
            for pool in pools
            for signature, bucket in pool._buckets.items()
            if signature & pending
        ]

    buckets = eligible_buckets()
    revisit: List[Tuple["IdleDevicePool", int]] = []
    seen: Set[int] = set()
    while pending:
        best: Optional[List[int]] = None
        best_pool: Optional["IdleDevicePool"] = None
        for pool, bucket in buckets:
            # Drop stale heads so the head comparison sees live devices.
            while bucket and (
                bucket[0] not in pool._active or bucket[0] in seen
            ):
                heapq.heappop(bucket)
            if bucket and (best is None or bucket[0] < best[0]):
                best = bucket
                best_pool = pool
        if best is None:
            break
        device_id = heapq.heappop(best)
        # A discard-then-re-add can leave duplicate heap entries; the
        # ``seen`` set guarantees each device is visited at most once.
        seen.add(device_id)
        visit(device_id)
        if device_id in best_pool._active:
            revisit.append((best_pool, device_id))
        if pending_pool.names_version != version:
            version = pending_pool.names_version
            pending = pending_pool.pending_requirements()
            buckets = eligible_buckets()
    for pool, device_id in revisit:
        signature = pool._active.get(device_id)
        if signature is not None:
            heapq.heappush(pool._buckets[signature], device_id)


__all__ = ["IdleDevicePool", "PendingRequestPool", "dispatch_pools"]
