"""The event-driven collaborative-learning simulator.

The engine replays a device availability trace and a CL workload against a
pluggable scheduling policy and measures, per job, the scheduling delay,
response collection time and end-to-end completion time — the quantities the
paper's evaluation is built on (§5.1 describes the authors' simulator doing
exactly this).

Round semantics follow the paper's synchronous-CL setup:

* a job opens one resource request per round asking for ``D_i`` devices;
* devices assigned to the request start computing immediately; the
  *scheduling delay* ends when the ``D_i``-th device is assigned;
* the round succeeds once at least ``min_report_fraction × D_i`` devices
  report back (80 % in the paper) **and** the full demand was assigned;
* if that has not happened by ``submit_time + round_deadline`` the round is
  aborted and retried — the fate of rounds under heavy contention;
* the job finishes after ``num_rounds`` successful rounds; its JCT is the
  time from arrival to the last round's completion.

Devices obey the availability trace (they can only be assigned while online,
and drop out when their session ends mid-task) and, by default, the paper's
one-job-per-day realism constraint.

Check-in fast path (million-device traces)
------------------------------------------

With ``SimulationConfig(indexed_dispatch=True)`` — the default — the engine
runs an indexed hot path sized for 10^5–10^6-device traces:

* same-timestamp device check-ins are popped from the event heap as one
  batch (:meth:`~repro.sim.events.EventQueue.pop_run`), so the per-event
  heap and handler-dispatch overhead is paid once per timestamp; each device
  is still registered and offered to the policy in exactly the original
  order, so decisions are unchanged;
* jobs with open, unsatisfied requests live in a
  :class:`~repro.sim.dispatch.PendingRequestPool` (O(1) membership +
  deadline heap) instead of being re-derived by scanning all jobs;
* idle devices live in a :class:`~repro.sim.dispatch.IdleDevicePool`
  bucketed by eligibility signature, so a request arrival only visits
  devices that could actually serve some pending requirement — and devices
  that spent their one-job-per-day budget are parked on a calendar heap
  until their blackout ends instead of being rescanned on every dispatch.

``indexed_dispatch=False`` restores the seed's full linear scans (the
``--legacy-scan`` mode of ``benchmarks/bench_scalability.py``).  Both paths
offer devices to the policy in ascending device-id order and produce
identical assignment sequences; the golden regression tests pin this.

Coordinator/shard engine (multi-core single-scenario runs)
----------------------------------------------------------

``SimulationConfig(num_shards=N)`` with ``N > 1`` splits the engine into a
coordinator (scheduler state, plan maintenance, request lifecycle, the
global decision order) and N device shards (:mod:`repro.sim.shard`), each
owning a partition of device physics: availability event streams as sorted
arrays, response queues, idle pools with daily-budget parking, precomputed
eligibility signatures and per-shard metrics counters.  Events merge by
``(time, seq)`` with the exact sequence enumeration of the single-queue
engine, so **decisions and metrics are bit-identical for any shard count**
— enforced by twin-run property tests, the golden fixtures and the
benchmark's decision/metrics hashes.  See ``docs/ARCHITECTURE.md`` for the
message protocol and the determinism contract.

Randomness splits in two: device latency/failure draws come from
per-device counter-based streams keyed by ``(SimulationConfig.seed,
device_id, draw index)`` — so no draw depends on the order other devices
drew in, the property that makes runs shard-layout-free — while the
engine's policy-facing :class:`numpy.random.Generator` (also seeded by
``SimulationConfig.seed``) is adopted via ``bind_rng`` by any policy that
was not explicitly seeded.  One seed still determines an entire run
bit-for-bit.

Policies are only consulted while some request has unmet demand: with
nothing pending, every shipped policy provably returns ``None`` (they all
filter on ``remaining_demand > 0`` before drawing randomness), and a dirty
scheduling plan is refreshed at the next demand-creating trigger anyway,
so the engine skips the dead ``assign`` calls that previously dominated
the long collection phases of large rounds.  Custom policies must not rely
on being offered devices while they have no unmet demand.

Policies that maintain a scheduling plan (Venn) expose a
:class:`~repro.sim.profile.PlanMaintenanceProfile`; the engine snapshots it
into ``SimulationMetrics.plan_maintenance`` at the end of the run so
benchmarks and sweeps can report rebuilds avoided, index patch sizes and
the plan-maintenance time share without reaching into the policy.

Crash safety (``docs/RESILIENCE.md``)
-------------------------------------

:meth:`Simulator.snapshot` pickles the full simulator graph at an event
boundary and :meth:`Simulator.resume` reconstructs it; the contract is
*exact resume* — the continued run's decisions and metrics are
bit-identical to the uninterrupted twin's at every shard count, scalar and
vectorized (the chaos harness ``python -m repro.resilience.chaos`` enforces
this).  ``SimulationConfig(checkpoint_interval=N)`` snapshots every N
events; ``SimulationConfig(fault_plan=...)`` injects declarative faults
(coordinator crash, shard kill/stall, dropped plan broadcast) at event
boundaries — both are strict no-ops when unset.
"""

from __future__ import annotations

import heapq
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from ..core.policy import SchedulingPolicy
from ..core.requirements import signature_of
from ..core.types import DeviceProfile, JobSpec, ResourceRequest
from ..resilience.faults import FaultInjector, FaultPlan
from ..resilience.snapshot import SimulationSnapshot
from ..traces.device_trace import DeviceAvailabilityTrace
from ..traces.workloads import Workload
from .device import SECONDS_PER_DAY, DeviceRuntime, DeviceStatus, day_index
from .dispatch import IdleDevicePool, PendingRequestPool, dispatch_pools
from .events import Event, EventQueue, EventType
from .job import JobRuntime, RoundCompletion
from .latency import LatencyConfig, ResponseLatencyModel
from .metrics import SimulationMetrics, collect_job_metrics
from .shard import (
    INF_KEY,
    KIND_CHECKIN,
    DeviceShard,
    build_shards,
    compute_signatures,
)
from .vector import STATUS_BUSY, STATUS_IDLE, STATUS_OFFLINE, VectorDeviceState


@dataclass
class SimulationConfig:
    """Engine-level configuration."""

    #: Simulation horizon in seconds.  Jobs unfinished at the horizon are
    #: censored (their JCT is at least ``horizon - arrival``).
    horizon: float = 4 * 24 * 3600.0
    #: Enforce the paper's one-CL-job-per-device-per-day constraint.
    enforce_daily_limit: bool = True
    #: Seed of the run's single random generator (latency model + any
    #: policy that was not explicitly seeded).
    seed: Optional[int] = None
    #: Safety valve against runaway event loops.
    max_events: int = 10_000_000
    #: Latency model parameters.
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    #: Use the indexed check-in fast path (batched check-ins, pending-request
    #: pool, signature-bucketed idle pool).  ``False`` restores the seed's
    #: linear scans; scheduling decisions are identical either way.
    indexed_dispatch: bool = True
    #: Number of device shards.  ``1`` (the default) runs the in-process
    #: single-queue engine; ``N > 1`` runs the coordinator/shard engine of
    #: :mod:`repro.sim.shard` — device physics partitioned across N shards,
    #: decisions still made centrally, and **bit-identical decisions and
    #: metrics for any shard count** (enforced by the shard-identity tests
    #: and the benchmark's decision hash).
    num_shards: int = 1
    #: Force the sharded engine on (``True``) or off (``False``) regardless
    #: of ``num_shards``; ``None`` selects it automatically when
    #: ``num_shards > 1``.  Mainly for tests that exercise the sharded path
    #: with a single shard.
    sharded_dispatch: Optional[bool] = None
    #: Run the vectorized hot path: struct-of-arrays device state
    #: (:mod:`repro.sim.vector`), batched fold kernels for static check-in/
    #: checkout runs, mask-based idle dispatch and batched latency draws.
    #: Decisions and metrics are **bit-identical** to the scalar oracle for
    #: any shard count (enforced by golden fixtures, the benchmark's
    #: blake2b gates and the scenario fuzzer's twin mode).  Implies the
    #: coordinator/shard engine even at ``num_shards=1``.
    vectorized_dispatch: bool = False
    #: Process-pool workers for the per-shard stream builds (0/1 = inline).
    #: Worth enabling on multi-core hosts; on a single core the workers are
    #: pure overhead, hence the conservative default.
    shard_build_workers: int = 0
    #: Record per-shard drain wall time (adds two clock reads per drained
    #: batch; used by ``examples/sharded_scale.py`` for the time split).
    profile_shards: bool = False
    #: Periodic checkpointing: take a full-state snapshot every N processed
    #: events (``None`` disables).  Snapshots land on the simulator's
    #: ``last_snapshot`` attribute and, if one was given, its
    #: ``checkpoint_sink`` callable.  Resuming from any checkpoint replays
    #: the uninterrupted run bit-identically — see ``docs/RESILIENCE.md``.
    checkpoint_interval: Optional[int] = None
    #: Declarative fault injection (:class:`repro.resilience.FaultPlan`);
    #: ``None`` (the default) is a strict no-op — pristine runs replay the
    #: historical event and draw sequences exactly.
    fault_plan: Optional[FaultPlan] = None
    #: Batched decision path: hand same-time device cohorts to the policy's
    #: ``assign_batch`` in chunks instead of one ``assign`` per device.
    #: Decisions and metrics are **bit-identical** either way (the scalar
    #: consult is the oracle; enforced by the differential suite and the
    #: benchmark's ``--assign-batch-compare`` gate).  Only the vectorized
    #: engine consults it; scalar/sharded runs always use per-device
    #: consults.
    batched_assign: bool = True
    #: Batched response path: same-timestamp runs of device responses on
    #: one shard are drained as a cohort — one array pass for the device
    #: state transitions, grouped per-request bookkeeping through the bulk
    #: response hooks, completion checks deferred to the cohort's cut
    #: points — instead of one handler call per event.  The per-event
    #: handler stays the oracle; decisions and metrics are
    #: **bit-identical** either way (enforced by the differential suite
    #: and the benchmark's ``--response-batch-compare`` gate).  Only the
    #: vectorized engine consults it.
    batched_response: bool = True
    #: Record a per-phase wall-time breakdown of the batched decision path
    #: (candidate lookup / admission / bookkeeping on the policy, outcome
    #: sampling on the engine).  Adds clock reads to the hot loop — leave
    #: off except when profiling (``bench_scalability.py
    #: --decision-profile``).
    profile_decisions: bool = False

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.vectorized_dispatch and self.sharded_dispatch is False:
            raise ValueError(
                "vectorized_dispatch runs on the coordinator/shard engine; "
                "it cannot be combined with sharded_dispatch=False"
            )
        if self.vectorized_dispatch and not self.indexed_dispatch:
            raise ValueError(
                "vectorized_dispatch requires indexed_dispatch=True "
                "(the legacy scan path stays scalar)"
            )
        if self.use_sharded_engine and not self.indexed_dispatch:
            raise ValueError(
                "the sharded engine subsumes the indexed fast path; "
                "indexed_dispatch=False is only meaningful with num_shards=1"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive (or None)")
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise TypeError(
                "fault_plan must be a repro.resilience.FaultPlan "
                f"(got {type(self.fault_plan).__name__})"
            )

    @property
    def use_sharded_engine(self) -> bool:
        """Whether runs use the coordinator/shard engine."""
        if self.vectorized_dispatch:
            return True
        if self.sharded_dispatch is not None:
            return bool(self.sharded_dispatch)
        return self.num_shards > 1


#: Sentinel for ``Simulator.resume``: keep the snapshot's pickled fault
#: injector (so unfired faults replay deterministically) unless the caller
#: explicitly passes a replacement plan — including ``None`` to clear it.
_KEEP_FAULTS = object()


class _CohortView:
    """Lazy device-profile cohort for the ledger-mode decision path.

    ``assign_batch_bulk`` consults a cohort prefix and stops at the first
    demand-zeroing proposal, so eagerly materialising a profile list for
    the whole chunk wastes work proportional to the unconsulted tail —
    which at 100k-device scale is most of the chunk.  This view fetches
    ``profiles[slots[i]]`` on demand: sequential iteration (the bulk
    walk) and random indexing (commit, recording wrappers) both work,
    and the unvisited tail costs nothing.
    """

    __slots__ = ("_profiles", "_slots")

    def __init__(self, profiles, slots) -> None:
        self._profiles = profiles
        self._slots = slots

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self):
        profiles = self._profiles
        for slot in self._slots:
            yield profiles[slot]

    def __getitem__(self, i):
        return self._profiles[self._slots[i]]


class Simulator:
    """Discrete-event CL simulator binding devices, jobs and a policy."""

    def __init__(
        self,
        devices: Sequence[DeviceProfile],
        availability: DeviceAvailabilityTrace,
        workload: Union[Workload, Sequence[JobSpec]],
        policy: SchedulingPolicy,
        config: Optional[SimulationConfig] = None,
        categories: Optional[Mapping[int, str]] = None,
        round_callback: Optional[Callable[[RoundCompletion], None]] = None,
        checkpoint_sink: Optional[Callable[[SimulationSnapshot], None]] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.policy = policy
        #: Invoked by the coordinator whenever a job's round completes, with
        #: a :class:`~repro.sim.job.RoundCompletion` carrying the round's
        #: reporting set.  Fires in event order on both the single-queue and
        #: the sharded engine (``_maybe_complete_request`` always runs on
        #: the coordinator), so for a fixed seed the callback sequence is
        #: bit-identical for any shard count.  The callback must not mutate
        #: simulation state; it exists so consumers like the co-simulation
        #: trainer (:mod:`repro.cosim`) can observe rounds as they complete.
        self._round_callback = round_callback
        #: The run's policy-facing random generator; unseeded policies adopt
        #: it via ``bind_rng``.  The latency model no longer shares it: it
        #: draws from per-device streams keyed by global device id, so a
        #: device's latency/failure draws depend only on the seed, its id
        #: and its own assignment history — never on the draw order across
        #: devices.  That is what keeps runs bit-identical for any shard
        #: count (and it also makes the single-queue engine's draws
        #: independent of unrelated devices).
        self.rng = np.random.default_rng(self.config.seed)
        # Normalising through a SeedSequence keeps per-device streams on
        # even for seed=None (a random-entropy run is still internally
        # shard-layout-independent; None would fall back to the shared,
        # order-dependent regime).
        self.latency = ResponseLatencyModel(
            self.config.latency,
            per_device_entropy=np.random.SeedSequence(self.config.seed).entropy,
        )
        self.policy.bind_rng(self.rng)

        if isinstance(workload, Workload):
            jobs = list(workload.jobs)
            categories = dict(workload.categories)
        else:
            jobs = list(workload)
        self._categories: Dict[int, str] = dict(categories or {})
        for job in jobs:
            self._categories.setdefault(job.job_id, job.requirement.name)

        self._device_profiles: List[DeviceProfile] = list(devices)
        self.devices: Dict[int, DeviceRuntime] = {
            d.device_id: DeviceRuntime(profile=d) for d in self._device_profiles
        }
        missing = {
            s.device_id for s in availability.sessions
        } - set(self.devices)
        if missing:
            raise ValueError(
                f"availability trace references unknown devices: {sorted(missing)[:5]}"
            )
        self.availability = availability
        self.jobs: Dict[int, JobRuntime] = {j.job_id: JobRuntime(spec=j) for j in jobs}
        if len(self.jobs) != len(jobs):
            raise ValueError("job ids must be unique")
        # Maintained count of jobs still running, so the main loop's
        # everything-done check is O(1) per event instead of a scan over
        # all jobs (jobs only finish inside _maybe_complete_request).
        self._unfinished_jobs = sum(
            1 for j in self.jobs.values() if not j.is_finished
        )

        self.queue = EventQueue()
        self.now = 0.0
        self._request_counter = 0
        self._requests: Dict[int, ResourceRequest] = {}
        self._deadline_events: Dict[int, Event] = {}
        self._idle_devices: set = set()
        self._indexed = bool(self.config.indexed_dispatch)
        self._pending = PendingRequestPool()
        self._idle_pool = IdleDevicePool()
        #: Coordinator/shard engine state (built lazily in ``run`` so shard
        #: construction is part of the measured run, like the legacy
        #: engine's initial event scheduling).
        self._sharded = bool(self.config.use_sharded_engine)
        self._num_shards = int(self.config.num_shards)
        self._shards: List["DeviceShard"] = []
        #: Vectorized hot path: struct-of-arrays device state + batched
        #: kernels (built in ``_setup_vector_state`` on sharded setup).
        self._vectorized = bool(self.config.vectorized_dispatch)
        self._vec: Optional[VectorDeviceState] = None
        #: Deferred assignments awaiting their batched latency draw:
        #: ``(slot, profile, job, request, seq, session_end, plan_version)``.
        self._assign_buf: list = []
        #: Shards whose queues the coordinator touched since their head key
        #: was last cached (assignment messages land mid-decision).
        self._dirty_shards: set = set()
        self._policy_has_plan_version = hasattr(policy, "plan_version")
        #: Batched decision path (vectorized engine only): dispatch sweeps
        #: hand same-time cohorts to ``policy.assign_batch`` in chunks.
        self._batched_assign = bool(self.config.batched_assign)
        #: Ledger-mode fast path: policies exposing ``assign_batch_bulk``
        #: (Venn on the indexed path) resolve a whole cohort in one call
        #: and the engine commits the proposals in bulk.  Falls back to the
        #: commit-callback protocol for every other policy, for the legacy
        #: scan path, and under ``profile_decisions`` (the instrumented
        #: path has the per-phase timers).
        self._policy_bulk_assign = (
            getattr(policy, "assign_batch_bulk", None)
            if self._batched_assign
            and not self.config.profile_decisions
            and getattr(policy, "use_index", True)
            else None
        )
        #: Batched response path (vectorized engine only): same-timestamp
        #: response runs drain as cohorts (see ``_handle_response_cohort``).
        self._batched_response = bool(self.config.batched_response)
        self._profile_decisions = bool(self.config.profile_decisions)
        if self._profile_decisions and hasattr(policy, "profile_decisions"):
            policy.profile_decisions = True
        #: Engine-side share of the decision profile: wall time spent in
        #: batched outcome draws (``--decision-profile``).
        self.outcome_sampling_s = 0.0
        #: Response-phase breakdown (``--decision-profile``): cohorts
        #: drained by the batched response path, events they covered, and
        #: wall time spent in the batched prefix passes.  The counters are
        #: maintained unconditionally (two integer adds per cohort); the
        #: timer only runs under ``profile_decisions``.
        self.response_cohorts = 0
        self.response_batched_events = 0
        self.response_batch_s = 0.0
        # The engine's own signature space: the workload's full requirement
        # set is known up front, so each device's eligibility signature is
        # computed once (lazily, at first check-in) and cached forever.
        # Deduplicated by requirement *object* (not name): if two jobs'
        # requirements shared a name but differed in predicate, both
        # predicates must contribute to the signature so the dispatch
        # bucket filter never under-visits.
        self._requirements = list(dict.fromkeys(job.requirement for job in jobs))
        self._device_signatures: Dict[int, frozenset] = {}
        self._metrics = SimulationMetrics(
            policy=getattr(policy, "name", type(policy).__name__),
            horizon=self.config.horizon,
        )
        self._events_processed = 0
        # -------------------------------------------------------------- #
        # Crash safety (docs/RESILIENCE.md)
        # -------------------------------------------------------------- #
        #: Receives each periodic SimulationSnapshot; not pickled into
        #: snapshots (reattach one via ``resume(checkpoint_sink=...)``).
        self._checkpoint_sink = checkpoint_sink
        #: The most recent snapshot (periodic or explicit ``snapshot()``).
        self.last_snapshot: Optional[SimulationSnapshot] = None
        #: Whether ``run`` already performed its one-time setup (initial
        #: event scheduling / shard builds).  Snapshotted, so a resumed
        #: run continues mid-stream instead of re-seeding the queues.
        self._started = False
        #: Whether the run already completed and finalised its metrics.
        #: ``run`` on a finished simulator (e.g. one resumed from a
        #: post-run snapshot) is then a no-op returning the final metrics
        #: — re-entering the loop would pop leftover queued events and
        #: re-merge shard metrics into the already-final totals.
        self._finished = False
        #: Event count at the last periodic checkpoint (or run start).
        self._ckpt_last_events = 0
        self.checkpoints_taken = 0
        self.checkpoint_time_s = 0.0
        self._injector: Optional[FaultInjector] = (
            FaultInjector(self.config.fault_plan)
            if self.config.fault_plan is not None
            else None
        )

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _schedule_initial_events(self) -> None:
        for job in self.jobs.values():
            if job.spec.arrival_time <= self.config.horizon:
                self.queue.push(
                    job.spec.arrival_time, EventType.JOB_ARRIVAL, job_id=job.job_id
                )
        for start, device_id, end in self.availability.checkin_events():
            if start >= self.config.horizon:
                continue
            self.queue.push(
                start, EventType.DEVICE_CHECKIN, device_id=device_id, session_end=end
            )
            self.queue.push(
                min(end, self.config.horizon),
                EventType.DEVICE_CHECKOUT,
                device_id=device_id,
                session_end=end,
            )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationMetrics:
        """Run the simulation to the horizon and return aggregate metrics."""
        if self._finished:
            return self._metrics
        if self._sharded:
            return self._run_sharded()
        if not self._started:
            self._started = True
            self._schedule_initial_events()
        if self._injector is not None:
            self._injector.validate(self)
        handlers = {
            EventType.JOB_ARRIVAL: self._on_job_arrival,
            EventType.DEVICE_CHECKIN: self._on_device_checkin,
            EventType.DEVICE_CHECKOUT: self._on_device_checkout,
            EventType.DEVICE_RESPONSE: self._on_device_response,
            EventType.REQUEST_DEADLINE: self._on_request_deadline,
        }
        batch_checkins = self._indexed
        # One pristine-path branch per event: with no checkpointing and no
        # faults the loop body is byte-for-byte the historical one.
        hook = (
            self.config.checkpoint_interval is not None
            or self._injector is not None
        )
        while self.queue:
            event = self.queue.pop()
            if event is None:
                break
            if event.time > self.config.horizon:
                break
            self.now = event.time
            if batch_checkins and event.type is EventType.DEVICE_CHECKIN:
                # Batch the contiguous run of same-timestamp check-ins: one
                # heap drain, one handler loop.  Each device is still
                # registered and offered in the original order.
                self._on_device_checkin(event)
                self._events_processed += 1
                for peer in self.queue.pop_run(event.time, EventType.DEVICE_CHECKIN):
                    self._on_device_checkin(peer)
                    self._events_processed += 1
            else:
                handlers[event.type](event)
                self._events_processed += 1
            if self._events_processed >= self.config.max_events:
                raise RuntimeError(
                    "simulation exceeded max_events; check for livelock or "
                    "raise SimulationConfig.max_events"
                )
            if hook:
                self._post_event_hook()
            if self._unfinished_jobs == 0:
                break
        self._finalise()
        self._finished = True
        return self._metrics

    @property
    def events_processed(self) -> int:
        """Number of events handled so far (exposed for benchmarks)."""
        return self._events_processed

    # ------------------------------------------------------------------ #
    # Checkpoint / restore (docs/RESILIENCE.md)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Callbacks are the caller's liveness, not simulation state: a
        # snapshot must not drag closures (often unpicklable) along, and
        # keeping last_snapshot would nest payloads snowball-style.
        state["_round_callback"] = None
        state["_checkpoint_sink"] = None
        state["last_snapshot"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def snapshot(self) -> SimulationSnapshot:
        """Capture the complete simulation state as one pickle payload.

        Valid at any event boundary: before ``run`` (``started=False`` —
        resuming replays the whole run), at a periodic checkpoint, or
        after the run finished.  The pickle memo preserves every shared
        reference (policy ↔ requests ↔ devices ↔ shard state ↔ RNG), so
        ``resume`` reconstructs a graph that continues bit-identically —
        the exact-resume contract enforced by the chaos harness.
        """
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        return SimulationSnapshot(
            payload=payload,
            events_processed=self._events_processed,
            now=self.now,
            started=self._started,
        )

    @classmethod
    def resume(
        cls,
        snapshot: Union[SimulationSnapshot, bytes],
        *,
        round_callback: Optional[Callable[[RoundCompletion], None]] = None,
        checkpoint_sink: Optional[Callable[[SimulationSnapshot], None]] = None,
        fault_plan=_KEEP_FAULTS,
    ) -> "Simulator":
        """Reconstruct a simulator from a snapshot; call ``run`` to continue.

        Callbacks are not captured in snapshots — reattach them here.  By
        default the snapshot's fault injector (with its fired/pending
        cursor) is kept, so faults that had not fired at checkpoint time
        replay deterministically; pass ``fault_plan=None`` to resume
        fault-free (what the chaos harness does so the crash that killed
        the original run does not fire again), or a new
        :class:`~repro.resilience.FaultPlan` to swap plans.
        """
        payload = (
            snapshot.payload
            if isinstance(snapshot, SimulationSnapshot)
            else snapshot
        )
        sim = pickle.loads(payload)
        if not isinstance(sim, cls):
            raise TypeError(
                f"snapshot does not contain a {cls.__name__} "
                f"(got {type(sim).__name__})"
            )
        sim._round_callback = round_callback
        sim._checkpoint_sink = checkpoint_sink
        sim.last_snapshot = None
        if fault_plan is not _KEEP_FAULTS:
            sim.config = replace(sim.config, fault_plan=fault_plan)
            sim._injector = (
                FaultInjector(fault_plan) if fault_plan is not None else None
            )
        return sim

    def _take_checkpoint(self) -> None:
        # Mark progress *before* pickling so the resumed run inherits an
        # up-to-date watermark and does not immediately re-checkpoint.
        self._ckpt_last_events = self._events_processed
        self.checkpoints_taken += 1
        t0 = time.perf_counter()
        snap = self.snapshot()
        self.checkpoint_time_s += time.perf_counter() - t0
        self.last_snapshot = snap
        if self._checkpoint_sink is not None:
            self._checkpoint_sink(snap)

    def _post_event_hook(self) -> bool:
        """Checkpoint + fault poll at an event boundary.

        Returns True when a fired fault mutated shard state (response
        heaps rewritten, cursors advanced, plan versions re-broadcast) —
        the sharded loop must then refresh its cached head keys.  The
        checkpoint is taken *before* the poll: a crash fault propagates
        with the checkpoint already captured, exactly the order a real
        deployment needs.
        """
        interval = self.config.checkpoint_interval
        if (
            interval is not None
            and self._events_processed - self._ckpt_last_events >= interval
        ):
            self._take_checkpoint()
        if self._injector is not None:
            return self._injector.poll(self)
        return False

    def fault_stats(self) -> Dict[str, int]:
        """Injector counters + summed per-shard degraded-mode counters.

        Injector keys count faults *scheduled* (e.g. ``broadcasts_dropped``
        = drop faults fired); the ``shard_``-prefixed keys count effects
        *observed* by shards (e.g. ``shard_broadcasts_dropped`` = plan
        versions actually withheld) — the two can differ, so both are kept.
        All zeros on a pristine run.
        """
        stats: Dict[str, int] = {
            "faults_fired": 0,
            "crashes": 0,
            "shards_killed": 0,
            "shards_stalled": 0,
            "broadcasts_dropped": 0,
            "plan_rebroadcasts": 0,
        }
        if self._injector is not None:
            stats.update(self._injector.stats)
        totals: Dict[str, int] = {}
        for shard in self._shards:
            for key, value in shard.fault_counters().items():
                totals[key] = totals.get(key, 0) + value
        for key, value in totals.items():
            stats[f"shard_{key}"] = value
        return stats

    # ------------------------------------------------------------------ #
    # Coordinator/shard engine
    # ------------------------------------------------------------------ #
    def _setup_sharded(self) -> None:
        """Build the device shards and seed the coordinator queue.

        Job arrivals claim sequence numbers ``0..J-1`` exactly like the
        single-queue engine's initial pushes; the shard streams then claim
        two numbers per availability session (assigned in global
        session-sort order at build time), and the coordinator counter is
        advanced past them so every later dynamic event — response,
        deadline — sorts identically to its single-queue twin.
        """
        arrivals = 0
        for job in self.jobs.values():
            if job.spec.arrival_time <= self.config.horizon:
                self.queue.push(
                    job.spec.arrival_time, EventType.JOB_ARRIVAL, job_id=job.job_id
                )
                arrivals += 1
        self._shards, consumed = build_shards(
            self._device_profiles,
            self.devices,
            self.availability,
            self._num_shards,
            self.config.horizon,
            seq_start=arrivals,
            policy_name=self._metrics.policy,
            workers=self.config.shard_build_workers,
        )
        self.queue.reserve(consumed)
        # Shard-side signature precompute: one vectorised pass instead of a
        # per-device predicate walk at first check-in, shared with the
        # policy through the signature-provider protocol.
        self._device_signatures = compute_signatures(
            self._device_profiles, self._requirements
        )
        self.policy.bind_signature_provider(
            self._device_signatures.__getitem__, tuple(self._requirements)
        )

    def _run_sharded(self) -> SimulationMetrics:
        """Main loop of the coordinator: merge shard streams + own queue.

        Events are processed in ascending ``(time, seq)`` order across all
        sources — the exact order the single-queue engine processes them.
        Runs of consecutive static device events from one shard are drained
        as a batch (one head re-scan per run instead of per event); response
        events and coordinator events go through the per-event path because
        they can reschedule work on any source.
        """
        if not self._started:
            self._started = True
            self._setup_sharded()
            if self._vectorized:
                self._setup_vector_state()
        if self._injector is not None:
            self._injector.validate(self)
        horizon = self.config.horizon
        queue = self.queue
        shards = self._shards
        num_shards = len(shards)
        profile_shards = self.config.profile_shards
        # One pristine-path branch per iteration: with no checkpointing and
        # no faults the merge loop is byte-for-byte the historical one.
        hook = (
            self.config.checkpoint_interval is not None
            or self._injector is not None
        )
        drain = self._drain_shard_vec if self._vectorized else self._drain_shard
        handle_response = (
            self._handle_shard_response_vec
            if self._vectorized
            else self._handle_shard_response
        )
        cohort_responses = self._vectorized and self._batched_response
        heads = [sh.head_key() for sh in shards]
        dirty = self._dirty_shards
        q_key = queue.peek_key() or INF_KEY
        while True:
            best = q_key
            best_i = -1
            for i in range(num_shards):
                h = heads[i]
                if h < best:
                    best = h
                    best_i = i
            if best[0] > horizon:
                break
            if best_i < 0:
                # Coordinator event: job arrival or request deadline.
                event = queue.pop()
                if event is None:  # pragma: no cover - peek_key guards this
                    break
                self.now = event.time
                if event.type is EventType.JOB_ARRIVAL:
                    self._on_job_arrival(event)
                else:
                    self._on_request_deadline(event)
                self._events_processed += 1
                if self._events_processed >= self.config.max_events:
                    raise RuntimeError(
                        "simulation exceeded max_events; check for livelock "
                        "or raise SimulationConfig.max_events"
                    )
                q_key = queue.peek_key() or INF_KEY
                for i in dirty:
                    heads[i] = shards[i].head_key()
                dirty.clear()
                if hook and self._post_event_hook():
                    # A fired fault rewrote shard queues; every cached head
                    # key may be stale.
                    for i in range(num_shards):
                        heads[i] = shards[i].head_key()
                if self._unfinished_jobs == 0:
                    break
                continue
            shard = shards[best_i]
            if shard.heap and shard.heap[0][:2] == best:
                # Dynamic shard event: a device response.
                t, _seq, device_id, request_id, _job_id, success = heapq.heappop(
                    shard.heap
                )
                self.now = t
                handled = 1
                run = None
                if cohort_responses and shard.heap and shard.heap[0][0] == t:
                    # Same-timestamp response run on this shard: gather
                    # every entry that is still globally next — strictly
                    # before the coordinator queue, every other shard's
                    # head and this shard's own next static event — and
                    # drain the run as one cohort.  Anything scheduled
                    # *during* the cohort carries a larger sequence number
                    # and re-enters the merge loop normally.
                    limit = q_key
                    for i in range(num_shards):
                        if i != best_i and heads[i] < limit:
                            limit = heads[i]
                    cur = shard.cursor
                    if cur < shard.st_len:
                        sk = (shard.st_time[cur], shard.st_seq[cur])
                        if sk < limit:
                            limit = sk
                    sheap = shard.heap
                    while (
                        sheap
                        and sheap[0][0] == t
                        and (t, sheap[0][1]) < limit
                    ):
                        if run is None:
                            run = [
                                (t, _seq, device_id, request_id,
                                 _job_id, success)
                            ]
                        run.append(heapq.heappop(sheap))
                if run is not None:
                    handled = self._handle_response_cohort(shard, run)
                else:
                    handle_response(shard, device_id, request_id, success)
                self._events_processed += handled
                shard.events_processed += handled
                if self._events_processed >= self.config.max_events:
                    raise RuntimeError(
                        "simulation exceeded max_events; check for livelock "
                        "or raise SimulationConfig.max_events"
                    )
                q_key = queue.peek_key() or INF_KEY
                if num_shards == 1:
                    heads[0] = shard.head_key()
                    dirty.clear()
                else:
                    dirty.add(best_i)
                    for i in dirty:
                        heads[i] = shards[i].head_key()
                    dirty.clear()
                if hook and self._post_event_hook():
                    for i in range(num_shards):
                        heads[i] = shards[i].head_key()
                if self._unfinished_jobs == 0:
                    break
                continue
            # Static run: drain this shard's check-in/checkout batch up to
            # the next event of any other source.
            limit = q_key
            for i in range(num_shards):
                if i != best_i and heads[i] < limit:
                    limit = heads[i]
            if profile_shards:
                t0 = time.perf_counter()
                drain(shard, limit, horizon)
                shard.drain_time_s += time.perf_counter() - t0
            else:
                drain(shard, limit, horizon)
            heads[best_i] = shard.head_key()
            dirty.discard(best_i)
            if hook and self._post_event_hook():
                q_key = queue.peek_key() or INF_KEY
                for i in range(num_shards):
                    heads[i] = shards[i].head_key()
                dirty.clear()
        self._finalise()
        self._finished = True
        return self._metrics

    def _drain_shard(
        self, shard: DeviceShard, limit: tuple, horizon: float
    ) -> None:
        """Process ``shard``'s static events while they stay globally next.

        The batch ends at ``limit`` (the next event of any *other* source),
        at the horizon, or as soon as one of the shard's own response
        events becomes due (responses go through the per-event path).
        Static device events mutate only shard-resident state — device
        runtimes, the shard's idle pool, its metrics counters — plus the
        coordinator's supply estimator and, when demand is pending, one
        assignment decision for the checking-in device itself; none of that
        can make another source's next event earlier, which is what makes
        the batch safe.
        """
        times = shard.st_time
        seqs = shard.st_seq
        devs = shard.st_dev
        sends = shard.st_send
        kinds = shard.st_kind
        cursor = shard.cursor
        length = shard.st_len
        heap = shard.heap
        runtimes = shard.runtimes
        pool = shard.pool
        metrics = shard.metrics
        signatures = self._device_signatures
        policy_checkin = self.policy.on_device_checkin
        pending = self._pending
        enforce_daily = self.config.enforce_daily_limit
        limit_t, limit_s = limit
        busy = DeviceStatus.BUSY
        kind_checkin = KIND_CHECKIN
        budget = self.config.max_events - self._events_processed
        processed = 0
        while cursor < length:
            t = times[cursor]
            seq = seqs[cursor]
            if t > limit_t or (t == limit_t and seq > limit_s) or t > horizon:
                break
            if heap:
                head = heap[0]
                if head[0] < t or (head[0] == t and head[1] < seq):
                    break  # a response of this shard is due first
            device_id = devs[cursor]
            session_end = sends[cursor]
            kind = kinds[cursor]
            cursor += 1
            self.now = t
            device = runtimes[device_id]
            if kind == kind_checkin:
                if device.status is busy:
                    # The previous task overran into this session; treat the
                    # new session as extending the device's online window.
                    if session_end > device.session_end:
                        device.session_end = session_end
                else:
                    device.check_in(t, session_end)
                    signature = signatures[device_id]
                    if enforce_daily and device.participated_today(t):
                        pool.park(
                            device_id, signature,
                            device.last_participation_day + 1,
                        )
                    else:
                        pool.add(device_id, signature)
                    metrics.total_checkins += 1
                    policy_checkin(device.profile, t)
                    if pending and device.can_take_task(t, enforce_daily):
                        self._try_assign(device)
            else:  # checkout
                if device.status is not busy:
                    if device.is_online and device.session_end <= session_end:
                        device.check_out()
                        pool.discard(device_id)
            processed += 1
            if processed >= budget:
                shard.cursor = cursor
                shard.events_processed += processed
                self._events_processed += processed
                raise RuntimeError(
                    "simulation exceeded max_events; check for livelock or "
                    "raise SimulationConfig.max_events"
                )
        shard.cursor = cursor
        shard.events_processed += processed
        self._events_processed += processed

    def _handle_shard_response(
        self, shard: DeviceShard, device_id: int, request_id: int, success: bool
    ) -> None:
        """Sharded twin of :meth:`_on_device_response` (same semantics,
        shard-resident pools and counters)."""
        device = shard.runtimes[device_id]
        request = self._requests.get(request_id)
        if request is not None:
            request.in_flight -= 1
        device.finish_task(self.now, success)
        if device.is_idle:
            self._note_idle(device)
        else:
            self._note_not_idle(device_id)
        if success:
            shard.metrics.total_responses += 1
        else:
            shard.metrics.total_failures += 1

        if success and request is not None and request.is_open:
            request.record_response(device_id, self.now)
            self.policy.on_response(request, device.profile, self.now)
            self._maybe_complete_request(request)
        elif request is not None and not request.is_open:
            # The round was aborted (or cancelled) while this device was
            # still computing; its work is discarded, so it keeps its daily
            # budget.
            self._refund_daily_budget(device)
            if request.in_flight == 0:
                self._evict_request(request)

        # A freed device may immediately serve another job (when the daily
        # limit permits and somebody actually wants devices).
        if (
            self._pending
            and device.can_take_task(self.now, self.config.enforce_daily_limit)
        ):
            self._try_assign(device)

    # ------------------------------------------------------------------ #
    # Vectorized hot path (SimulationConfig.vectorized_dispatch)
    # ------------------------------------------------------------------ #
    def _setup_vector_state(self) -> None:
        """Build the struct-of-arrays device state and stream array twins."""
        self._vec = VectorDeviceState(
            self._device_profiles, self._device_signatures
        )
        for shard in self._shards:
            shard.attach_vector_arrays(self._vec.slots_for(shard.st_dev))

    def _vec_profile_of(self, device_id: int) -> DeviceProfile:
        return self.devices[device_id].profile

    #: Below this run length the per-event loop beats the numpy kernel:
    #: a fold_slice call costs ~100 us of array-op overhead regardless of
    #: size, while a Python-loop event costs well under 1 us.  The two
    #: paths replay identical transition functions, so the cutoff affects
    #: only wall time, never results (both identity gates run either way).
    _FOLD_KERNEL_MIN = 32

    def _fold_into(self, shard: DeviceShard, lo: int, hi: int) -> int:
        """Fold static events ``[lo, hi)`` of ``shard`` into the arrays.

        Large runs go through one batched kernel; short runs (the gaps
        between assignment candidates are typically a handful of events)
        replay the same transitions in a plain loop.  The non-busy
        check-ins reach the policy in event order either way — through the
        batch hook or the scalar hook, which are pinned state-identical —
        and the shard's check-in counter advances exactly as the scalar
        path's would.
        """
        if hi - lo < self._FOLD_KERNEL_MIN:
            return self._fold_small(shard, lo, hi)
        ci_slots, ci_times = self._vec.fold_slice(
            shard.sa_time[lo:hi],
            shard.sa_slot[lo:hi],
            shard.sa_send[lo:hi],
            shard.sa_ci[lo:hi],
        )
        n_ci = int(ci_slots.size)
        if n_ci:
            shard.metrics.total_checkins += n_ci
            self.policy.on_device_checkin_batch(
                self._vec.ids[ci_slots],
                ci_times,
                self._vec.sig_id[ci_slots],
                self._vec.sig_table,
                self._vec_profile_of,
            )
        self.now = shard.st_time[hi - 1]
        return hi - lo

    def _fold_small(self, shard: DeviceShard, lo: int, hi: int) -> int:
        """Per-event twin of the fold kernel for short runs.

        Replays exactly the transitions :meth:`VectorDeviceState.fold_slice`
        batches — busy check-ins max-extend the session, non-busy check-ins
        re-open it, checkouts end an idle session they cover — against the
        same arrays, reading the stream through its Python lists (cheaper
        than numpy scalar indexing at this size).
        """
        vec = self._vec
        status = vec.status
        sess = vec.sess
        profiles = vec.profiles
        st_time = shard.st_time
        st_send = shard.st_send
        st_kind = shard.st_kind
        sl_slot = shard.sl_slot
        metrics = shard.metrics
        policy_checkin = self.policy.on_device_checkin
        for p in range(lo, hi):
            slot = sl_slot[p]
            send = st_send[p]
            if st_kind[p] == KIND_CHECKIN:
                if status[slot] == STATUS_BUSY:
                    if send > sess[slot]:
                        sess[slot] = send
                else:
                    status[slot] = STATUS_IDLE
                    sess[slot] = send
                    metrics.total_checkins += 1
                    policy_checkin(profiles[slot], st_time[p])
            elif status[slot] == STATUS_IDLE and sess[slot] <= send:
                status[slot] = STATUS_OFFLINE
        self.now = st_time[hi - 1]
        return hi - lo

    #: Slices at or below this length are drained by the per-event loop
    #: (:meth:`_drain_small`); response-dominated workloads call the drain
    #: with a couple of static events at a time, where even tiny numpy
    #: slice/mask ops cost more than a plain loop.
    _DRAIN_SCALAR_MAX = 64

    def _drain_small(self, shard: DeviceShard, lo: int, hi: int) -> tuple:
        """Per-event twin of the drain body for short slices.

        Replays the scalar engine's loop against the array state: each
        check-in transitions (busy max-extend or re-open + policy hook +
        dispatch attempt), each checkout closes a covered idle session.
        After an assignment flush, subsequent events are re-checked
        against the shard's response head — exactly the scalar loop's
        per-event heap comparison — so a freshly scheduled response stops
        the drain in the same place.  Returns ``(processed, cursor)``.
        """
        vec = self._vec
        status = vec.status
        sess = vec.sess
        last_day = vec.last_day
        profiles = vec.profiles
        st_time = shard.st_time
        st_seq = shard.st_seq
        st_send = shard.st_send
        st_kind = shard.st_kind
        sl_slot = shard.sl_slot
        heap = shard.heap
        metrics = shard.metrics
        pending = self._pending
        enforce_daily = self.config.enforce_daily_limit
        policy_checkin = self.policy.on_device_checkin
        flushed = False
        p = lo
        while p < hi:
            t = st_time[p]
            if flushed and heap:
                h0 = heap[0][0]
                if t > h0 or (t == h0 and st_seq[p] > heap[0][1]):
                    break
            slot = sl_slot[p]
            send = st_send[p]
            self.now = t
            if st_kind[p] == KIND_CHECKIN:
                if status[slot] == STATUS_BUSY:
                    if send > sess[slot]:
                        sess[slot] = send
                else:
                    status[slot] = STATUS_IDLE
                    sess[slot] = send
                    metrics.total_checkins += 1
                    policy_checkin(profiles[slot], t)
                    if pending and t < send and not (
                        enforce_daily
                        and last_day[slot] == int(t // SECONDS_PER_DAY)
                    ):
                        self._try_assign_vec(slot)
                        if self._assign_buf:
                            self._flush_assignments()
                            flushed = True
            elif status[slot] == STATUS_IDLE and sess[slot] <= send:
                status[slot] = STATUS_OFFLINE
            p += 1
        return p - lo, p

    def _drain_shard_vec(
        self, shard: DeviceShard, limit: tuple, horizon: float
    ) -> None:
        """Vectorized twin of :meth:`_drain_shard`.

        The slice bound (``limit``, the horizon, the shard's own response
        head) is resolved once by binary search instead of per event.
        With no pending demand the whole slice folds in one kernel.  With
        demand pending, *candidate* check-ins — events the scalar loop
        would offer to the policy — are located with one mask (non-busy at
        slice start, day budget available; an over-approximation re-checked
        exactly per candidate) and processed scalar-on-arrays in order,
        while the assignment-free gaps between them fold as kernels.  An
        assignment can schedule a response that precedes the remaining
        static events; the drain then stops early, exactly like the scalar
        loop's per-event heap check.
        """
        vec = self._vec
        sa_time = shard.sa_time
        sa_seq = shard.sa_seq
        sa_slot = shard.sa_slot
        sa_send = shard.sa_send
        sa_ci = shard.sa_ci
        cursor = shard.cursor
        heap = shard.heap
        st_time = shard.st_time
        st_seq = shard.st_seq
        n_static = len(st_time)
        bt, bs = limit
        if heap:
            h0, h1 = heap[0][0], heap[0][1]
            if h0 < bt or (h0 == bt and h1 < bs):
                # Static events must stay strictly before the response.
                bt, bs = h0, h1 - 1
        # One list read usually settles the slice bound: in
        # response-dominated stretches the next static event lies past
        # the limit, so the binary searches can be skipped entirely.
        if bt > horizon:
            if cursor >= n_static or st_time[cursor] > horizon:
                hi = cursor
            else:
                hi = int(sa_time.searchsorted(horizon, "right"))
        elif cursor >= n_static or st_time[cursor] > bt or (
            st_time[cursor] == bt and st_seq[cursor] > bs
        ):
            hi = cursor
        else:
            lo_eq = int(sa_time.searchsorted(bt, "left"))
            hi_eq = int(sa_time.searchsorted(bt, "right"))
            hi = lo_eq + int(sa_seq[lo_eq:hi_eq].searchsorted(bs, "right"))
        budget = self.config.max_events - self._events_processed
        if hi - cursor > budget:
            hi = cursor + budget
        processed = 0
        pending = self._pending
        enforce_daily = self.config.enforce_daily_limit
        status = vec.status
        sess = vec.sess
        last_day = vec.last_day
        metrics = shard.metrics
        policy_checkin = self.policy.on_device_checkin
        profiles = vec.profiles
        st_send = shard.st_send
        sl_slot = shard.sl_slot
        if 0 < hi - cursor <= self._DRAIN_SCALAR_MAX:
            # Short slices (the common case in response-dominated
            # stretches) skip the mask machinery: a per-event loop over
            # the shard's Python lists replays the scalar engine's drain
            # exactly, including the per-event response-head check.
            processed, cursor = self._drain_small(shard, cursor, hi)
            hi = cursor
        while cursor < hi:
            if not pending:
                processed += self._fold_into(shard, cursor, hi)
                cursor = hi
                break
            base = cursor
            slots_v = sa_slot[base:hi]
            cand = sa_ci[base:hi] & (status[slots_v] != STATUS_BUSY)
            if enforce_daily:
                days = np.floor_divide(
                    sa_time[base:hi], SECONDS_PER_DAY
                ).astype(np.int64)
                cand &= last_day[slots_v] != days
            cand_pos = np.nonzero(cand)[0]
            if cand_pos.size == 0:
                processed += self._fold_into(shard, base, hi)
                cursor = hi
                break
            for rel in cand_pos.tolist():
                p = base + rel
                if p >= hi:
                    break  # bound clamped below a scheduled response
                if not pending:
                    break  # outer loop folds the assignment-free remainder
                if p > cursor:
                    processed += self._fold_into(shard, cursor, p)
                t = st_time[p]
                slot = sl_slot[p]
                send = st_send[p]
                self.now = t
                if status[slot] == STATUS_BUSY:
                    # Became busy earlier in this drain: the new session
                    # extends the online window (scalar busy-check-in).
                    if send > sess[slot]:
                        sess[slot] = send
                else:
                    status[slot] = STATUS_IDLE
                    sess[slot] = send
                    metrics.total_checkins += 1
                    policy_checkin(profiles[slot], t)
                    if pending and t < send and not (
                        enforce_daily
                        and last_day[slot] == int(t // SECONDS_PER_DAY)
                    ):
                        self._try_assign_vec(slot)
                        if self._assign_buf:
                            self._flush_assignments()
                            # A freshly scheduled response may precede the
                            # remaining static events; clamp the slice
                            # bound so the drain hands control back exactly
                            # where the scalar per-event heap check would
                            # have broken.  Responses usually land far past
                            # the slice (task durations are minutes), so a
                            # one-read time comparison skips the binary
                            # searches almost every time.
                            if heap and heap[0][0] <= st_time[hi - 1]:
                                h0, h1 = heap[0][0], heap[0][1]
                                lo_eq = int(sa_time.searchsorted(h0, "left"))
                                hi_eq = int(sa_time.searchsorted(h0, "right"))
                                bound = lo_eq + int(
                                    sa_seq[lo_eq:hi_eq].searchsorted(
                                        h1 - 1, "right"
                                    )
                                )
                                if bound < hi:
                                    hi = bound
                processed += 1
                cursor = p + 1
            else:
                if cursor < hi:
                    processed += self._fold_into(shard, cursor, hi)
                    cursor = hi
                break
        shard.cursor = cursor
        shard.events_processed += processed
        self._events_processed += processed
        if processed >= budget:
            raise RuntimeError(
                "simulation exceeded max_events; check for livelock or "
                "raise SimulationConfig.max_events"
            )

    def _handle_shard_response_vec(
        self, shard: DeviceShard, device_id: int, request_id: int, success: bool
    ) -> None:
        """Vectorized twin of :meth:`_handle_shard_response` (array state)."""
        vec = self._vec
        slot = vec.slot_of[device_id]
        request = self._requests.get(request_id)
        now = self.now
        if request is not None:
            request.in_flight -= 1
        if success:
            vec.tasks_completed[slot] += 1
            shard.metrics.total_responses += 1
        else:
            vec.tasks_failed[slot] += 1
            shard.metrics.total_failures += 1
        # The session end cannot change inside this handler (folds never
        # run here), so one array read serves both the status transition
        # and the re-dispatch guard.  The status itself is re-read below:
        # completing a round can run a dispatch sweep that assigns this
        # very slot.
        sess_open = now < vec.sess[slot]
        vec.status[slot] = STATUS_IDLE if sess_open else STATUS_OFFLINE
        if success and request is not None and request.is_open:
            request.record_response(device_id, now)
            self.policy.on_response(request, vec.profiles[slot], now)
            self._maybe_complete_request(request)
        elif request is not None and not request.is_open:
            # Aborted round: the device keeps its daily budget.
            vec.last_day[slot] = -1
            if request.in_flight == 0:
                self._evict_request(request)
        if (
            sess_open
            and self._pending
            and vec.status[slot] == STATUS_IDLE
            and not (
                self.config.enforce_daily_limit
                and vec.last_day[slot] == int(now // SECONDS_PER_DAY)
            )
        ):
            self._try_assign_vec(slot)
            self._flush_assignments()

    def _handle_response_cohort(self, shard: DeviceShard, run: list) -> int:
        """Drain a same-timestamp run of responses as batched stretches.

        Returns the number of entries actually consumed.  That is
        ``len(run)`` except when a completion finishes the *last* job: the
        merge loop stops right after such an event, so the unconsumed tail
        is pushed back onto the shard heap (same keys, order preserved)
        and left unprocessed — exactly like the per-event loop.

        ``run`` holds the shard's popped heap entries, in sequence order —
        the exact order the per-event loop would have handled them.  The
        per-event handler interleaves four effects per response: the
        device state transition, the request bookkeeping, the completion
        check and the freed-device re-dispatch.  Within a stretch where no
        response completes its request and none is a re-dispatch candidate,
        those effects commute across responses (distinct devices, per-
        request bookkeeping, provably no-op completion checks, no
        dispatches), so the stretch collapses into one batched pass.  The
        scan below finds the first *sequential point* — a response that
        would complete its request (its success would lift the response
        count to ``min_reports`` with demand already met) or would attempt
        a re-dispatch (session still open, demand pending, daily budget
        available after any refund) — batches the prefix before it, hands
        the sequential response to the per-event oracle handler, and
        repeats.  Classification runs against pre-stretch state, which the
        commuting argument makes exact; a conservative misclassification
        only shortens a stretch, never changes results.
        """
        vec = self._vec
        slot_of = vec.slot_of
        sess = vec.sess
        last_day = vec.last_day
        requests = self._requests
        enforce_daily = self.config.enforce_daily_limit
        t = run[0][0]
        today = int(t // SECONDS_PER_DAY)
        n = len(run)
        self.response_cohorts += 1
        i = 0
        while i < n:
            pending = bool(self._pending)
            #: Successes counted per open request with met demand in this
            #: stretch (completion classification is exact: demand cannot
            #: change inside a stretch, so only the response count moves).
            counts: dict = {}
            hard = False
            j = i
            while j < n:
                entry = run[j]
                request = requests.get(entry[3])
                slot = slot_of[entry[2]]
                if entry[5] and request is not None and request.is_open:
                    if request.remaining_demand == 0:
                        c = counts.get(entry[3], 0) + 1
                        if len(request.responses) + c >= request.min_reports:
                            hard = True
                            break  # completes its request
                        counts[entry[3]] = c
                    if (
                        pending
                        and t < sess[slot]
                        and not (
                            enforce_daily and last_day[slot] == today
                        )
                    ):
                        # Re-dispatch candidate whose own bookkeeping
                        # (``on_response``) interleaves with the consult:
                        # only the per-event oracle preserves that order.
                        hard = True
                        break
                elif (
                    pending
                    and t < sess[slot]
                    and not (
                        enforce_daily
                        and request is not None
                        and request.is_open
                        and last_day[slot] == today
                    )
                ):
                    # Re-dispatch candidate with no policy-visible
                    # bookkeeping (failure, or a straggler of a closed
                    # request — the refund restores its daily budget):
                    # batchable through the cohort dispatch machinery.
                    break
                j += 1
            if j > i:
                if self._profile_decisions:
                    t0 = time.perf_counter()
                    self._apply_response_prefix(shard, run, i, j, t)
                    self.response_batch_s += time.perf_counter() - t0
                else:
                    self._apply_response_prefix(shard, run, i, j, t)
                self.response_batched_events += j - i
            if j >= n:
                i = j
            elif hard:
                entry = run[j]
                self._handle_shard_response_vec(
                    shard, entry[2], entry[3], entry[5]
                )
                i = j + 1
                if self._unfinished_jobs == 0 and i < n:
                    # The last job just finished; the run's tail stays
                    # unprocessed, exactly as under the per-event loop.
                    sheap = shard.heap
                    for p in range(i, n):
                        heapq.heappush(sheap, run[p])
                    return i
            else:
                # A run of consecutive responses none of which touches the
                # policy (failures and closed-request stragglers): batch
                # their transitions/refunds in one pass, then offer the
                # freed devices to the policy through the batched dispatch
                # path — consult order is entry order, exactly the scalar
                # loop's, and no bookkeeping interleaves by construction.
                k = j + 1
                while k < n:
                    entry = run[k]
                    request = requests.get(entry[3])
                    if entry[5] and request is not None and request.is_open:
                        break
                    k += 1
                if self._profile_decisions:
                    t0 = time.perf_counter()
                    self._apply_response_prefix(shard, run, j, k, t)
                    self.response_batch_s += time.perf_counter() - t0
                else:
                    self._apply_response_prefix(shard, run, j, k, t)
                self.response_batched_events += k - j
                self._dispatch_response_freed(run, j, k, t, today)
                i = k
        return n

    #: Below this stretch length the per-event status loop beats the numpy
    #: gather/scatter (same trade-off as ``_FOLD_KERNEL_MIN``); the two
    #: bodies replay the identical transition, so the cutoff affects only
    #: wall time, never results.
    _RESPONSE_KERNEL_MIN = 32

    def _apply_response_prefix(
        self, shard: DeviceShard, run: list, lo: int, hi: int, t: float
    ) -> None:
        """Batch one completion- and dispatch-free stretch of responses.

        Replays exactly the per-event handler's effects for ``run[lo:hi]``:
        one pass over the device arrays for the ``finish_task`` transitions
        and counters, then one grouped pass per touched request for the
        bookkeeping — ``record_responses_bulk`` plus the policy's
        ``on_response_batch`` for successes on open requests (per-request
        grouping in first-occurrence order; sound because response
        bookkeeping commutes across requests), budget refunds and request
        eviction for responses to closed requests.  The deferred
        completion check runs once per touched request and is provably a
        no-op (the cohort scan cuts at the first completing response); it
        is kept as a cheap guard.  No response in the stretch is a
        re-dispatch candidate, so the freed-device dispatch attempts are
        skipped entirely — that is what the scan guaranteed.
        """
        vec = self._vec
        slot_of = vec.slot_of
        sess = vec.sess
        status = vec.status
        last_day = vec.last_day
        tasks_completed = vec.tasks_completed
        tasks_failed = vec.tasks_failed
        requests = self._requests
        profiles = vec.profiles
        policy = self.policy
        m = hi - lo
        status_done = False
        if m >= self._RESPONSE_KERNEL_MIN:
            # One gather/scatter settles every status transition: devices
            # are unique within a run (one in-flight response per device).
            slots_arr = np.fromiter(
                (slot_of[run[p][2]] for p in range(lo, hi)),
                dtype=np.int64,
                count=m,
            )
            status[slots_arr] = np.where(
                sess[slots_arr] > t, STATUS_IDLE, STATUS_OFFLINE
            )
            status_done = True
        n_ok = 0
        n_fail = 0
        #: request_id -> (request, [reporting device ids]) for successes on
        #: open requests, in first-occurrence order, ids in response order.
        recorded: dict = {}
        for p in range(lo, hi):
            entry = run[p]
            device_id = entry[2]
            slot = slot_of[device_id]
            if not status_done:
                status[slot] = (
                    STATUS_IDLE if t < sess[slot] else STATUS_OFFLINE
                )
            if entry[5]:
                tasks_completed[slot] += 1
                n_ok += 1
            else:
                tasks_failed[slot] += 1
                n_fail += 1
            request = requests.get(entry[3])
            if request is None:
                continue
            request.in_flight -= 1
            if request.is_open:
                if entry[5]:
                    group = recorded.get(entry[3])
                    if group is None:
                        recorded[entry[3]] = group = (request, [])
                    group[1].append(device_id)
            else:
                # Aborted round: the device keeps its daily budget.
                last_day[slot] = -1
                if request.in_flight == 0:
                    self._evict_request(request)
        shard.metrics.total_responses += n_ok
        shard.metrics.total_failures += n_fail
        for request, device_ids in recorded.values():
            request.record_responses_bulk(device_ids, t)
            policy.on_response_batch(
                request,
                [profiles[slot_of[d]] for d in device_ids],
                t,
            )
            self._maybe_complete_request(request)

    def _dispatch_response_freed(
        self, run: list, lo: int, hi: int, t: float, today: int
    ) -> None:
        """Offer the devices freed by ``run[lo:hi]`` back to the policy.

        The cohort scan guaranteed no response in the stretch touched the
        policy, so the per-event loop's consult sequence is exactly "each
        freed, still-dispatchable device in response order" — which is a
        device cohort the batched decision path (PR 9's ``assign_batch``
        with the engine commit callback) can serve.  The candidate filter
        (still idle — i.e. session open, daily budget left after any
        refund, signature eligible for a pending requirement) drops exactly
        the devices whose scalar consult is a guaranteed no-op; unlike the
        idle-pool sweep the queue keeps *response order*, not ascending
        device id, because that is the scalar loop's offer order here.
        Small cohorts stay on the scalar consult loop, same cutoff as the
        sweep.
        """
        pending = self._pending
        if not pending:
            return
        vec = self._vec
        slot_of = vec.slot_of
        sig_id = vec.sig_id
        m = hi - lo
        slots = np.fromiter(
            (slot_of[run[p][2]] for p in range(lo, hi)),
            dtype=np.int64,
            count=m,
        )
        keep = vec.status[slots] == STATUS_IDLE
        if self.config.enforce_daily_limit:
            keep &= vec.last_day[slots] != today
        version = pending.names_version
        elig = vec.sig_eligibility(pending.pending_requirements())
        keep &= elig[sig_id[slots]]
        queue = slots[keep]
        if not queue.size:
            return
        if self._batched_assign and queue.size > self._DRAIN_SCALAR_MAX:
            self._dispatch_cohort_batched(queue, version)
            self._flush_assignments()
            return
        status = vec.status
        qlist = queue.tolist()
        i = 0
        n = len(qlist)
        while i < n:
            if not pending:
                break
            if pending.names_version != version:
                version = pending.names_version
                elig = vec.sig_eligibility(pending.pending_requirements())
                queue = queue[i:]
                queue = queue[elig[sig_id[queue]]]
                qlist = queue.tolist()
                n = len(qlist)
                i = 0
                continue
            slot = qlist[i]
            i += 1
            if status[slot] != STATUS_IDLE:
                continue
            self._try_assign_vec(slot)
        self._flush_assignments()

    def _try_assign_vec(self, slot: int) -> None:
        """Vectorized twin of :meth:`_try_assign`: same policy consultation
        and validity checks, state transition on the arrays, and the latency
        draw deferred to :meth:`_flush_assignments` (the response's sequence
        number and plan version are claimed here, in decision order)."""
        profile = self._vec.profiles[slot]
        request = self.policy.assign(profile, self.now)
        if request is not None:
            self._commit_assign_vec(slot, profile, request)

    def _commit_assign_vec(self, slot: int, profile, request) -> bool:
        """Record one policy proposal on the array state (the ``commit``
        callback of the batched decision path — also the tail of the scalar
        consult).  Validation, demand bookkeeping and the response-sequence
        claim are exactly the scalar path's, so a batch of commits in offer
        order is state-identical to per-device consults.  Returns whether
        any request still has unmet demand — ``False`` tells the policy the
        per-device engine loop would have stopped offering devices."""
        if not request.is_open or request.remaining_demand <= 0:
            return bool(self._pending)
        if request.is_assigned(profile.device_id):
            return bool(self._pending)
        job = self.jobs.get(request.job_id)
        if job is None:
            raise ValueError(
                f"policy assigned device {profile.device_id} to unknown job "
                f"{request.job_id}"
            )
        if not job.spec.requirement.is_eligible(profile):
            raise ValueError(
                f"policy assigned ineligible device {profile.device_id} to job "
                f"{request.job_id} ({job.spec.requirement.name})"
            )
        request.record_assignment(profile.device_id, self.now)
        if request.remaining_demand == 0:
            self._pending.remove(request.job_id)
        vec = self._vec
        vec.status[slot] = STATUS_BUSY
        vec.last_day[slot] = int(self.now // SECONDS_PER_DAY)
        self._assign_buf.append(
            (
                slot,
                profile,
                job,
                request,
                self.queue.next_seq(),
                float(vec.sess[slot]),
                (
                    self.policy.plan_version
                    if self._policy_has_plan_version
                    else None
                ),
            )
        )
        return bool(self._pending)

    def _flush_assignments(self) -> None:
        """Draw outcomes for the buffered assignments and queue responses.

        Scheduling a response never influences a later decision within the
        same dispatch sweep (it only lands on a shard heap), so deferring
        the draws to one batched kernel is decision-identical to the scalar
        engine's draw-per-assignment — sequence numbers were already claimed
        in assignment order.
        """
        buf = self._assign_buf
        if not buf:
            return
        self._assign_buf = []
        now = self.now
        shards = self._shards
        num_shards = self._num_shards
        dirty = self._dirty_shards
        t0 = time.perf_counter() if self._profile_decisions else 0.0
        if len(buf) == 1:
            # Size-1 flushes dominate contended workloads; the batch kernel
            # already falls back to a per-element loop there, so skip its
            # list plumbing and draw directly (bit-identical by contract).
            _slot, profile, job, request, seq, send, pv = buf[0]
            outcomes = (
                self.latency.sample_outcome(job.spec, profile, now=now),
            )
        else:
            outcomes = self.latency.sample_outcomes_batch(
                [entry[2].spec for entry in buf],
                [entry[1] for entry in buf],
                now=now,
            )
        if self._profile_decisions:
            self.outcome_sampling_s += time.perf_counter() - t0
        for (slot, profile, job, request, seq, send, pv), (
            duration,
            dropped,
        ) in zip(buf, outcomes):
            finishes_in_session = now + duration <= send
            success = (not dropped) and finishes_in_session
            if success:
                finish_time = now + duration
            else:
                finish_time = min(now + duration, max(send, now))
            shard_index = profile.device_id % num_shards
            shards[shard_index].schedule_response(
                finish_time,
                seq,
                profile.device_id,
                request.request_id,
                job.job_id,
                success,
                plan_version=pv,
            )
            dirty.add(shard_index)

    #: Cohort chunk size for the batched dispatch sweep: bounds the
    #: profile-list build between re-filters so a sweep that stops early
    #: (demand exhausted) never materialises the whole idle queue.
    _DISPATCH_CHUNK = 1024

    def _dispatch_idle_devices_vec(self) -> None:
        """Mask-based twin of the idle-pool dispatch sweep.

        The candidate mask (idle, session open, daily budget available,
        signature intersects a pending requirement) enumerates exactly the
        devices the scalar bucket walk visits, in the same ascending
        device-id order (slots are id-ranked); the pending-name narrowing
        on ``names_version`` changes mirrors the bucket re-filter.

        Large cohorts go through the policy's batched decision path
        (``assign_batch`` with :meth:`_commit_assign_vec` as the commit
        callback): one plan refresh and one candidate resolution per
        interned signature instead of per device, decisions bit-identical
        to per-device consults (the differential suite and the benchmark's
        ``--assign-batch-compare`` gate hold the line).  Cohorts up to
        ``_DRAIN_SCALAR_MAX`` stay on the scalar consult loop, where the
        batch plumbing costs more than it saves.
        """
        pending = self._pending
        vec = self._vec
        now = self.now
        names = pending.pending_requirements()
        version = pending.names_version
        elig = vec.sig_eligibility(names)
        sig_id = vec.sig_id
        status = vec.status
        # Filter on the (usually small) idle subset rather than running
        # every predicate over the full device population: one full-width
        # compare + nonzero, then per-idle-slot narrowing.
        idle = np.nonzero(status == STATUS_IDLE)[0]
        if idle.size:
            keep = vec.sess[idle] > now
            if self.config.enforce_daily_limit:
                keep &= vec.last_day[idle] != day_index(now)
            keep &= elig[sig_id[idle]]
            idle = idle[keep]
        queue = idle
        if self._batched_assign and queue.size > self._DRAIN_SCALAR_MAX:
            self._dispatch_cohort_batched(queue, version)
            self._flush_assignments()
            return
        qlist = queue.tolist()
        i = 0
        n = len(qlist)
        while i < n:
            if not pending:
                break
            if pending.names_version != version:
                # Demand narrowed mid-sweep: re-filter the unvisited
                # remainder in one array op (the scalar path's bucket
                # re-filter) instead of re-checking eligibility per slot.
                version = pending.names_version
                names = pending.pending_requirements()
                elig = vec.sig_eligibility(names)
                queue = queue[i:]
                queue = queue[elig[sig_id[queue]]]
                qlist = queue.tolist()
                n = len(qlist)
                i = 0
                continue
            slot = qlist[i]
            i += 1
            if status[slot] != STATUS_IDLE:
                continue
            self._try_assign_vec(slot)
        self._flush_assignments()

    def _dispatch_cohort_batched(self, queue, version: int) -> None:
        """Drive one dispatch sweep through ``policy.assign_batch``.

        The cohort is the already-filtered idle queue in ascending slot
        (= device-id) order — exactly the scalar sweep's offer order.  It
        is fed to the policy one chunk at a time.  The scalar sweep
        re-checks ``names_version`` before *every* consult; the batch gets
        the same semantics by construction: the name set can only narrow
        as the result of a commit (a job's demand emptying), so the commit
        callback detects the change at the very commit that caused it,
        stops the batch (``False``) and records where to resume — the
        unvisited remainder is then re-filtered in one array op before the
        next chunk, and no device the scalar re-filter would have dropped
        is ever consulted.  Buffered proposals are flushed once by the
        caller: responses only land on shard heaps and never influence a
        decision within the sweep.
        """
        pending = self._pending
        vec = self._vec
        profiles = vec.profiles
        sig_id = vec.sig_id
        now = self.now
        bulk = self._policy_bulk_assign
        assign_batch = self.policy.assign_batch
        commit_one = self._commit_assign_vec
        # ``state[0]``: resume offset within the current chunk when the
        # batch stopped on a names_version narrowing (−1 = ran to the end
        # or stopped because demand emptied entirely).
        state = [-1]
        i = 0
        n = queue.size
        while i < n and pending:
            if pending.names_version != version:
                version = pending.names_version
                elig = vec.sig_eligibility(pending.pending_requirements())
                queue = queue[i:]
                queue = queue[elig[sig_id[queue]]]
                n = queue.size
                i = 0
                continue
            if bulk is not None:
                # Ledger mode stops itself at the first demand-zeroing
                # proposal and the cohort view materialises profiles on
                # demand, so chunks can be generous — the consulted
                # prefix, not the chunk width, bounds the work.
                chunk = queue[i : i + min(n - i, 8192)].tolist()
                cohort = _CohortView(profiles, chunk)
                consumed, proposals = bulk(cohort, now)
                if proposals:
                    self._commit_cohort_vec(chunk, cohort, proposals)
                if consumed == 0:
                    # No open requests on the policy side (a consumed
                    # cohort always advances): nothing left to offer.
                    break
                i += consumed
                continue
            # Commit-callback mode walks the whole chunk unless a commit
            # stops it, so size the cohort against the demand actually
            # outstanding: a sweep stops once demand fills, and nearly
            # every consult of a pre-filtered queue produces a proposal,
            # so building profile lists much past the remaining demand is
            # pure waste.
            est = self._pending_demand_estimate()
            chunk_size = min(n - i, max(64, min(est + (est >> 3), 8192)))
            chunk = queue[i : i + chunk_size].tolist()
            cohort = [profiles[slot] for slot in chunk]
            state[0] = -1

            def commit(j, request, _chunk=chunk, _cohort=cohort):
                if not commit_one(_chunk[j], _cohort[j], request):
                    return False
                if pending.names_version != version:
                    state[0] = j + 1
                    return False
                return True

            assign_batch(cohort, now, commit)
            if state[0] >= 0:
                i += state[0]
            else:
                i += len(chunk)

    def _pending_demand_estimate(self) -> int:
        """Total unmet demand across jobs with open requests (O(#pending))."""
        jobs = self.jobs
        total = 0
        for job_id in self._pending.pending_jobs():
            job = jobs.get(job_id)
            if job is not None and job.open_request is not None:
                total += job.open_request.remaining_demand
        return total

    def _commit_cohort_vec(self, slots, cohort, proposals) -> None:
        """Bulk twin of per-proposal :meth:`_commit_assign_vec`.

        ``proposals`` is the ledger-validated output of
        ``assign_batch_bulk`` — every request is open with enough demand
        for its share of the cohort and no device repeats, so the scalar
        commit's silently-skip guards cannot fire, and candidates from the
        indexed plan are eligible by construction (signature containment),
        so the per-proposal eligibility re-check is redundant.  Response
        sequence numbers are claimed per proposal in offer order; demand
        bookkeeping is applied per request in bulk.  State after this call
        is identical to having interleaved :meth:`_commit_assign_vec` with
        the consults.
        """
        vec = self._vec
        status = vec.status
        last_day = vec.last_day
        sess = vec.sess
        buf = self._assign_buf
        next_seq = self.queue.next_seq
        now = self.now
        day = int(now // SECONDS_PER_DAY)
        pv = self.policy.plan_version if self._policy_has_plan_version else None
        jobs = self.jobs
        pending = self._pending
        #: request_id -> (request, job, [device_ids]) accumulated in order.
        grouped: dict = {}
        for i, request in proposals:
            slot = slots[i]
            profile = cohort[i]
            entry = grouped.get(request.request_id)
            if entry is None:
                job = jobs.get(request.job_id)
                if job is None:
                    raise ValueError(
                        f"policy assigned device {profile.device_id} to "
                        f"unknown job {request.job_id}"
                    )
                grouped[request.request_id] = entry = (request, job, [])
            entry[2].append(profile.device_id)
            status[slot] = STATUS_BUSY
            last_day[slot] = day
            buf.append(
                (slot, profile, entry[1], request, next_seq(),
                 float(sess[slot]), pv)
            )
        for request, job, device_ids in grouped.values():
            request.record_assignments_bulk(device_ids, now)
            if request.remaining_demand == 0:
                pending.remove(request.job_id)

    def _sync_vector_state(self) -> None:
        """Copy the final array state back onto the DeviceRuntime objects.

        Post-run inspection code (tests, notebooks) reads
        ``sim.devices[...].status`` etc.; the vectorized run never mutated
        those objects, so mirror the arrays back once at finalisation.
        ``current_job``/``current_request`` are not tracked per device on
        the vectorized path and stay ``None``.
        """
        vec = self._vec
        status_of = (DeviceStatus.OFFLINE, DeviceStatus.IDLE, DeviceStatus.BUSY)
        for slot, device_id in enumerate(vec.ids.tolist()):
            device = self.devices[device_id]
            device.status = status_of[int(vec.status[slot])]
            device.session_end = float(vec.sess[slot])
            day = int(vec.last_day[slot])
            device.last_participation_day = day if day >= 0 else None
            device.tasks_completed = int(vec.tasks_completed[slot])
            device.tasks_failed = int(vec.tasks_failed[slot])

    def shard_stats(self) -> List[Dict[str, object]]:
        """Per-shard event/message counters (sharded runs only)."""
        return [shard.stats() for shard in self._shards]

    def _finalise(self) -> None:
        if self._vectorized and self._vec is not None:
            self._sync_vector_state()
        horizon = self.config.horizon
        for job in self.jobs.values():
            if not job.is_finished:
                job.cancel(min(self.now, horizon))
            self._metrics.jobs[job.job_id] = collect_job_metrics(
                job, category=self._categories.get(job.job_id, "general")
            )
        # Snapshot the policy's plan-maintenance counters (Venn exposes a
        # profile; baselines do not maintain a plan).
        profile = getattr(self.policy, "plan_profile", None)
        if profile is not None:
            self._metrics.plan_maintenance = profile.as_dict()
        # Sharded runs: fold the per-shard counter metrics into the
        # coordinator's job-level metrics through the exact reduction.
        for shard in self._shards:
            self._metrics = self._metrics.merge(shard.metrics)

    # ------------------------------------------------------------------ #
    # Idle-device bookkeeping
    # ------------------------------------------------------------------ #
    def _signature(self, device: DeviceRuntime) -> frozenset:
        sig = self._device_signatures.get(device.device_id)
        if sig is None:
            sig = signature_of(device.profile, self._requirements)
            self._device_signatures[device.device_id] = sig
        return sig

    def _note_idle(self, device: DeviceRuntime) -> None:
        """Device became idle: track it, parking daily-spent devices."""
        if self._sharded:
            pool = self._shards[device.device_id % self._num_shards].pool
            sig = self._device_signatures[device.device_id]
            if self.config.enforce_daily_limit and device.participated_today(
                self.now
            ):
                pool.park(device.device_id, sig, device.last_participation_day + 1)
            else:
                pool.add(device.device_id, sig)
            return
        self._idle_devices.add(device.device_id)
        if not self._indexed:
            return
        sig = self._signature(device)
        if self.config.enforce_daily_limit and device.participated_today(self.now):
            self._idle_pool.park(
                device.device_id, sig, device.last_participation_day + 1
            )
        else:
            self._idle_pool.add(device.device_id, sig)

    def _note_not_idle(self, device_id: int) -> None:
        if self._sharded:
            self._shards[device_id % self._num_shards].pool.discard(device_id)
            return
        self._idle_devices.discard(device_id)
        if self._indexed:
            self._idle_pool.discard(device_id)

    def _refund_daily_budget(self, device: DeviceRuntime) -> None:
        """The device's round was discarded; it keeps its daily budget."""
        device.last_participation_day = None
        if self._sharded:
            pool = self._shards[device.device_id % self._num_shards].pool
            if device.is_idle:
                pool.unpark(device.device_id)
            else:
                pool.discard(device.device_id)
            return
        if not self._indexed:
            return
        if device.is_idle:
            self._idle_pool.unpark(device.device_id)
        else:
            self._idle_pool.discard(device.device_id)

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _on_job_arrival(self, event: Event) -> None:
        job = self.jobs[event.job_id]
        self.policy.on_job_arrival(job.spec, self.now)
        self._open_request(job)
        self._dispatch_idle_devices()

    def _on_device_checkin(self, event: Event) -> None:
        device = self.devices[event.device_id]
        session_end = event.session_end
        if device.status is DeviceStatus.BUSY:
            # The previous task overran into this session; treat the new
            # session as extending the device's online window.
            device.session_end = max(device.session_end, session_end)
            return
        device.check_in(self.now, session_end)
        self._note_idle(device)
        self._metrics.total_checkins += 1
        self.policy.on_device_checkin(device.profile, self.now)
        # Only consult the policy when some request actually has unmet
        # demand: with no pending demand every shipped policy provably
        # returns None (they filter on remaining_demand > 0 before drawing
        # any randomness), and a dirty scheduling plan is refreshed at the
        # next demand-creating trigger anyway — so skipping the call cannot
        # change a decision, it only avoids dead work during the long
        # collection phases of large rounds.
        if self._has_unsatisfied_request() and device.can_take_task(
            self.now, self.config.enforce_daily_limit
        ):
            self._try_assign(device)

    def _on_device_checkout(self, event: Event) -> None:
        device = self.devices[event.device_id]
        session_end = event.session_end
        if device.status is DeviceStatus.BUSY:
            return  # resolved when the task finishes
        if device.is_online and device.session_end <= session_end:
            device.check_out()
            self._note_not_idle(device.device_id)

    def _on_device_response(self, event: Event) -> None:
        device = self.devices[event.device_id]
        success: bool = event.success
        request = self._requests.get(event.request_id)
        if request is not None:
            request.in_flight -= 1
        device.finish_task(self.now, success)
        if device.is_idle:
            self._note_idle(device)
        else:
            self._note_not_idle(device.device_id)
        if success:
            self._metrics.total_responses += 1
        else:
            self._metrics.total_failures += 1

        if success and request is not None and request.is_open:
            request.record_response(device.device_id, self.now)
            self.policy.on_response(request, device.profile, self.now)
            self._maybe_complete_request(request)
        elif request is not None and not request.is_open:
            # The round was aborted (or cancelled) while this device was still
            # computing; its work is discarded, so it keeps its daily budget.
            self._refund_daily_budget(device)
            if request.in_flight == 0:
                self._evict_request(request)

        # A freed device may immediately serve another job (when the daily
        # limit permits and some request has unmet demand — see the
        # matching guard in ``_on_device_checkin``).
        if self._has_unsatisfied_request() and device.can_take_task(
            self.now, self.config.enforce_daily_limit
        ):
            self._try_assign(device)

    def _on_request_deadline(self, event: Event) -> None:
        request = self._requests.get(event.request_id)
        if request is None or not request.is_open:
            return
        job = self.jobs[request.job_id]
        job.abort_round(self.now)
        self._metrics.total_aborts += 1
        self._pending.remove(request.job_id)
        self.policy.on_request_closed(request, self.now)
        self._deadline_events.pop(request.request_id, None)
        # Participation in an aborted round does not count against the
        # one-job-per-day limit: the round's work was discarded and the device
        # is still charging/idle, so it may be re-matched.  Devices still
        # executing the aborted task are released when their response fires.
        if self._vectorized and self._vec is not None:
            for device_id in request.assigned:
                slot = self._vec.slot_of[device_id]
                if self._vec.status[slot] != STATUS_BUSY:
                    self._vec.last_day[slot] = -1
        else:
            for device_id in request.assigned:
                device = self.devices[device_id]
                if device.status is not DeviceStatus.BUSY:
                    self._refund_daily_budget(device)
        if request.in_flight == 0:
            # No straggler responses outstanding: nothing will ever look the
            # aborted request up again, so forget it now.
            self._evict_request(request)
        # Retry the round immediately with a fresh request.
        self._open_request(job)
        self._dispatch_idle_devices()

    # ------------------------------------------------------------------ #
    # Request lifecycle helpers
    # ------------------------------------------------------------------ #
    def _open_request(self, job: JobRuntime) -> ResourceRequest:
        self._request_counter += 1
        request = job.open_round_request(self._request_counter, self.now)
        self._requests[request.request_id] = request
        self._pending.add(job.job_id, job.spec.requirement.name)
        self.policy.on_request_open(request, self.now)
        deadline_event = self.queue.push(
            request.deadline, EventType.REQUEST_DEADLINE, request_id=request.request_id
        )
        self._deadline_events[request.request_id] = deadline_event
        return request

    def _maybe_complete_request(self, request: ResourceRequest) -> None:
        if request.remaining_demand > 0:
            return
        if len(request.responses) < request.min_reports:
            return
        job = self.jobs[request.job_id]
        deadline_event = self._deadline_events.pop(request.request_id, None)
        if deadline_event is not None:
            deadline_event.cancel()
        self._pending.remove(request.job_id)
        self.policy.on_request_closed(request, self.now)
        finished = job.complete_round(self.now)
        if request.in_flight == 0:
            # Demand met means every assigned device responded or straggles;
            # with no straggler in flight the request is unreachable.
            self._evict_request(request)
        if self._round_callback is not None:
            # The request knows which round it was opened for; index by that
            # rather than by complete_round's cursor arithmetic.
            record = job.rounds[request.round_index]
            self._round_callback(
                RoundCompletion(
                    job_id=job.job_id,
                    round_index=record.round_index,
                    completion_time=self.now,
                    participants=record.participants,
                    num_assigned=len(request.assigned),
                    aborted_attempts=record.aborted_attempts,
                    job_finished=finished,
                )
            )
        if finished:
            self._unfinished_jobs -= 1
            self.policy.on_job_finished(job.job_id, self.now)
        else:
            self._open_request(job)
            self._dispatch_idle_devices()

    def _evict_request(self, request: ResourceRequest) -> None:
        """Forget a closed request whose last in-flight response has fired.

        Closed requests used to accumulate in ``_requests`` (and in their
        job's ``request_history``) for the whole run — unbounded growth on
        multi-round workloads.  Once a request is closed *and* its
        ``in_flight`` counter hits zero, no future event can reference it:
        every response it scheduled has fired, its deadline event was popped
        or cancelled, and policies were already told it closed.  Called from
        the response handlers (straggler drained), the completion path and
        the deadline abort; the ``request is None`` branches in the response
        handlers are thereby unreachable for well-formed streams but kept as
        a safety net.
        """
        self._requests.pop(request.request_id, None)
        job = self.jobs.get(request.job_id)
        if job is not None:
            job.release_request(request)

    # ------------------------------------------------------------------ #
    # Assignment helpers
    # ------------------------------------------------------------------ #
    def _has_unsatisfied_request(self) -> bool:
        if self._indexed:
            return bool(self._pending)
        return any(
            r.is_open and r.remaining_demand > 0 for r in self._open_requests()
        )

    def _open_requests(self) -> Iterable[ResourceRequest]:
        for job in self.jobs.values():
            if job.open_request is not None and job.open_request.is_open:
                yield job.open_request

    def _try_assign(self, device: DeviceRuntime) -> None:
        request = self.policy.assign(device.profile, self.now)
        if request is None:
            return
        if not request.is_open or request.remaining_demand <= 0:
            return
        if request.is_assigned(device.device_id):
            # A device never participates twice in the same round request.
            return
        job = self.jobs.get(request.job_id)
        if job is None:
            raise ValueError(
                f"policy assigned device {device.device_id} to unknown job "
                f"{request.job_id}"
            )
        if not job.spec.requirement.is_eligible(device.profile):
            raise ValueError(
                f"policy assigned ineligible device {device.device_id} to job "
                f"{request.job_id} ({job.spec.requirement.name})"
            )
        request.record_assignment(device.device_id, self.now)
        if request.remaining_demand == 0:
            self._pending.remove(request.job_id)
        device.start_task(job.job_id, request.request_id, self.now)
        self._note_not_idle(device.device_id)

        duration, dropped = self.latency.sample_outcome(
            job.spec, device.profile, now=self.now
        )
        finishes_in_session = self.now + duration <= device.session_end
        success = (not dropped) and finishes_in_session
        if success:
            finish_time = self.now + duration
        else:
            # A dropout is detected either when the task would have finished
            # or when the device goes offline, whichever comes first.
            finish_time = min(self.now + duration, max(device.session_end, self.now))
        if self._sharded:
            # Coordinator→shard assignment message: the owning shard queues
            # the response.  The sequence number comes from the coordinator
            # counter, so the response sorts exactly where the single-queue
            # engine's push would have placed it.
            shard_index = device.device_id % self._num_shards
            self._shards[shard_index].schedule_response(
                finish_time,
                self.queue.next_seq(),
                device.device_id,
                request.request_id,
                job.job_id,
                success,
                plan_version=(
                    self.policy.plan_version
                    if self._policy_has_plan_version
                    else None
                ),
            )
            self._dirty_shards.add(shard_index)
        else:
            self.queue.push(
                finish_time,
                EventType.DEVICE_RESPONSE,
                device_id=device.device_id,
                request_id=request.request_id,
                job_id=job.job_id,
                success=success,
            )

    def _dispatch_idle_devices(self) -> None:
        """Offer idle online devices to the policy while demand remains.

        Devices are visited in ascending device-id order on both dispatch
        paths, so the indexed pool (which skips devices that cannot satisfy
        any pending requirement) produces exactly the same assignments as
        the legacy full scan.
        """
        if not self._has_unsatisfied_request():
            return
        if self._vectorized and self._vec is not None:
            self._dispatch_idle_devices_vec()
            return
        if self._sharded:
            cfg_daily = self.config.enforce_daily_limit
            devices = self.devices

            def visit(device_id: int) -> None:
                device = devices[device_id]
                if device.can_take_task(self.now, cfg_daily):
                    self._try_assign(device)

            # k-way merge across the shard-resident pools: globally
            # ascending device-id order, exactly like one union pool.
            dispatch_pools(
                [shard.pool for shard in self._shards],
                self._pending,
                self.now,
                visit,
            )
            return
        if self._indexed:
            cfg_daily = self.config.enforce_daily_limit

            def visit(device_id: int) -> None:
                device = self.devices[device_id]
                if device.can_take_task(self.now, cfg_daily):
                    self._try_assign(device)

            self._idle_pool.dispatch(self._pending, self.now, visit)
            return
        for device_id in sorted(self._idle_devices):
            device = self.devices[device_id]
            if not device.can_take_task(self.now, self.config.enforce_daily_limit):
                continue
            self._try_assign(device)
            if not self._has_unsatisfied_request():
                break


def run_simulation(
    devices: Sequence[DeviceProfile],
    availability: DeviceAvailabilityTrace,
    workload: Union[Workload, Sequence[JobSpec]],
    policy: SchedulingPolicy,
    config: Optional[SimulationConfig] = None,
    categories: Optional[Mapping[int, str]] = None,
    round_callback: Optional[Callable[[RoundCompletion], None]] = None,
) -> SimulationMetrics:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    sim = Simulator(
        devices, availability, workload, policy, config, categories,
        round_callback=round_callback,
    )
    return sim.run()


__all__ = [
    "SimulationConfig",
    "SimulationSnapshot",
    "Simulator",
    "run_simulation",
]
