"""The event-driven collaborative-learning simulator.

The engine replays a device availability trace and a CL workload against a
pluggable scheduling policy and measures, per job, the scheduling delay,
response collection time and end-to-end completion time — the quantities the
paper's evaluation is built on (§5.1 describes the authors' simulator doing
exactly this).

Round semantics follow the paper's synchronous-CL setup:

* a job opens one resource request per round asking for ``D_i`` devices;
* devices assigned to the request start computing immediately; the
  *scheduling delay* ends when the ``D_i``-th device is assigned;
* the round succeeds once at least ``min_report_fraction × D_i`` devices
  report back (80 % in the paper) **and** the full demand was assigned;
* if that has not happened by ``submit_time + round_deadline`` the round is
  aborted and retried — the fate of rounds under heavy contention;
* the job finishes after ``num_rounds`` successful rounds; its JCT is the
  time from arrival to the last round's completion.

Devices obey the availability trace (they can only be assigned while online,
and drop out when their session ends mid-task) and, by default, the paper's
one-job-per-day realism constraint.

Check-in fast path (million-device traces)
------------------------------------------

With ``SimulationConfig(indexed_dispatch=True)`` — the default — the engine
runs an indexed hot path sized for 10^5–10^6-device traces:

* same-timestamp device check-ins are popped from the event heap as one
  batch (:meth:`~repro.sim.events.EventQueue.pop_run`), so the per-event
  heap and handler-dispatch overhead is paid once per timestamp; each device
  is still registered and offered to the policy in exactly the original
  order, so decisions are unchanged;
* jobs with open, unsatisfied requests live in a
  :class:`~repro.sim.dispatch.PendingRequestPool` (O(1) membership +
  deadline heap) instead of being re-derived by scanning all jobs;
* idle devices live in a :class:`~repro.sim.dispatch.IdleDevicePool`
  bucketed by eligibility signature, so a request arrival only visits
  devices that could actually serve some pending requirement — and devices
  that spent their one-job-per-day budget are parked on a calendar heap
  until their blackout ends instead of being rescanned on every dispatch.

``indexed_dispatch=False`` restores the seed's full linear scans (the
``--legacy-scan`` mode of ``benchmarks/bench_scalability.py``).  Both paths
offer devices to the policy in ascending device-id order and produce
identical assignment sequences; the golden regression tests pin this.

Randomness is drawn from one injected :class:`numpy.random.Generator`
(seeded by ``SimulationConfig.seed``): the engine's latency model shares it,
and the policy adopts it via ``bind_rng`` unless it was explicitly seeded —
so one seed determines an entire run bit-for-bit.

Policies that maintain a scheduling plan (Venn) expose a
:class:`~repro.sim.profile.PlanMaintenanceProfile`; the engine snapshots it
into ``SimulationMetrics.plan_maintenance`` at the end of the run so
benchmarks and sweeps can report rebuilds avoided, index patch sizes and
the plan-maintenance time share without reaching into the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.policy import SchedulingPolicy
from ..core.requirements import signature_of
from ..core.types import DeviceProfile, JobSpec, ResourceRequest
from ..traces.device_trace import DeviceAvailabilityTrace
from ..traces.workloads import Workload
from .device import DeviceRuntime, DeviceStatus
from .dispatch import IdleDevicePool, PendingRequestPool
from .events import Event, EventQueue, EventType
from .job import JobRuntime
from .latency import LatencyConfig, ResponseLatencyModel
from .metrics import SimulationMetrics, collect_job_metrics


@dataclass
class SimulationConfig:
    """Engine-level configuration."""

    #: Simulation horizon in seconds.  Jobs unfinished at the horizon are
    #: censored (their JCT is at least ``horizon - arrival``).
    horizon: float = 4 * 24 * 3600.0
    #: Enforce the paper's one-CL-job-per-device-per-day constraint.
    enforce_daily_limit: bool = True
    #: Seed of the run's single random generator (latency model + any
    #: policy that was not explicitly seeded).
    seed: Optional[int] = None
    #: Safety valve against runaway event loops.
    max_events: int = 10_000_000
    #: Latency model parameters.
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    #: Use the indexed check-in fast path (batched check-ins, pending-request
    #: pool, signature-bucketed idle pool).  ``False`` restores the seed's
    #: linear scans; scheduling decisions are identical either way.
    indexed_dispatch: bool = True

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")


class Simulator:
    """Discrete-event CL simulator binding devices, jobs and a policy."""

    def __init__(
        self,
        devices: Sequence[DeviceProfile],
        availability: DeviceAvailabilityTrace,
        workload: Union[Workload, Sequence[JobSpec]],
        policy: SchedulingPolicy,
        config: Optional[SimulationConfig] = None,
        categories: Optional[Mapping[int, str]] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.policy = policy
        #: The run's single random generator; the latency model draws from it
        #: directly and unseeded policies adopt it via ``bind_rng``.
        self.rng = np.random.default_rng(self.config.seed)
        self.latency = ResponseLatencyModel(self.config.latency, rng=self.rng)
        self.policy.bind_rng(self.rng)

        if isinstance(workload, Workload):
            jobs = list(workload.jobs)
            categories = dict(workload.categories)
        else:
            jobs = list(workload)
        self._categories: Dict[int, str] = dict(categories or {})
        for job in jobs:
            self._categories.setdefault(job.job_id, job.requirement.name)

        self.devices: Dict[int, DeviceRuntime] = {
            d.device_id: DeviceRuntime(profile=d) for d in devices
        }
        missing = {
            s.device_id for s in availability.sessions
        } - set(self.devices)
        if missing:
            raise ValueError(
                f"availability trace references unknown devices: {sorted(missing)[:5]}"
            )
        self.availability = availability
        self.jobs: Dict[int, JobRuntime] = {j.job_id: JobRuntime(spec=j) for j in jobs}
        if len(self.jobs) != len(jobs):
            raise ValueError("job ids must be unique")
        # Maintained count of jobs still running, so the main loop's
        # everything-done check is O(1) per event instead of a scan over
        # all jobs (jobs only finish inside _maybe_complete_request).
        self._unfinished_jobs = sum(
            1 for j in self.jobs.values() if not j.is_finished
        )

        self.queue = EventQueue()
        self.now = 0.0
        self._request_counter = 0
        self._requests: Dict[int, ResourceRequest] = {}
        self._deadline_events: Dict[int, Event] = {}
        self._idle_devices: set = set()
        self._indexed = bool(self.config.indexed_dispatch)
        self._pending = PendingRequestPool()
        self._idle_pool = IdleDevicePool()
        # The engine's own signature space: the workload's full requirement
        # set is known up front, so each device's eligibility signature is
        # computed once (lazily, at first check-in) and cached forever.
        # Deduplicated by requirement *object* (not name): if two jobs'
        # requirements shared a name but differed in predicate, both
        # predicates must contribute to the signature so the dispatch
        # bucket filter never under-visits.
        self._requirements = list(dict.fromkeys(job.requirement for job in jobs))
        self._device_signatures: Dict[int, frozenset] = {}
        self._metrics = SimulationMetrics(
            policy=getattr(policy, "name", type(policy).__name__),
            horizon=self.config.horizon,
        )
        self._events_processed = 0

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _schedule_initial_events(self) -> None:
        for job in self.jobs.values():
            if job.spec.arrival_time <= self.config.horizon:
                self.queue.push(
                    job.spec.arrival_time, EventType.JOB_ARRIVAL, job_id=job.job_id
                )
        for start, device_id, end in self.availability.checkin_events():
            if start >= self.config.horizon:
                continue
            self.queue.push(
                start, EventType.DEVICE_CHECKIN, device_id=device_id, session_end=end
            )
            self.queue.push(
                min(end, self.config.horizon),
                EventType.DEVICE_CHECKOUT,
                device_id=device_id,
                session_end=end,
            )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationMetrics:
        """Run the simulation to the horizon and return aggregate metrics."""
        self._schedule_initial_events()
        handlers = {
            EventType.JOB_ARRIVAL: self._on_job_arrival,
            EventType.DEVICE_CHECKIN: self._on_device_checkin,
            EventType.DEVICE_CHECKOUT: self._on_device_checkout,
            EventType.DEVICE_RESPONSE: self._on_device_response,
            EventType.REQUEST_DEADLINE: self._on_request_deadline,
        }
        batch_checkins = self._indexed
        while self.queue:
            event = self.queue.pop()
            if event is None:
                break
            if event.time > self.config.horizon:
                break
            self.now = event.time
            if batch_checkins and event.type is EventType.DEVICE_CHECKIN:
                # Batch the contiguous run of same-timestamp check-ins: one
                # heap drain, one handler loop.  Each device is still
                # registered and offered in the original order.
                self._on_device_checkin(event)
                self._events_processed += 1
                for peer in self.queue.pop_run(event.time, EventType.DEVICE_CHECKIN):
                    self._on_device_checkin(peer)
                    self._events_processed += 1
            else:
                handlers[event.type](event)
                self._events_processed += 1
            if self._events_processed >= self.config.max_events:
                raise RuntimeError(
                    "simulation exceeded max_events; check for livelock or "
                    "raise SimulationConfig.max_events"
                )
            if self._unfinished_jobs == 0:
                break
        self._finalise()
        return self._metrics

    @property
    def events_processed(self) -> int:
        """Number of events handled so far (exposed for benchmarks)."""
        return self._events_processed

    def _finalise(self) -> None:
        horizon = self.config.horizon
        for job in self.jobs.values():
            if not job.is_finished:
                job.cancel(min(self.now, horizon))
            self._metrics.jobs[job.job_id] = collect_job_metrics(
                job, category=self._categories.get(job.job_id, "general")
            )
        # Snapshot the policy's plan-maintenance counters (Venn exposes a
        # profile; baselines do not maintain a plan).
        profile = getattr(self.policy, "plan_profile", None)
        if profile is not None:
            self._metrics.plan_maintenance = profile.as_dict()

    # ------------------------------------------------------------------ #
    # Idle-device bookkeeping
    # ------------------------------------------------------------------ #
    def _signature(self, device: DeviceRuntime) -> frozenset:
        sig = self._device_signatures.get(device.device_id)
        if sig is None:
            sig = signature_of(device.profile, self._requirements)
            self._device_signatures[device.device_id] = sig
        return sig

    def _note_idle(self, device: DeviceRuntime) -> None:
        """Device became idle: track it, parking daily-spent devices."""
        self._idle_devices.add(device.device_id)
        if not self._indexed:
            return
        sig = self._signature(device)
        if self.config.enforce_daily_limit and device.participated_today(self.now):
            self._idle_pool.park(
                device.device_id, sig, device.last_participation_day + 1
            )
        else:
            self._idle_pool.add(device.device_id, sig)

    def _note_not_idle(self, device_id: int) -> None:
        self._idle_devices.discard(device_id)
        if self._indexed:
            self._idle_pool.discard(device_id)

    def _refund_daily_budget(self, device: DeviceRuntime) -> None:
        """The device's round was discarded; it keeps its daily budget."""
        device.last_participation_day = None
        if not self._indexed:
            return
        if device.is_idle:
            self._idle_pool.unpark(device.device_id)
        else:
            self._idle_pool.discard(device.device_id)

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _on_job_arrival(self, event: Event) -> None:
        job = self.jobs[event.job_id]
        self.policy.on_job_arrival(job.spec, self.now)
        self._open_request(job)
        self._dispatch_idle_devices()

    def _on_device_checkin(self, event: Event) -> None:
        device = self.devices[event.device_id]
        session_end = event.session_end
        if device.status is DeviceStatus.BUSY:
            # The previous task overran into this session; treat the new
            # session as extending the device's online window.
            device.session_end = max(device.session_end, session_end)
            return
        device.check_in(self.now, session_end)
        self._note_idle(device)
        self._metrics.total_checkins += 1
        self.policy.on_device_checkin(device.profile, self.now)
        if device.can_take_task(self.now, self.config.enforce_daily_limit):
            self._try_assign(device)

    def _on_device_checkout(self, event: Event) -> None:
        device = self.devices[event.device_id]
        session_end = event.session_end
        if device.status is DeviceStatus.BUSY:
            return  # resolved when the task finishes
        if device.is_online and device.session_end <= session_end:
            device.check_out()
            self._note_not_idle(device.device_id)

    def _on_device_response(self, event: Event) -> None:
        device = self.devices[event.device_id]
        success: bool = event.success
        request = self._requests.get(event.request_id)
        device.finish_task(self.now, success)
        if device.is_idle:
            self._note_idle(device)
        else:
            self._note_not_idle(device.device_id)
        if success:
            self._metrics.total_responses += 1
        else:
            self._metrics.total_failures += 1

        if success and request is not None and request.is_open:
            request.record_response(device.device_id, self.now)
            self.policy.on_response(request, device.profile, self.now)
            self._maybe_complete_request(request)
        elif request is not None and not request.is_open:
            # The round was aborted (or cancelled) while this device was still
            # computing; its work is discarded, so it keeps its daily budget.
            self._refund_daily_budget(device)

        # A freed device may immediately serve another job (when the daily
        # limit permits).
        if device.can_take_task(self.now, self.config.enforce_daily_limit):
            self._try_assign(device)

    def _on_request_deadline(self, event: Event) -> None:
        request = self._requests.get(event.request_id)
        if request is None or not request.is_open:
            return
        job = self.jobs[request.job_id]
        job.abort_round(self.now)
        self._metrics.total_aborts += 1
        self._pending.remove(request.job_id)
        self.policy.on_request_closed(request, self.now)
        self._deadline_events.pop(request.request_id, None)
        # Participation in an aborted round does not count against the
        # one-job-per-day limit: the round's work was discarded and the device
        # is still charging/idle, so it may be re-matched.  Devices still
        # executing the aborted task are released when their response fires.
        for device_id in request.assigned:
            device = self.devices[device_id]
            if device.status is not DeviceStatus.BUSY:
                self._refund_daily_budget(device)
        # Retry the round immediately with a fresh request.
        self._open_request(job)
        self._dispatch_idle_devices()

    # ------------------------------------------------------------------ #
    # Request lifecycle helpers
    # ------------------------------------------------------------------ #
    def _open_request(self, job: JobRuntime) -> ResourceRequest:
        self._request_counter += 1
        request = job.open_round_request(self._request_counter, self.now)
        self._requests[request.request_id] = request
        self._pending.add(job.job_id, job.spec.requirement.name)
        self.policy.on_request_open(request, self.now)
        deadline_event = self.queue.push(
            request.deadline, EventType.REQUEST_DEADLINE, request_id=request.request_id
        )
        self._deadline_events[request.request_id] = deadline_event
        return request

    def _maybe_complete_request(self, request: ResourceRequest) -> None:
        if request.remaining_demand > 0:
            return
        if len(request.responses) < request.min_reports:
            return
        job = self.jobs[request.job_id]
        deadline_event = self._deadline_events.pop(request.request_id, None)
        if deadline_event is not None:
            deadline_event.cancel()
        self._pending.remove(request.job_id)
        self.policy.on_request_closed(request, self.now)
        finished = job.complete_round(self.now)
        if finished:
            self._unfinished_jobs -= 1
            self.policy.on_job_finished(job.job_id, self.now)
        else:
            self._open_request(job)
            self._dispatch_idle_devices()

    # ------------------------------------------------------------------ #
    # Assignment helpers
    # ------------------------------------------------------------------ #
    def _has_unsatisfied_request(self) -> bool:
        if self._indexed:
            return bool(self._pending)
        return any(
            r.is_open and r.remaining_demand > 0 for r in self._open_requests()
        )

    def _open_requests(self) -> Iterable[ResourceRequest]:
        for job in self.jobs.values():
            if job.open_request is not None and job.open_request.is_open:
                yield job.open_request

    def _try_assign(self, device: DeviceRuntime) -> None:
        request = self.policy.assign(device.profile, self.now)
        if request is None:
            return
        if not request.is_open or request.remaining_demand <= 0:
            return
        if request.is_assigned(device.device_id):
            # A device never participates twice in the same round request.
            return
        job = self.jobs.get(request.job_id)
        if job is None:
            raise ValueError(
                f"policy assigned device {device.device_id} to unknown job "
                f"{request.job_id}"
            )
        if not job.spec.requirement.is_eligible(device.profile):
            raise ValueError(
                f"policy assigned ineligible device {device.device_id} to job "
                f"{request.job_id} ({job.spec.requirement.name})"
            )
        request.record_assignment(device.device_id, self.now)
        if request.remaining_demand == 0:
            self._pending.remove(request.job_id)
        device.start_task(job.job_id, request.request_id, self.now)
        self._note_not_idle(device.device_id)

        duration = self.latency.sample_duration(job.spec, device.profile)
        dropped = self.latency.sample_failure(device.profile)
        finishes_in_session = self.now + duration <= device.session_end
        success = (not dropped) and finishes_in_session
        if success:
            finish_time = self.now + duration
        else:
            # A dropout is detected either when the task would have finished
            # or when the device goes offline, whichever comes first.
            finish_time = min(self.now + duration, max(device.session_end, self.now))
        self.queue.push(
            finish_time,
            EventType.DEVICE_RESPONSE,
            device_id=device.device_id,
            request_id=request.request_id,
            job_id=job.job_id,
            success=success,
        )

    def _dispatch_idle_devices(self) -> None:
        """Offer idle online devices to the policy while demand remains.

        Devices are visited in ascending device-id order on both dispatch
        paths, so the indexed pool (which skips devices that cannot satisfy
        any pending requirement) produces exactly the same assignments as
        the legacy full scan.
        """
        if not self._has_unsatisfied_request():
            return
        if self._indexed:
            cfg_daily = self.config.enforce_daily_limit

            def visit(device_id: int) -> None:
                device = self.devices[device_id]
                if device.can_take_task(self.now, cfg_daily):
                    self._try_assign(device)

            self._idle_pool.dispatch(self._pending, self.now, visit)
            return
        for device_id in sorted(self._idle_devices):
            device = self.devices[device_id]
            if not device.can_take_task(self.now, self.config.enforce_daily_limit):
                continue
            self._try_assign(device)
            if not self._has_unsatisfied_request():
                break


def run_simulation(
    devices: Sequence[DeviceProfile],
    availability: DeviceAvailabilityTrace,
    workload: Union[Workload, Sequence[JobSpec]],
    policy: SchedulingPolicy,
    config: Optional[SimulationConfig] = None,
    categories: Optional[Mapping[int, str]] = None,
) -> SimulationMetrics:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    sim = Simulator(devices, availability, workload, policy, config, categories)
    return sim.run()


__all__ = ["SimulationConfig", "Simulator", "run_simulation"]
