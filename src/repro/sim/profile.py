"""Simulation-facing surface of the plan-maintenance instrumentation.

The actual dataclass lives in :mod:`repro.core.profile` — its producers
are the scheduler and the incremental delta layer, and ``repro.sim``
already depends on ``repro.core``, so defining it core-side keeps the
package layering acyclic.  This module re-exports it for consumers that
reach for it from the simulation side (the engine snapshots a profile
into ``SimulationMetrics.plan_maintenance``; benchmarks read it from
there).
"""

from __future__ import annotations

from ..core.profile import PlanMaintenanceProfile

__all__ = ["PlanMaintenanceProfile"]
