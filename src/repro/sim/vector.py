"""Struct-of-arrays device state for the vectorized engine hot path.

With ``SimulationConfig(vectorized_dispatch=True)`` the coordinator/shard
engine stops mutating per-device :class:`~repro.sim.device.DeviceRuntime`
objects on the hot path and instead keeps the whole fleet's dynamic state in
parallel numpy arrays indexed by *slot* (the device's rank in ascending
device-id order):

* ``status`` — 0 offline / 1 idle / 2 busy (``int8``),
* ``sess`` — end of the current availability session,
* ``last_day`` — calendar day of the last participation (``-1`` = never),
* ``tasks_completed`` / ``tasks_failed`` — per-device outcome counters
  (plain lists: they are only ever touched one slot at a time),
* ``sig_id`` — index into the interned eligibility-signature table.

Runs of static check-in/checkout events that cannot trigger an assignment
(no pending demand, or the gaps between assignment candidates) are *folded*
into the arrays by :meth:`VectorDeviceState.fold_slice` — one batched kernel
instead of a per-event Python loop.  Idle-device dispatch becomes a boolean
mask over the arrays instead of a heap-of-buckets walk.  The scalar
per-event path stays the decision-hash oracle: every kernel here is written
to be *bit-identical* to replaying the same events one at a time (see the
method docstrings for the per-kernel arguments, and
``docs/PERFORMANCE.md`` for the end-to-end contract).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..core.types import DeviceProfile
from .device import SECONDS_PER_DAY

#: Integer encodings of :class:`~repro.sim.device.DeviceStatus` in ``status``.
STATUS_OFFLINE = 0
STATUS_IDLE = 1
STATUS_BUSY = 2


class VectorDeviceState:
    """Fleet-wide device runtime state as parallel numpy arrays.

    Slots are assigned in ascending device-id order, so ``np.nonzero`` over
    a slot mask enumerates devices in exactly the ascending-id order the
    scalar dispatch paths use.
    """

    def __init__(
        self,
        profiles: Sequence[DeviceProfile],
        signatures: Dict[int, FrozenSet[str]],
    ) -> None:
        ordered = sorted(profiles, key=lambda p: p.device_id)
        n = len(ordered)
        self.profiles: List[DeviceProfile] = ordered
        self.ids = np.array([p.device_id for p in ordered], dtype=np.int64)
        self.slot_of: Dict[int, int] = {
            int(d): i for i, d in enumerate(self.ids)
        }
        self.status = np.zeros(n, dtype=np.int8)
        self.sess = np.zeros(n, dtype=np.float64)
        self.last_day = np.full(n, -1, dtype=np.int64)
        # Plain lists, not arrays: these counters are only ever touched one
        # slot at a time (response handling) and read back at finalisation,
        # where list indexing is several times cheaper.
        self.tasks_completed = [0] * n
        self.tasks_failed = [0] * n
        # Signature interning BY VALUE, not object identity: the fallback
        # path of ``shard.compute_signatures`` can produce distinct-but-equal
        # frozensets for different devices.
        table: List[FrozenSet[str]] = []
        index: Dict[FrozenSet[str], int] = {}
        sig_id = np.empty(n, dtype=np.int32)
        for i, profile in enumerate(ordered):
            sig = signatures[profile.device_id]
            j = index.get(sig)
            if j is None:
                j = index[sig] = len(table)
                table.append(sig)
            sig_id[i] = j
        self.sig_table = table
        self.sig_id = sig_id
        # Fold scratch, reset to the init values after every fold via the
        # touched slots (persistent arrays: many small folds must not pay an
        # O(num_devices) allocation each).
        self._scr_pos = np.full(n, -1, dtype=np.int64)
        self._scr_send = np.full(n, -np.inf, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def slots_for(self, device_ids: Sequence[int]) -> np.ndarray:
        """Vectorized device-id -> slot translation (ids must be known)."""
        return np.searchsorted(self.ids, np.asarray(device_ids, dtype=np.int64))

    def sig_eligibility(self, pending_names: set) -> np.ndarray:
        """``bool[sig_id]``: does the signature intersect a pending name?

        The vectorized twin of the idle pool's bucket filter: dispatch only
        visits devices whose signature could serve some pending requirement.
        """
        return np.fromiter(
            (bool(sig & pending_names) for sig in self.sig_table),
            dtype=bool,
            count=len(self.sig_table),
        )

    def day_of(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :func:`~repro.sim.device.day_index` (same fmod-based
        floor division, so boundary timestamps agree bit-for-bit)."""
        return np.floor_divide(times, SECONDS_PER_DAY).astype(np.int64)

    # ------------------------------------------------------------------ #
    # The fold kernel
    # ------------------------------------------------------------------ #
    def fold_slice(
        self,
        times: np.ndarray,
        slots: np.ndarray,
        sends: np.ndarray,
        is_checkin: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold a run of assignment-free static events into the arrays.

        The caller guarantees no event in the run can trigger an assignment
        (no pending demand, or the run lies between assignment candidates),
        so the busy set is constant across the run and each device's final
        state depends only on its own event subsequence:

        * busy devices: check-ins extend the session window to the max
          session end seen (checkouts are no-ops) — ``np.maximum.at``;
        * devices with a check-in: after their *last* check-in they are idle
          with that check-in's session end, and go offline iff some later
          checkout in the run carries ``session_end >= `` that value;
        * checkout-only devices: an idle device goes offline iff some
          checkout in the run carries ``session_end >=`` its current session
          end (offline devices ignore checkouts).

        Each bullet replays the scalar transition functions exactly, so the
        final arrays are bit-identical to the per-event loop.  Returns
        ``(ci_slots, ci_times)`` — the non-busy check-ins in event order —
        for the caller's metrics counter and policy batch hook.
        """
        status = self.status
        sess = self.sess
        busy_ev = status[slots] == STATUS_BUSY
        busy_ci = is_checkin & busy_ev
        if busy_ci.any():
            np.maximum.at(sess, slots[busy_ci], sends[busy_ci])
        nb_ci = is_checkin & ~busy_ev
        nb_co = ~is_checkin & ~busy_ev
        ci_slots = slots[nb_ci]
        co_slots = slots[nb_co]
        scr_pos = self._scr_pos
        scr_send = self._scr_send
        if ci_slots.size:
            np.maximum.at(scr_pos, ci_slots, np.nonzero(nb_ci)[0])
        if co_slots.size:
            co_pos = np.nonzero(nb_co)[0]
            # Only checkouts after the device's last check-in of the run can
            # end the (new) session; for checkout-only devices scr_pos is -1
            # and every checkout counts.
            after = co_pos > scr_pos[co_slots]
            if after.any():
                np.maximum.at(
                    scr_send, co_slots[after], sends[co_pos[after]]
                )
        if ci_slots.size:
            uci = np.unique(ci_slots)
            new_sess = sends[scr_pos[uci]]
            sess[uci] = new_sess
            status[uci] = np.where(
                scr_send[uci] >= new_sess, STATUS_OFFLINE, STATUS_IDLE
            ).astype(np.int8)
        if co_slots.size:
            only = scr_pos[co_slots] < 0
            if only.any():
                uco = np.unique(co_slots[only])
                off = (status[uco] == STATUS_IDLE) & (
                    scr_send[uco] >= sess[uco]
                )
                if off.any():
                    status[uco[off]] = STATUS_OFFLINE
        # Reset the scratch entries this fold touched.
        if ci_slots.size:
            scr_pos[ci_slots] = -1
        if co_slots.size:
            scr_send[co_slots] = -np.inf
        return ci_slots, times[nb_ci]


__all__ = [
    "STATUS_BUSY",
    "STATUS_IDLE",
    "STATUS_OFFLINE",
    "VectorDeviceState",
]
