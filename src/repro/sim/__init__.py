"""Event-driven collaborative-learning simulator substrate."""

from .device import DeviceRuntime, DeviceStatus, SECONDS_PER_DAY
from .dispatch import IdleDevicePool, PendingRequestPool, dispatch_pools
from .engine import SimulationConfig, Simulator, run_simulation
from .events import Event, EventQueue, EventType
from .job import JobRuntime, RoundRecord
from .latency import LatencyConfig, ResponseLatencyModel
from .profile import PlanMaintenanceProfile
from .shard import DeviceShard, build_shards, compute_signatures
from .metrics import (
    JobMetrics,
    SimulationMetrics,
    collect_job_metrics,
    per_job_speedups,
    speedup_over,
)

__all__ = [
    "DeviceRuntime",
    "DeviceShard",
    "DeviceStatus",
    "Event",
    "EventQueue",
    "EventType",
    "IdleDevicePool",
    "JobMetrics",
    "JobRuntime",
    "LatencyConfig",
    "PendingRequestPool",
    "PlanMaintenanceProfile",
    "ResponseLatencyModel",
    "RoundRecord",
    "SECONDS_PER_DAY",
    "SimulationConfig",
    "SimulationMetrics",
    "Simulator",
    "build_shards",
    "collect_job_metrics",
    "compute_signatures",
    "dispatch_pools",
    "per_job_speedups",
    "run_simulation",
    "speedup_over",
]
