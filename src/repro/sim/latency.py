"""On-device execution latency and failure model.

The paper (§4.3) notes that device response times follow a log-normal
distribution and uses the 95th percentile as the tail statistic.  This module
provides that model: a device's response time is

``base_task_duration × speed_factor × LogNormal(0, sigma) + communication``

where ``speed_factor`` comes from the capacity trace (slower hardware → larger
factor) and the communication term models upload/download of model weights.
Failures combine the device's intrinsic reliability with going offline before
the task finishes (the engine checks the latter against the session end).

Per-device randomness
---------------------

The model supports two seeding regimes:

* a single **shared** generator (``rng=...`` / ``seed=...``), the historical
  behaviour, where the k-th draw of a run depends on every draw before it;
* **per-device streams** (``per_device_entropy=...``), where draw ``j`` of
  device ``d`` is a pure function of ``(master entropy, d, j)``.

Per-device streams make a device's latency/failure draws a function of the
device and its own assignment history only — the draw *order across devices*
no longer matters.  That property is what lets the sharded simulation engine
(:mod:`repro.sim.shard`) hand device physics to shards while staying
bit-identical to the single-queue engine for any shard count, and it is the
engine's default since the coordinator/shard refactor.

Per-device streams are generated *counter-based* (a SplitMix64 keyed by
``(master, device_id, draw index)``, normals via Box–Muller) rather than by
spawning one ``numpy`` generator per device: constructing a
``Generator(PCG64(SeedSequence(entropy, spawn_key=(device_id,))))`` costs
~15 µs, and under the one-job-per-day constraint nearly every assignment
lands on a *distinct* device, so per-device generator objects would add
~10 s to a million-device day — per-draw key hashing costs ~2 µs with no
per-device state beyond a draw counter.  The master entropy is still
derived through :class:`numpy.random.SeedSequence`, so a config seed keys
the whole family the same way the rest of the repo derives streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from ..core.types import DeviceProfile, JobSpec

_MASK64 = (1 << 64) - 1
#: Odd constants of the SplitMix64 finalizer (Steele et al.) and two
#: independent stream-separation multipliers.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB
_DEVICE_STRIDE = 0xD1342543DE82EF95
_TWO_PI = 2.0 * math.pi
#: 2^64 as a float, for mapping hashes into (0, 1).
_INV_2_64 = 1.0 / float(1 << 64)


def _mix64(z: int) -> int:
    """SplitMix64 finalizer: avalanching 64-bit int -> 64-bit int."""
    z = ((z ^ (z >> 30)) * _SM_MUL1) & _MASK64
    z = ((z ^ (z >> 27)) * _SM_MUL2) & _MASK64
    return z ^ (z >> 31)


@dataclass
class LatencyConfig:
    """Parameters of the response-latency model."""

    #: Log-normal sigma of the multiplicative compute-time noise.
    compute_sigma: float = 0.35
    #: Bounds of the uniform communication overhead (seconds).
    comm_min: float = 5.0
    comm_max: float = 20.0
    #: Global multiplier applied to every job's base task duration (lets
    #: experiments speed up or slow down the whole fleet consistently).
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_sigma < 0:
            raise ValueError("compute_sigma must be non-negative")
        if self.comm_min < 0 or self.comm_max < self.comm_min:
            raise ValueError("need 0 <= comm_min <= comm_max")
        if self.duration_scale <= 0:
            raise ValueError("duration_scale must be positive")


class ResponseLatencyModel:
    """Samples per-assignment response times and failure outcomes."""

    def __init__(
        self,
        config: Optional[LatencyConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        per_device_entropy: Optional[Union[int, tuple]] = None,
    ) -> None:
        """``per_device_entropy`` switches the model to per-device streams
        keyed by global device id (see the module docstring); otherwise
        ``rng`` (an injected generator, e.g. the engine's single run
        generator) takes precedence over ``seed``."""
        self.config = config or LatencyConfig()
        self._per_device = per_device_entropy is not None
        if self._per_device:
            # Normalise whatever the caller passed (int seed, tuple, None)
            # through a SeedSequence, then collapse to the 64-bit master key
            # of the counter-based per-device streams.
            self._entropy = np.random.SeedSequence(per_device_entropy).entropy
            self._master = int(
                np.random.SeedSequence(self._entropy).generate_state(
                    1, np.uint64
                )[0]
            )
            #: device_id -> number of uniforms consumed so far.
            self._draw_counts: Dict[int, int] = {}
            self._rng = None
        else:
            self._rng = rng if rng is not None else np.random.default_rng(seed)

    @property
    def per_device(self) -> bool:
        """Whether draws come from per-device streams (shard-order free)."""
        return self._per_device

    def _uniform(self, device_id: int, index: int) -> float:
        """Uniform (0, 1) draw ``index`` of ``device_id``'s stream."""
        h = _mix64(
            (
                self._master
                + device_id * _DEVICE_STRIDE
                + index * _SM_GAMMA
            )
            & _MASK64
        )
        # (h + 1) / 2^64 lies in (0, 1]; flipping to 1 - u gives [0, 1) —
        # either way the endpoints 0.0/1.0-excluded where log() needs it.
        return (h + 1) * _INV_2_64

    def sample_duration(self, job: JobSpec, device: DeviceProfile) -> float:
        """Response time (seconds) for ``device`` executing one round of ``job``."""
        cfg = self.config
        if self._per_device:
            device_id = device.device_id
            k = self._draw_counts.get(device_id, 0)
            self._draw_counts[device_id] = k + 3
            u1 = self._uniform(device_id, k)
            u2 = self._uniform(device_id, k + 1)
            u3 = self._uniform(device_id, k + 2)
            # Box–Muller: exact standard normal from two uniforms.
            z = math.sqrt(-2.0 * math.log(u1)) * math.cos(_TWO_PI * u2)
            compute = (
                job.base_task_duration
                * cfg.duration_scale
                * device.speed_factor
                * math.exp(cfg.compute_sigma * z)
            )
            comm = cfg.comm_min + (cfg.comm_max - cfg.comm_min) * u3
            return compute + comm
        rng = self._rng
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(rng.normal(0.0, cfg.compute_sigma)))
        )
        comm = float(rng.uniform(cfg.comm_min, cfg.comm_max))
        return compute + comm

    def sample_failure(self, device: DeviceProfile) -> bool:
        """Whether the device drops out instead of reporting back."""
        if self._per_device:
            device_id = device.device_id
            k = self._draw_counts.get(device_id, 0)
            self._draw_counts[device_id] = k + 1
            return self._uniform(device_id, k) > device.reliability
        return bool(self._rng.random() > device.reliability)

    def expected_duration(self, job: JobSpec, device: DeviceProfile) -> float:
        """Mean response time (no sampling); useful for estimators and tests."""
        cfg = self.config
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(cfg.compute_sigma**2 / 2.0))
        )
        comm = (cfg.comm_min + cfg.comm_max) / 2.0
        return compute + comm

    def tail_duration(
        self, job: JobSpec, device: DeviceProfile, percentile: float = 95.0
    ) -> float:
        """Approximate response-time percentile for one device."""
        from scipy import stats

        cfg = self.config
        z = stats.norm.ppf(percentile / 100.0)
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(cfg.compute_sigma * z))
        )
        comm = cfg.comm_min + (percentile / 100.0) * (cfg.comm_max - cfg.comm_min)
        return compute + comm


__all__ = ["LatencyConfig", "ResponseLatencyModel"]
