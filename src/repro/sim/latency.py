"""On-device execution latency and failure model.

The paper (§4.3) notes that device response times follow a log-normal
distribution and uses the 95th percentile as the tail statistic.  This module
provides that model: a device's response time is

``base_task_duration × speed_factor × LogNormal(0, sigma) + communication``

where ``speed_factor`` comes from the capacity trace (slower hardware → larger
factor) and the communication term models upload/download of model weights.
Failures combine the device's intrinsic reliability with going offline before
the task finishes (the engine checks the latter against the session end).

Per-device randomness
---------------------

The model supports two seeding regimes:

* a single **shared** generator (``rng=...`` / ``seed=...``), the historical
  behaviour, where the k-th draw of a run depends on every draw before it;
* **per-device streams** (``per_device_entropy=...``), where draw ``j`` of
  device ``d`` is a pure function of ``(master entropy, d, j)``.

Per-device streams make a device's latency/failure draws a function of the
device and its own assignment history only — the draw *order across devices*
no longer matters.  That property is what lets the sharded simulation engine
(:mod:`repro.sim.shard`) hand device physics to shards while staying
bit-identical to the single-queue engine for any shard count, and it is the
engine's default since the coordinator/shard refactor.

Per-device streams are generated *counter-based* (a SplitMix64 keyed by
``(master, device_id, draw index)``, normals via Box–Muller) rather than by
spawning one ``numpy`` generator per device: constructing a
``Generator(PCG64(SeedSequence(entropy, spawn_key=(device_id,))))`` costs
~15 µs, and under the one-job-per-day constraint nearly every assignment
lands on a *distinct* device, so per-device generator objects would add
~10 s to a million-device day — per-draw key hashing costs ~2 µs with no
per-device state beyond a draw counter.  The master entropy is still
derived through :class:`numpy.random.SeedSequence`, so a config seed keys
the whole family the same way the rest of the repo derives streams.

Network-degradation layer
-------------------------

On top of the compute/comm model, :class:`LatencyConfig` carries a
*network-condition* layer (all off by default):

* **lossy uplink** (``loss_rate``, ``max_retries``, ``retry_backoff``):
  each report upload is a sequence of transfer attempts; an attempt is lost
  with the effective loss probability, every lost attempt inflates the
  communication time by ``retry_backoff ×`` the link's transfer time, and a
  report whose ``1 + max_retries`` attempts are all lost never arrives — a
  *failure on loss*, folded into the dropout outcome;
* **link flaps** (``flap_period``, ``flap_duration``, ``flap_loss_rate``):
  periodic windows during which the loss rate is elevated by
  ``flap_loss_rate`` — window membership is evaluated at assignment time;
* **link-speed tiers** (``link_tiers``): the population is partitioned into
  per-link-speed tiers (fiber/broadband/cellular-style), each scaling the
  device's uniform ``comm_min``/``comm_max`` draw.  A device's tier is a
  pure function of ``(master entropy, device_id)`` — a dedicated salted
  hash, **not** a draw from the device's stream — so tier membership is
  static and consumes no draw-counter state.

Every stochastic network draw goes through the same per-(device, draw)
counter streams as the compute/comm draws, and the knobs gate the extra
draws: with the layer off, a run consumes *exactly* the historical draw
sequence, so golden fixtures and shard/worker bit-identity are preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.types import DeviceProfile, JobSpec

_MASK64 = (1 << 64) - 1
#: Odd constants of the SplitMix64 finalizer (Steele et al.) and two
#: independent stream-separation multipliers.
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_MUL1 = 0xBF58476D1CE4E5B9
_SM_MUL2 = 0x94D049BB133111EB
_DEVICE_STRIDE = 0xD1342543DE82EF95
#: Salt separating the static per-device *tier* hash from the per-draw
#: streams (tier membership consumes no draw-counter state).
_TIER_SALT = 0xA24BAED4963EE407
_TWO_PI = 2.0 * math.pi
#: 2^64 as a float, for mapping hashes into (0, 1).
_INV_2_64 = 1.0 / float(1 << 64)
#: Largest float64 strictly below 1.0 — the open-interval ceiling of
#: :meth:`ResponseLatencyModel._uniform`.
_BELOW_ONE = math.nextafter(1.0, 0.0)


def _mix64(z: int) -> int:
    """SplitMix64 finalizer: avalanching 64-bit int -> 64-bit int."""
    z = ((z ^ (z >> 30)) * _SM_MUL1) & _MASK64
    z = ((z ^ (z >> 27)) * _SM_MUL2) & _MASK64
    return z ^ (z >> 31)


def _mix64_array(z: "np.ndarray") -> "np.ndarray":
    """SplitMix64 finalizer over a ``uint64`` array (wrapping arithmetic).

    numpy's fixed-width uint64 ops wrap modulo 2^64, which is exactly the
    ``& _MASK64`` of the scalar :func:`_mix64` — the two are bit-identical
    hash for hash.
    """
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_SM_MUL1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_SM_MUL2)
    return z ^ (z >> np.uint64(31))


def _uniform_array(h: "np.ndarray") -> "np.ndarray":
    """Map hash values to (0, 1) floats, bit-identical to ``_uniform``.

    The scalar path computes ``(h + 1) / 2^64`` with arbitrary-precision
    ints — ``h + 1`` can reach 2^64 exactly — then clamps results that
    round to 1.0 down to the largest float below 1.0.  In uint64, ``h + 1``
    wraps to 0 instead; both the wrap and the round-to-1.0 cases land in
    the same clamp, so the results match for every hash value.  (Casting to
    float *before* adding 1.0 would not: for ``h >= 2^53`` the two
    roundings can differ by one ULP.)
    """
    hp1 = h + np.uint64(1)
    f = hp1.astype(np.float64) * _INV_2_64
    return np.where((hp1 == np.uint64(0)) | (f >= 1.0), _BELOW_ONE, f)


#: ``(tier name, population fraction, comm-time scale)`` triples describing
#: per-link-speed device tiers (see :class:`LatencyConfig.link_tiers`).
LinkTier = Tuple[str, float, float]


@dataclass
class LatencyConfig:
    """Parameters of the response-latency model."""

    #: Log-normal sigma of the multiplicative compute-time noise.
    compute_sigma: float = 0.35
    #: Bounds of the uniform communication overhead (seconds).
    comm_min: float = 5.0
    comm_max: float = 20.0
    #: Global multiplier applied to every job's base task duration (lets
    #: experiments speed up or slow down the whole fleet consistently).
    duration_scale: float = 1.0
    # --- network-degradation layer (defaults = pristine network) --------- #
    #: Probability that one uplink transfer attempt is lost.  Lost attempts
    #: inflate the communication time (see ``retry_backoff``); a report
    #: whose ``1 + max_retries`` attempts are all lost counts as a dropout.
    loss_rate: float = 0.0
    #: Transfer attempts allowed *after* the first one.
    max_retries: int = 3
    #: Communication-time multiplier charged per lost attempt (the wasted
    #: transfer plus the retransmission).
    retry_backoff: float = 1.0
    #: Link-flap windows: every ``flap_period`` seconds a window of
    #: ``flap_duration`` seconds opens during which the loss rate is
    #: elevated by ``flap_loss_rate`` (capped at 1).  ``flap_period=0``
    #: disables flaps; ``flap_duration >= flap_period`` degrades the link
    #: permanently.  Window membership is evaluated at assignment time.
    flap_period: float = 0.0
    flap_duration: float = 0.0
    flap_loss_rate: float = 0.0
    #: Per-link-speed device tiers: ``(name, fraction, comm_scale)`` triples
    #: with positive fractions summing to 1.  Each device is statically
    #: hashed into a tier; its tier's ``comm_scale`` multiplies the uniform
    #: ``comm_min``/``comm_max`` communication draw (and the per-retry
    #: inflation).  Empty tuple = a single implicit tier with scale 1.
    link_tiers: Tuple[LinkTier, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.compute_sigma < 0:
            raise ValueError("compute_sigma must be non-negative")
        if self.comm_min < 0 or self.comm_max < self.comm_min:
            raise ValueError("need 0 <= comm_min <= comm_max")
        if self.duration_scale <= 0:
            raise ValueError("duration_scale must be positive")
        if not (0.0 <= self.loss_rate <= 1.0):
            raise ValueError("loss_rate must be in [0, 1]")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if self.flap_period < 0 or self.flap_duration < 0:
            raise ValueError("flap_period and flap_duration must be non-negative")
        if not (0.0 <= self.flap_loss_rate <= 1.0):
            raise ValueError("flap_loss_rate must be in [0, 1]")
        if self.flap_duration > 0 and self.flap_period <= 0:
            raise ValueError("flap_duration needs a positive flap_period")
        # Tuple-ify so scenario overrides may pass lists (JSON-friendly).
        self.link_tiers = tuple(
            (str(name), float(frac), float(scale))
            for name, frac, scale in self.link_tiers
        )
        if self.link_tiers:
            fractions = [frac for _, frac, _ in self.link_tiers]
            if any(f <= 0 for f in fractions) or not math.isclose(
                sum(fractions), 1.0, rel_tol=1e-9, abs_tol=1e-9
            ):
                raise ValueError(
                    "link tier fractions must be positive and sum to 1"
                )
            if any(scale <= 0 for _, _, scale in self.link_tiers):
                raise ValueError("link tier comm scales must be positive")

    @property
    def degrades_network(self) -> bool:
        """Whether any network-degradation knob is active.  When ``False``
        the model consumes exactly the historical draw sequence."""
        return bool(
            self.loss_rate > 0
            or (self.flap_period > 0 and self.flap_duration > 0
                and self.flap_loss_rate > 0)
        )

    def effective_loss_rate(self, now: float) -> float:
        """Loss probability of one transfer attempt starting at ``now``."""
        loss = self.loss_rate
        if (
            self.flap_period > 0
            and self.flap_duration > 0
            and (now % self.flap_period) < self.flap_duration
        ):
            loss = min(1.0, loss + self.flap_loss_rate)
        return loss


class ResponseLatencyModel:
    """Samples per-assignment response times and failure outcomes."""

    def __init__(
        self,
        config: Optional[LatencyConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        per_device_entropy: Optional[Union[int, tuple]] = None,
    ) -> None:
        """``per_device_entropy`` switches the model to per-device streams
        keyed by global device id (see the module docstring); otherwise
        ``rng`` (an injected generator, e.g. the engine's single run
        generator) takes precedence over ``seed``."""
        self.config = config or LatencyConfig()
        #: device_id -> tier index cache (static membership, lazily hashed).
        self._tier_cache: Dict[int, int] = {}
        self._per_device = per_device_entropy is not None
        if self._per_device:
            # Normalise whatever the caller passed (int seed, tuple, None)
            # through a SeedSequence, then collapse to the 64-bit master key
            # of the counter-based per-device streams.
            self._entropy = np.random.SeedSequence(per_device_entropy).entropy
            self._master = int(
                np.random.SeedSequence(self._entropy).generate_state(
                    1, np.uint64
                )[0]
            )
            #: device_id -> number of uniforms consumed so far.
            self._draw_counts: Dict[int, int] = {}
            self._rng = None
        else:
            self._rng = rng if rng is not None else np.random.default_rng(seed)

    @property
    def per_device(self) -> bool:
        """Whether draws come from per-device streams (shard-order free)."""
        return self._per_device

    def _uniform(self, device_id: int, index: int) -> float:
        """Uniform (0, 1) draw ``index`` of ``device_id``'s stream."""
        h = _mix64(
            (
                self._master
                + device_id * _DEVICE_STRIDE
                + index * _SM_GAMMA
            )
            & _MASK64
        )
        # (h + 1) / 2^64 lies in (0, 1] and the ~2^10 largest hash values
        # round to exactly 1.0 in float64 — outside the documented open
        # interval (a comm draw would hit comm_max exactly, and downstream
        # log()/division contracts assume u < 1).  Clamp those to the
        # largest float below 1.0; every other draw is bit-unchanged.
        u = (h + 1) * _INV_2_64
        return u if u < 1.0 else _BELOW_ONE

    # ------------------------------------------------------------------ #
    # Link tiers
    # ------------------------------------------------------------------ #
    def link_tier(self, device_id: int) -> int:
        """Index of ``device_id``'s link-speed tier (0 when untiered).

        Tier membership is a *static* salted hash of ``(master entropy,
        device_id)`` — not a stream draw — so it never advances the draw
        counter and is identical for any shard layout.  In the shared-rng
        regime the hash is keyed by device id alone.
        """
        tiers = self.config.link_tiers
        if not tiers:
            return 0
        tier = self._tier_cache.get(device_id)
        if tier is None:
            master = self._master if self._per_device else 0
            h = _mix64(((master ^ _TIER_SALT) + device_id * _DEVICE_STRIDE) & _MASK64)
            u = (h + 1) * _INV_2_64
            acc = 0.0
            tier = len(tiers) - 1
            for i, (_, fraction, _) in enumerate(tiers):
                acc += fraction
                if u <= acc:
                    tier = i
                    break
            self._tier_cache[device_id] = tier
        return tier

    def link_tier_name(self, device_id: int) -> str:
        """Name of the device's link tier (``"default"`` when untiered)."""
        tiers = self.config.link_tiers
        if not tiers:
            return "default"
        return tiers[self.link_tier(device_id)][0]

    def _comm_scale(self, device_id: int) -> float:
        tiers = self.config.link_tiers
        if not tiers:
            return 1.0
        return tiers[self.link_tier(device_id)][2]

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_duration(self, job: JobSpec, device: DeviceProfile) -> float:
        """Response time (seconds) for ``device`` executing one round of ``job``.

        Pristine-network path (no loss/retry accounting); the engine uses
        :meth:`sample_outcome`, which layers the network conditions on top.
        """
        duration, _ = self._sample_duration_parts(job, device, now=0.0, lossy=False)
        return duration

    def _sample_duration_parts(
        self, job: JobSpec, device: DeviceProfile, now: float, lossy: bool
    ) -> Tuple[float, bool]:
        """``(duration, lost)`` for one assignment.

        ``lossy=True`` additionally plays out the uplink transfer attempts:
        each lost attempt adds ``retry_backoff ×`` the link's transfer time,
        and exhausting ``1 + max_retries`` attempts returns ``lost=True``
        (the report never arrives).  The loss draws come from the same
        per-(device, draw) streams and are gated on the knobs, so a
        pristine-network run consumes exactly the historical sequence.
        """
        cfg = self.config
        if self._per_device:
            device_id = device.device_id
            k = self._draw_counts.get(device_id, 0)
            self._draw_counts[device_id] = k + 3
            u1 = self._uniform(device_id, k)
            u2 = self._uniform(device_id, k + 1)
            u3 = self._uniform(device_id, k + 2)
            # Box–Muller: exact standard normal from two uniforms.
            z = math.sqrt(-2.0 * math.log(u1)) * math.cos(_TWO_PI * u2)
            compute = (
                job.base_task_duration
                * cfg.duration_scale
                * device.speed_factor
                * math.exp(cfg.compute_sigma * z)
            )
            comm = (cfg.comm_min + (cfg.comm_max - cfg.comm_min) * u3) * (
                self._comm_scale(device_id)
            )
            if lossy and cfg.degrades_network:
                loss = cfg.effective_loss_rate(now)
                transfer = comm
                attempts = 1 + cfg.max_retries
                lost = False
                for _ in range(attempts):
                    k = self._draw_counts[device_id]
                    self._draw_counts[device_id] = k + 1
                    if self._uniform(device_id, k) >= loss:
                        break
                    comm += transfer * cfg.retry_backoff
                else:
                    lost = True
                return compute + comm, lost
            return compute + comm, False
        rng = self._rng
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(rng.normal(0.0, cfg.compute_sigma)))
        )
        comm = float(rng.uniform(cfg.comm_min, cfg.comm_max)) * self._comm_scale(
            device.device_id
        )
        if lossy and cfg.degrades_network:
            loss = cfg.effective_loss_rate(now)
            transfer = comm
            lost = False
            for _ in range(1 + cfg.max_retries):
                if float(rng.random()) >= loss:
                    break
                comm += transfer * cfg.retry_backoff
            else:
                lost = True
            return compute + comm, lost
        return compute + comm, False

    def sample_failure(self, device: DeviceProfile) -> bool:
        """Whether the device drops out instead of reporting back."""
        if self._per_device:
            device_id = device.device_id
            k = self._draw_counts.get(device_id, 0)
            self._draw_counts[device_id] = k + 1
            return self._uniform(device_id, k) > device.reliability
        return bool(self._rng.random() > device.reliability)

    def sample_outcome(
        self, job: JobSpec, device: DeviceProfile, now: float = 0.0
    ) -> Tuple[float, bool]:
        """``(duration, dropped)`` for one assignment starting at ``now``.

        The engine's sampling entry point: duration (compute + possibly
        retry-inflated communication), then the intrinsic-reliability
        dropout draw; a report that lost all its uplink transfer attempts
        is a dropout regardless of reliability.  Draw order (three duration
        uniforms, loss attempts, one reliability uniform) matches the
        historical ``sample_duration`` + ``sample_failure`` sequence, so
        with the network layer off the outcomes are bit-identical to the
        pre-network-layer engine.
        """
        duration, lost = self._sample_duration_parts(job, device, now, lossy=True)
        dropped = self.sample_failure(device)
        return duration, lost or dropped

    def sample_outcomes_batch(
        self,
        jobs: "Sequence[JobSpec]",
        devices: "Sequence[DeviceProfile]",
        now: float = 0.0,
    ) -> "list[Tuple[float, bool]]":
        """Batched :meth:`sample_outcome` over parallel job/device lists.

        Bit-identical to calling :meth:`sample_outcome` per element in
        order.  The per-(device, draw) SplitMix64 hashing — the dominant
        per-assignment cost in the scalar path, all Python big-int
        arithmetic — is evaluated as uint64 array ops; the transcendental
        compute/comm math stays per-element ``math.*`` because ``np.log`` /
        ``np.exp`` are *not* bit-identical to libm on this platform (the
        Box–Muller chain diverges in ~0.4% of draws).  With any
        network-degradation knob active the draw count per assignment is
        data-dependent (loss retries), so the batch falls back to the exact
        scalar path per element.
        """
        n = len(devices)
        if n == 0:
            return []
        cfg = self.config
        if not self._per_device or cfg.degrades_network or n == 1:
            return [
                self.sample_outcome(jobs[i], devices[i], now=now)
                for i in range(n)
            ]
        counts = self._draw_counts
        ids = np.empty(n, dtype=np.uint64)
        k0 = np.empty(n, dtype=np.uint64)
        for i in range(n):
            did = devices[i].device_id
            k = counts.get(did, 0)
            counts[did] = k + 4
            ids[i] = did
            k0[i] = k
        base = (
            np.uint64(self._master)
            + ids * np.uint64(_DEVICE_STRIDE)
            + k0 * np.uint64(_SM_GAMMA)
        )[:, None] + np.arange(4, dtype=np.uint64) * np.uint64(_SM_GAMMA)
        u = _uniform_array(_mix64_array(base)).tolist()
        sigma = cfg.compute_sigma
        scale = cfg.duration_scale
        comm_min = cfg.comm_min
        comm_span = cfg.comm_max - cfg.comm_min
        out = []
        for i in range(n):
            u1, u2, u3, u4 = u[i]
            device = devices[i]
            job = jobs[i]
            # Box–Muller, identical expression tree to the scalar path.
            z = math.sqrt(-2.0 * math.log(u1)) * math.cos(_TWO_PI * u2)
            compute = (
                job.base_task_duration
                * scale
                * device.speed_factor
                * math.exp(sigma * z)
            )
            comm = (comm_min + comm_span * u3) * self._comm_scale(
                device.device_id
            )
            out.append((compute + comm, u4 > device.reliability))
        return out

    def expected_duration(self, job: JobSpec, device: DeviceProfile) -> float:
        """Mean response time (no sampling); useful for estimators and tests.

        Accounts for the device's link-tier comm scale and the expected
        retry inflation at the *baseline* loss rate (flap windows are
        time-dependent and excluded)."""
        cfg = self.config
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(cfg.compute_sigma**2 / 2.0))
        )
        comm = (cfg.comm_min + cfg.comm_max) / 2.0
        comm *= self._comm_scale(device.device_id)
        if cfg.loss_rate > 0:
            # Expected lost attempts among the first 1 + max_retries:
            # sum_{i=1..max_retries+1} p^i truncates the geometric series.
            p = cfg.loss_rate
            expected_lost = sum(p**i for i in range(1, cfg.max_retries + 2))
            comm *= 1.0 + cfg.retry_backoff * expected_lost
        return compute + comm

    def tail_duration(
        self, job: JobSpec, device: DeviceProfile, percentile: float = 95.0
    ) -> float:
        """Approximate response-time percentile for one device."""
        from scipy import stats

        cfg = self.config
        z = stats.norm.ppf(percentile / 100.0)
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(cfg.compute_sigma * z))
        )
        comm = cfg.comm_min + (percentile / 100.0) * (cfg.comm_max - cfg.comm_min)
        comm *= self._comm_scale(device.device_id)
        return compute + comm


__all__ = ["LatencyConfig", "LinkTier", "ResponseLatencyModel"]
