"""On-device execution latency and failure model.

The paper (§4.3) notes that device response times follow a log-normal
distribution and uses the 95th percentile as the tail statistic.  This module
provides that model: a device's response time is

``base_task_duration × speed_factor × LogNormal(0, sigma) + communication``

where ``speed_factor`` comes from the capacity trace (slower hardware → larger
factor) and the communication term models upload/download of model weights.
Failures combine the device's intrinsic reliability with going offline before
the task finishes (the engine checks the latter against the session end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.types import DeviceProfile, JobSpec


@dataclass
class LatencyConfig:
    """Parameters of the response-latency model."""

    #: Log-normal sigma of the multiplicative compute-time noise.
    compute_sigma: float = 0.35
    #: Bounds of the uniform communication overhead (seconds).
    comm_min: float = 5.0
    comm_max: float = 20.0
    #: Global multiplier applied to every job's base task duration (lets
    #: experiments speed up or slow down the whole fleet consistently).
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.compute_sigma < 0:
            raise ValueError("compute_sigma must be non-negative")
        if self.comm_min < 0 or self.comm_max < self.comm_min:
            raise ValueError("need 0 <= comm_min <= comm_max")
        if self.duration_scale <= 0:
            raise ValueError("duration_scale must be positive")


class ResponseLatencyModel:
    """Samples per-assignment response times and failure outcomes."""

    def __init__(
        self,
        config: Optional[LatencyConfig] = None,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """``rng`` (an injected generator, e.g. the engine's single run
        generator) takes precedence over ``seed``."""
        self.config = config or LatencyConfig()
        self._rng = rng if rng is not None else np.random.default_rng(seed)

    def sample_duration(self, job: JobSpec, device: DeviceProfile) -> float:
        """Response time (seconds) for ``device`` executing one round of ``job``."""
        cfg = self.config
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(self._rng.normal(0.0, cfg.compute_sigma)))
        )
        comm = float(self._rng.uniform(cfg.comm_min, cfg.comm_max))
        return compute + comm

    def sample_failure(self, device: DeviceProfile) -> bool:
        """Whether the device drops out instead of reporting back."""
        return bool(self._rng.random() > device.reliability)

    def expected_duration(self, job: JobSpec, device: DeviceProfile) -> float:
        """Mean response time (no sampling); useful for estimators and tests."""
        cfg = self.config
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(cfg.compute_sigma**2 / 2.0))
        )
        comm = (cfg.comm_min + cfg.comm_max) / 2.0
        return compute + comm

    def tail_duration(
        self, job: JobSpec, device: DeviceProfile, percentile: float = 95.0
    ) -> float:
        """Approximate response-time percentile for one device."""
        from scipy import stats

        cfg = self.config
        z = stats.norm.ppf(percentile / 100.0)
        compute = (
            job.base_task_duration
            * cfg.duration_scale
            * device.speed_factor
            * float(np.exp(cfg.compute_sigma * z))
        )
        comm = cfg.comm_min + (percentile / 100.0) * (cfg.comm_max - cfg.comm_min)
        return compute + comm


__all__ = ["LatencyConfig", "ResponseLatencyModel"]
