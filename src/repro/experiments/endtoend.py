"""End-to-end scheduling experiments (Table 1, Table 2, Table 3, Table 4).

The central primitive is :func:`run_policies`: build one environment
(devices + availability + workload), run it once per scheduling policy and
return the per-policy :class:`~repro.sim.metrics.SimulationMetrics`.  All
policies see the *same* environment, so differences are attributable to the
scheduler alone.

On top of that primitive the module reproduces the paper's end-to-end
tables:

* :func:`table1_average_jct` — average-JCT speed-up over random matching for
  FIFO / SRSF / Venn across the five demand scenarios;
* :func:`table2_demand_percentiles` — Venn's speed-up restricted to the jobs
  with the smallest total demands;
* :func:`table3_categories` — Venn's speed-up per eligibility category;
* :func:`table4_biased_workloads` — speed-ups on the four category-biased
  workloads of §5.4.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..analysis.stats import (
    average_jct_speedup,
    jct_speedup_by_category,
    jct_speedup_by_demand_percentile,
)
from ..core.baselines import make_policy
from ..sim.engine import SimulationConfig, Simulator
from ..sim.metrics import SimulationMetrics
from ..traces.workloads import BIAS_SCENARIOS, DEMAND_SCENARIOS
from .config import ExperimentConfig, default_config
from .environment import Environment, build_environment

#: Policies reported in the end-to-end tables, in paper order.
DEFAULT_POLICIES: Sequence[str] = ("random", "fifo", "srsf", "venn")


def run_policy(
    env: Environment,
    policy_name: str,
    policy_kwargs: Optional[dict] = None,
    round_callback=None,
) -> SimulationMetrics:
    """Run one policy against an environment and return its metrics.

    ``round_callback`` (optional) receives a
    :class:`~repro.sim.job.RoundCompletion` per completed round, in event
    order — the hook the co-simulation layer trains through.
    """
    kwargs = dict(policy_kwargs or {})
    if policy_name.startswith("venn"):
        # The experiment config decides how Venn maintains its plan unless
        # the caller explicitly overrides it.
        kwargs.setdefault("plan_maintenance", env.config.plan_maintenance)
    policy = make_policy(policy_name, seed=env.config.seed_for("policy"), **kwargs)
    sim = Simulator(
        devices=env.devices,
        availability=env.availability,
        workload=env.workload,
        policy=policy,
        config=env.config.simulation,
        round_callback=round_callback,
    )
    return sim.run()


def run_policy_cosim(
    env: Environment,
    policy_name: str,
    policy_kwargs: Optional[dict] = None,
    cosim_config=None,
):
    """Co-simulation twin of :func:`run_policy`: run the policy with the
    FedAvg trainer coupled into the simulation loop and return a
    :class:`~repro.cosim.CoSimResult` (scheduling metrics + per-job
    accuracy curves + time-to-accuracy).

    Imported lazily so plain scheduling experiments never pay for the FL
    substrate.
    """
    from ..cosim import CoSimulation

    return CoSimulation(
        env, policy_name, policy_kwargs=policy_kwargs, config=cosim_config
    ).run()


def run_policies(
    env: Environment,
    policies: Sequence[str] = DEFAULT_POLICIES,
    policy_kwargs: Optional[Mapping[str, dict]] = None,
) -> Dict[str, SimulationMetrics]:
    """Run several policies against the same environment."""
    kwargs = dict(policy_kwargs or {})
    return {
        name: run_policy(env, name, kwargs.get(name)) for name in policies
    }


def run_scenario(
    config: ExperimentConfig,
    scenario: str,
    policies: Sequence[str] = DEFAULT_POLICIES,
    policy_kwargs: Optional[Mapping[str, dict]] = None,
) -> Dict[str, SimulationMetrics]:
    """Build the environment for ``scenario`` and run all policies on it."""
    if scenario in DEMAND_SCENARIOS:
        cfg = config.with_scenario(scenario)
    elif scenario in BIAS_SCENARIOS:
        cfg = config.with_scenario("even", category_bias=scenario)
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    env = build_environment(cfg)
    return run_policies(env, policies, policy_kwargs)


def averaged_speedups(
    config: ExperimentConfig,
    scenario: str,
    policies: Sequence[str] = DEFAULT_POLICIES,
    num_seeds: int = 1,
    baseline: str = "random",
) -> Dict[str, float]:
    """Average-JCT speed-ups over ``baseline``, averaged across seeds.

    A single trace replay carries noticeable run-to-run noise (a handful of
    large jobs dominate the average JCT), so the tables support averaging the
    speed-up over several independently seeded environments.
    """
    if num_seeds <= 0:
        raise ValueError("num_seeds must be positive")
    sums: Dict[str, float] = {p: 0.0 for p in policies if p != baseline}
    for i in range(num_seeds):
        cfg = config.with_seed(config.seed + 1000 * i)
        results = run_scenario(cfg, scenario, policies)
        speedups = average_jct_speedup(results, baseline=baseline)
        for p in sums:
            sums[p] += speedups[p]
    return {p: total / num_seeds for p, total in sums.items()}


# --------------------------------------------------------------------------- #
# Paper tables
# --------------------------------------------------------------------------- #
def table1_average_jct(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = DEMAND_SCENARIOS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    num_seeds: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Table 1: avg-JCT speed-up over random matching per workload scenario."""
    config = config or default_config()
    out: Dict[str, Dict[str, float]] = {}
    for scenario in scenarios:
        out[scenario] = averaged_speedups(
            config, scenario, policies, num_seeds=num_seeds
        )
    return out


def table2_demand_percentiles(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = DEMAND_SCENARIOS,
    percentiles: Sequence[float] = (25.0, 50.0, 75.0),
    policy: str = "venn",
) -> Dict[str, Dict[float, float]]:
    """Table 2: Venn's speed-up over the smallest-demand jobs per scenario."""
    config = config or default_config()
    out: Dict[str, Dict[float, float]] = {}
    for scenario in scenarios:
        results = run_scenario(config, scenario, ("random", policy))
        out[scenario] = jct_speedup_by_demand_percentile(
            results, policy, baseline="random", percentiles=percentiles
        )
    return out


def table3_categories(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = DEMAND_SCENARIOS,
    policy: str = "venn",
) -> Dict[str, Dict[str, float]]:
    """Table 3: Venn's speed-up per device-eligibility category per scenario."""
    config = config or default_config()
    out: Dict[str, Dict[str, float]] = {}
    for scenario in scenarios:
        results = run_scenario(config, scenario, ("random", policy))
        out[scenario] = jct_speedup_by_category(results, policy, baseline="random")
    return out


def table4_biased_workloads(
    config: Optional[ExperimentConfig] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    num_seeds: int = 1,
) -> Dict[str, Dict[str, float]]:
    """Table 4: speed-ups on the four category-biased workloads of §5.4."""
    config = config or default_config()
    out: Dict[str, Dict[str, float]] = {}
    for bias in BIAS_SCENARIOS:
        out[bias] = averaged_speedups(config, bias, policies, num_seeds=num_seeds)
    return out


__all__ = [
    "DEFAULT_POLICIES",
    "averaged_speedups",
    "run_policies",
    "run_policy",
    "run_policy_cosim",
    "run_scenario",
    "table1_average_jct",
    "table2_demand_percentiles",
    "table3_categories",
    "table4_biased_workloads",
]
