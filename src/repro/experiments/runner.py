"""Experiment runner: regenerate every table and figure from the command line.

``python -m repro.experiments.runner --preset quick`` prints the data behind
each table and figure of the paper's evaluation, formatted as plain-text
tables.  The ``default`` preset matches the numbers recorded in
EXPERIMENTS.md; the ``quick`` preset is a smaller, faster sanity pass.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence, TextIO

from ..analysis.report import format_series, format_speedup_table, format_table
from .ablation import figure12_num_jobs, figure13_num_tiers, figure14_fairness_knob
from .accuracy import figure4_contention_accuracy, figure9_accuracy_over_time
from .breakdown import figure11_component_breakdown, figure5_jct_breakdown
from .config import ExperimentConfig, get_config
from .endtoend import (
    table1_average_jct,
    table2_demand_percentiles,
    table3_categories,
    table4_biased_workloads,
)
from .figures import (
    figure10_overhead,
    figure2a_availability_curve,
    figure2b_capacity_heterogeneity,
    figure3_toy_example,
    figure8a_category_shares,
    figure8b_job_demand_stats,
)


def _print(out: TextIO, text: str) -> None:
    out.write(text + "\n\n")
    out.flush()


def run_characterisation(out: TextIO) -> None:
    """Figures 2 and 8: trace characterisation."""
    times, frac = figure2a_availability_curve(num_devices=1000)
    peak, trough = float(frac.max()), float(frac[frac > 0].min()) if (frac > 0).any() else 0.0
    _print(
        out,
        format_table(
            ["statistic", "value"],
            [
                ["peak online fraction", peak],
                ["trough online fraction", trough],
                ["peak / trough", peak / max(trough, 1e-9)],
            ],
            title="Figure 2a — diurnal availability",
        ),
    )
    _print(
        out,
        format_table(
            ["model", "qualified fraction"],
            list(figure2b_capacity_heterogeneity(num_devices=1000).items()),
            title="Figure 2b — device capacity heterogeneity",
        ),
    )
    _print(
        out,
        format_table(
            ["category", "eligible fraction"],
            list(figure8a_category_shares(num_devices=1000).items()),
            title="Figure 8a — eligibility categories",
        ),
    )
    _print(
        out,
        format_table(
            ["statistic", "value"],
            list(figure8b_job_demand_stats().items()),
            title="Figure 8b — job demand trace",
        ),
    )


def run_toy_example(out: TextIO) -> None:
    """Figure 3: toy example."""
    toy = figure3_toy_example()
    _print(
        out,
        format_table(
            ["strategy", "average JCT (time units)"],
            [
                ["random", toy.random_jct],
                ["SRSF", toy.srsf_jct],
                ["Venn", toy.venn_jct],
                ["optimal (ILP)", toy.optimal_jct],
            ],
            title="Figure 3 — toy example (paper: random 12, SRSF 11, optimal 9.3)",
        ),
    )


def run_endtoend(config: ExperimentConfig, out: TextIO) -> None:
    """Tables 1-4."""
    _print(
        out,
        format_speedup_table(
            table1_average_jct(config),
            title="Table 1 — average JCT speed-up over random matching",
        ),
    )
    table2 = {
        scenario: {f"p{int(p)}": v for p, v in row.items()}
        for scenario, row in table2_demand_percentiles(config).items()
    }
    _print(
        out,
        format_speedup_table(
            table2, title="Table 2 — Venn speed-up by total-demand percentile"
        ),
    )
    _print(
        out,
        format_speedup_table(
            table3_categories(config),
            title="Table 3 — Venn speed-up by eligibility category",
        ),
    )
    _print(
        out,
        format_speedup_table(
            table4_biased_workloads(config),
            title="Table 4 — speed-up on biased workloads",
        ),
    )


def run_breakdowns(config: ExperimentConfig, out: TextIO) -> None:
    """Figures 5 and 11."""
    rows = []
    for n, row in figure5_jct_breakdown(config).items():
        rows.append([f"{n} jobs", row.scheduling_delay, row.response_time, row.total])
    _print(
        out,
        format_table(
            ["contention", "scheduling delay (s)", "response time (s)", "total (s)"],
            rows,
            title="Figure 5 — JCT breakdown under random matching",
        ),
    )
    _print(
        out,
        format_speedup_table(
            figure11_component_breakdown(config),
            title="Figure 11 — component breakdown (improvement over random)",
        ),
    )


def run_ablations(config: ExperimentConfig, out: TextIO) -> None:
    """Figures 12, 13 and 14."""
    fig12 = {str(n): row for n, row in figure12_num_jobs(config).items()}
    _print(
        out,
        format_speedup_table(
            fig12, row_label="num jobs", title="Figure 12 — impact of number of jobs"
        ),
    )
    fig13 = figure13_num_tiers(config)
    _print(
        out,
        format_table(
            ["tiers", "speed-up over random"],
            [[v, s] for v, s in fig13.items()],
            title="Figure 13 — impact of number of tiers",
        ),
    )
    fig14 = figure14_fairness_knob(config)
    _print(
        out,
        format_table(
            ["epsilon", "speed-up", "fair-share ratio"],
            [[eps, s, f] for eps, (s, f) in fig14.items()],
            title="Figure 14 — fairness knob",
        ),
    )


def run_accuracy(config: ExperimentConfig, out: TextIO, quick: bool = False) -> None:
    """Figures 4 and 9."""
    job_counts = (1, 5, 10) if quick else (1, 5, 10, 20)
    rounds = 10 if quick else 30
    curves = figure4_contention_accuracy(job_counts=job_counts, num_rounds=rounds)
    rows = [[k, series[-1]] for k, series in curves.items()]
    _print(
        out,
        format_table(
            ["concurrent jobs", "final accuracy"],
            rows,
            precision=3,
            title="Figure 4 — impact of resource contention on accuracy",
        ),
    )
    times, acc = figure9_accuracy_over_time(config)
    _print(
        out,
        format_series(
            [t / 3600.0 for t in times],
            acc,
            x_label="time (h)",
            title="Figure 9 — average test accuracy over time",
        ),
    )


def run_overhead(out: TextIO) -> None:
    """Figure 10."""
    rows = [
        [m, n, latency]
        for (m, n), latency in figure10_overhead(
            job_counts=(100, 500, 1000), group_counts=(20, 100)
        ).items()
    ]
    _print(
        out,
        format_table(
            ["jobs", "groups", "latency (ms)"],
            rows,
            precision=3,
            title="Figure 10 — scheduler overhead",
        ),
    )


def run_all(
    preset: str = "quick", seed: int = 7, out: Optional[TextIO] = None
) -> None:
    """Run every experiment and print the resulting tables."""
    out = out or sys.stdout
    config = get_config(preset, seed=seed)
    run_characterisation(out)
    run_toy_example(out)
    run_endtoend(config, out)
    run_breakdowns(config, out)
    run_ablations(config, out)
    run_accuracy(config, out, quick=preset == "quick")
    run_overhead(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset",
        default="quick",
        choices=["quick", "default", "large"],
        help="experiment scale preset",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--section",
        default="all",
        choices=[
            "all",
            "characterisation",
            "toy",
            "endtoend",
            "breakdown",
            "ablation",
            "accuracy",
            "overhead",
        ],
        help="run only one section of the evaluation",
    )
    args = parser.parse_args(argv)
    config = get_config(args.preset, seed=args.seed)
    out = sys.stdout
    sections: Dict[str, Callable[[], None]] = {
        "characterisation": lambda: run_characterisation(out),
        "toy": lambda: run_toy_example(out),
        "endtoend": lambda: run_endtoend(config, out),
        "breakdown": lambda: run_breakdowns(config, out),
        "ablation": lambda: run_ablations(config, out),
        "accuracy": lambda: run_accuracy(config, out, quick=args.preset == "quick"),
        "overhead": lambda: run_overhead(out),
    }
    if args.section == "all":
        run_all(args.preset, seed=args.seed, out=out)
    else:
        sections[args.section]()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


__all__ = [
    "main",
    "run_all",
    "run_ablations",
    "run_accuracy",
    "run_breakdowns",
    "run_characterisation",
    "run_endtoend",
    "run_overhead",
    "run_toy_example",
]
