"""JCT breakdown experiments (Figure 5 and Figure 11).

* **Figure 5** breaks one round's completion time into scheduling delay and
  response collection time under random matching, at two contention levels
  (10 vs 20 jobs sharing the same pool).  The scheduling delay dominates as
  contention grows — the observation that motivates Venn.

* **Figure 11** decomposes Venn's improvement into its two components by
  running, on the Low and High workloads: Random, FIFO, Venn without
  scheduling (matching only), Venn without matching (scheduling only) and
  full Venn, and reporting each policy's average-JCT improvement over
  Random.  Matching matters most when contention is low; scheduling when it
  is high.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.stats import BreakdownRow, average_jct_speedup, jct_breakdown
from .config import ExperimentConfig, default_config
from .endtoend import run_policies, run_scenario
from .environment import build_environment

#: The five bars of Figure 11, in paper order.
FIGURE11_POLICIES: Sequence[str] = (
    "random",
    "fifo",
    "venn_wo_sched",
    "venn_wo_match",
    "venn",
)


def figure5_jct_breakdown(
    config: Optional[ExperimentConfig] = None,
    job_counts: Sequence[int] = (10, 20),
    policy: str = "random",
) -> Dict[int, BreakdownRow]:
    """Average scheduling delay vs response time under random matching.

    One row per contention level (number of concurrent jobs).
    """
    config = config or default_config()
    out: Dict[int, BreakdownRow] = {}
    for n in job_counts:
        cfg = config.with_jobs(n)
        env = build_environment(cfg)
        results = run_policies(env, (policy,))
        out[n] = jct_breakdown(results[policy], label=f"{n} jobs")
    return out


def figure11_component_breakdown(
    config: Optional[ExperimentConfig] = None,
    scenarios: Sequence[str] = ("low", "high"),
    policies: Sequence[str] = FIGURE11_POLICIES,
) -> Dict[str, Dict[str, float]]:
    """Average-JCT improvement of each Venn component over random matching."""
    config = config or default_config()
    out: Dict[str, Dict[str, float]] = {}
    for scenario in scenarios:
        results = run_scenario(config, scenario, policies)
        speedups = average_jct_speedup(results, baseline="random")
        out[scenario] = {p: speedups[p] for p in policies}
    return out


__all__ = [
    "FIGURE11_POLICIES",
    "figure11_component_breakdown",
    "figure5_jct_breakdown",
]
