"""Characterisation and micro experiments: Figures 2, 3, 8 and 10.

* **Figure 2a** — diurnal device availability over the trace horizon.
* **Figure 2b** — CPU/memory heterogeneity and the fraction of devices able
  to run each of the three example on-device models.
* **Figure 3**  — the toy example comparing Random, SRSF, Venn's order and
  the exact optimum on three jobs (Keyboard×3, Emoji×4, Emoji×4) with devices
  checking in at a constant rate, half of them Emoji-eligible.
* **Figure 8**  — the device-eligibility regions and the job demand trace the
  workloads are sampled from.
* **Figure 10** — scheduler overhead: wall-clock latency of one scheduling
  (plan rebuild) invocation as the number of jobs / job groups grows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ilp import IRSInstance, solve_irs_milp
from ..core.irs import build_plan
from ..core.job_group import JobGroupRegistry
from ..core.requirements import AtomSpace, EligibilityRequirement
from ..core.scheduler import VennScheduler
from ..core.types import DeviceProfile, JobSpec, ResourceRequest
from ..traces.capacity import CapacitySampler, MODEL_REQUIREMENTS
from ..traces.device_trace import DiurnalAvailabilityModel, DiurnalConfig
from ..traces.job_trace import JobTraceGenerator
from .config import ExperimentConfig, default_config


# --------------------------------------------------------------------------- #
# Figure 2 / Figure 8: trace characterisation
# --------------------------------------------------------------------------- #
def figure2a_availability_curve(
    num_devices: int = 2000,
    config: Optional[DiurnalConfig] = None,
    seed: int = 3,
    resolution: float = 1800.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """(times, fraction of devices online): the diurnal availability curve."""
    model = DiurnalAvailabilityModel(config, seed=seed)
    trace = model.generate(num_devices)
    times, counts = trace.availability_curve(resolution=resolution)
    return times, counts / num_devices


def figure2b_capacity_heterogeneity(
    num_devices: int = 2000, seed: int = 3
) -> Dict[str, float]:
    """Fraction of devices qualified for each of the Figure-2b models."""
    sampler = CapacitySampler(seed=seed)
    devices = sampler.sample_devices(num_devices)
    return sampler.model_eligibility_shares(devices)


def figure8a_category_shares(
    num_devices: int = 2000, seed: int = 3
) -> Dict[str, float]:
    """Fraction of devices eligible for each of the four categories."""
    sampler = CapacitySampler(seed=seed)
    devices = sampler.sample_devices(num_devices)
    return sampler.category_shares(devices)


def figure8b_job_demand_stats(num_jobs: int = 400, seed: int = 3) -> Dict[str, float]:
    """Summary statistics of the job demand trace (rounds and participants)."""
    trace = JobTraceGenerator(seed=seed).generate(num_jobs)
    rounds = np.array([e.num_rounds for e in trace.entries])
    demand = np.array([e.demand_per_round for e in trace.entries])
    return {
        "mean_rounds": float(rounds.mean()),
        "max_rounds": float(rounds.max()),
        "mean_participants": float(demand.mean()),
        "max_participants": float(demand.max()),
        "mean_total_demand": trace.mean_total_demand,
    }


# --------------------------------------------------------------------------- #
# Figure 3: the toy example
# --------------------------------------------------------------------------- #
@dataclass
class ToyExampleResult:
    """Average scheduling delay of each strategy on the Figure-3 toy example."""

    random_jct: float
    srsf_jct: float
    venn_jct: float
    optimal_jct: float


#: Requirements of the toy example: the Keyboard job may use any device, the
#: Emoji jobs only devices holding emoji data (50 % of check-ins).
_TOY_KEYBOARD = EligibilityRequirement("keyboard_any")
_TOY_EMOJI = EligibilityRequirement("emoji_only", data_domain="emoji")

#: Job demands of the toy example: (job name, requirement, demand).
_TOY_JOBS: Sequence[Tuple[str, EligibilityRequirement, int]] = (
    ("keyboard", _TOY_KEYBOARD, 3),
    ("emoji-1", _TOY_EMOJI, 4),
    ("emoji-2", _TOY_EMOJI, 4),
)


def _toy_devices(num_devices: int = 24) -> List[DeviceProfile]:
    """Devices checking in at times 1, 2, 3, ...; odd check-ins hold emoji data."""
    devices = []
    for i in range(num_devices):
        has_emoji = i % 2 == 0  # check-in times are i + 1, so odd times
        devices.append(
            DeviceProfile(
                device_id=i,
                cpu_score=0.5,
                memory_score=0.5,
                data_domains=frozenset({"emoji"}) if has_emoji else frozenset(),
            )
        )
    return devices


def _toy_instance(num_devices: int = 24) -> Tuple[IRSInstance, List[DeviceProfile]]:
    devices = _toy_devices(num_devices)
    arrival_times = [float(i + 1) for i in range(num_devices)]
    eligibility = [
        [req.is_eligible(d) for (_, req, _) in _TOY_JOBS] for d in devices
    ]
    demands = [demand for (_, _, demand) in _TOY_JOBS]
    return IRSInstance.build(arrival_times, eligibility, demands), devices


def _simulate_fixed_order(
    instance: IRSInstance, order: Sequence[int]
) -> float:
    """Assign each arriving device to the first eligible job in ``order``."""
    remaining = list(instance.demands)
    delays = [0.0] * instance.num_jobs
    for i, t in enumerate(instance.arrival_times):
        for j in order:
            if remaining[j] > 0 and instance.eligibility[i][j]:
                remaining[j] -= 1
                delays[j] = max(delays[j], t)
                break
        if all(r == 0 for r in remaining):
            break
    if any(r > 0 for r in remaining):
        raise ValueError("not enough devices to satisfy all jobs")
    return float(np.mean(delays))


def _simulate_random(instance: IRSInstance, trials: int = 500, seed: int = 0) -> float:
    """Expected average delay of uniform random matching."""
    rng = np.random.default_rng(seed)
    totals = []
    for _ in range(trials):
        remaining = list(instance.demands)
        delays = [0.0] * instance.num_jobs
        for i, t in enumerate(instance.arrival_times):
            options = [
                j
                for j in range(instance.num_jobs)
                if remaining[j] > 0 and instance.eligibility[i][j]
            ]
            if not options:
                continue
            j = int(rng.choice(options))
            remaining[j] -= 1
            delays[j] = max(delays[j], t)
            if all(r == 0 for r in remaining):
                break
        if any(r > 0 for r in remaining):
            continue
        totals.append(float(np.mean(delays)))
    return float(np.mean(totals))


def _venn_order_for_toy(devices: Sequence[DeviceProfile]) -> List[int]:
    """Derive the Venn scheduling order for the toy example via Algorithm 1."""
    requirements = [_TOY_KEYBOARD, _TOY_EMOJI]
    space = AtomSpace(requirements)
    registry = JobGroupRegistry()
    for idx, (name, req, demand) in enumerate(_TOY_JOBS):
        registry.upsert_job(idx, req, remaining_demand=demand)
    # Supply rates: one device per time unit, half of them emoji-eligible.
    rates = {}
    for d in devices:
        sig = space.signature(d)
        rates[sig] = rates.get(sig, 0.0) + 1.0 / len(devices)
    plan = build_plan(registry.groups(), space, rates)
    # Flatten: devices of each signature consult the plan; for a global order
    # comparison we interleave by the per-atom preference of the emoji atom
    # (the contended one) followed by the keyboard-only atom.
    order: List[int] = []
    for key in plan.group_order:
        order.extend(plan.job_order[key])
    return order


def figure3_toy_example(num_devices: int = 24, seed: int = 0) -> ToyExampleResult:
    """Reproduce the Figure-3 comparison on the toy example.

    The paper reports average JCTs of 12 (random), 11 (SRSF) and 9.3
    (optimal); Venn's order matches the optimum on this instance.
    """
    instance, devices = _toy_instance(num_devices)
    # SRSF: smallest total demand first (Keyboard 3, then the two Emoji jobs).
    srsf_order = sorted(range(instance.num_jobs), key=lambda j: instance.demands[j])
    venn_order = _venn_order_for_toy(devices)
    optimal = solve_irs_milp(instance)
    return ToyExampleResult(
        random_jct=_simulate_random(instance, seed=seed),
        srsf_jct=_simulate_fixed_order(instance, srsf_order),
        venn_jct=_simulate_fixed_order(instance, venn_order),
        optimal_jct=optimal.average_delay,
    )


# --------------------------------------------------------------------------- #
# Figure 10: scheduler overhead
# --------------------------------------------------------------------------- #
def build_loaded_scheduler(
    num_jobs: int, num_groups: int, seed: int = 0
) -> VennScheduler:
    """A Venn scheduler loaded with ``num_jobs`` jobs over ``num_groups`` groups.

    Used by the Figure-10 overhead study and its pytest benchmark: the cost of
    one ``rebuild_plan`` call is the scheduling+matching trigger latency the
    paper reports.
    """
    rng = np.random.default_rng(seed)
    scheduler = VennScheduler(seed=seed)
    requirements = [
        EligibilityRequirement(
            f"group_{g}",
            min_cpu=float(g % 10) / 10.0,
            min_memory=float((g // 10) % 10) / 10.0,
        )
        for g in range(num_groups)
    ]
    for j in range(num_jobs):
        req = requirements[j % num_groups]
        job = JobSpec(
            job_id=j,
            requirement=req,
            demand_per_round=int(rng.integers(10, 200)),
            num_rounds=int(rng.integers(2, 50)),
            arrival_time=0.0,
        )
        scheduler.on_job_arrival(job, now=0.0)
        request = ResourceRequest(
            request_id=j,
            job_id=j,
            demand=job.demand_per_round,
            submit_time=0.0,
            deadline=600.0,
            min_reports=job.min_reports,
        )
        scheduler.on_request_open(request, now=0.0)
    # Seed the supply estimator with some observed check-ins.
    sampler = CapacitySampler(seed=seed)
    for device in sampler.sample_devices(200):
        scheduler.on_device_checkin(device, now=1.0)
    return scheduler


def figure10_overhead(
    job_counts: Sequence[int] = (100, 500, 1000),
    group_counts: Sequence[int] = (20, 60, 100),
    repeats: int = 5,
) -> Dict[Tuple[int, int], float]:
    """Median latency (milliseconds) of one scheduling invocation."""
    out: Dict[Tuple[int, int], float] = {}
    for m in job_counts:
        for n in group_counts:
            scheduler = build_loaded_scheduler(m, n)
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                scheduler.rebuild_plan(now=10.0)
                samples.append((time.perf_counter() - start) * 1000.0)
            out[(m, n)] = float(np.median(samples))
    return out


__all__ = [
    "ToyExampleResult",
    "build_loaded_scheduler",
    "figure10_overhead",
    "figure2a_availability_curve",
    "figure2b_capacity_heterogeneity",
    "figure3_toy_example",
    "figure8a_category_shares",
    "figure8b_job_demand_stats",
]
