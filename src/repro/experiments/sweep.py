"""Parallel scenario sweep: fan (scenario × seed × policy) cells over workers.

The sweep turns the repo from "reproduce the figures" into a scenario
exploration harness: pick scenarios from the registry
(:mod:`repro.scenarios`), a number of independent seeds and a set of
scheduling policies, and the runner executes every cell of the matrix —
optionally across a ``multiprocessing`` pool — writing one JSONL row per
cell plus an aggregated per-(scenario, policy) summary
(:mod:`repro.analysis.aggregate`).

Determinism is the load-bearing property:

* every (scenario, seed-index) pair gets its experiment root seed from
  ``numpy.random.SeedSequence(root_seed).spawn(...)`` keyed purely by the
  cell's position in the matrix, never by which worker runs it;
* inside a cell, all component streams derive from that root seed via the
  named streams of :class:`~repro.experiments.config.ExperimentConfig`;
* rows are serialised with sorted keys and written in cell order.

Together these make the JSONL output **byte-identical** for any worker
count, which the property tests assert by diffing ``--workers 1`` against
``--workers 2`` output.

Command line::

    python -m repro.experiments.sweep --smoke --workers 4 --out sweep.jsonl

``--smoke`` runs a small 4-scenario × 2-seed × 1-policy matrix sized for CI;
drop it (and pass ``--scenarios/--policies/--num-seeds``) for real sweeps.

Fault tolerance
---------------

A long sweep must survive one broken cell.  Every cell runs inside an
exception boundary: a cell that raises is retried up to
``--max-cell-retries`` times and, still failing, contributes a ``status:
"failed"`` row carrying the error and full traceback — the other cells run
to completion, aggregation skips the failed row, and the process exits
non-zero.  Rows are flushed to the JSONL file incrementally (one line per
completed cell), so a sweep killed mid-flight leaves the finished prefix
on disk; ``Ctrl-C`` terminates the worker pool cleanly and reports the
partial output.  The exception boundary sits inside the per-cell task, so
failed-row bytes are identical for any worker count too.  ``status`` is
``"ok"`` on every successful row.  ``--inject-crash-cell N`` deliberately
crashes cell N (the CI sweep-smoke job uses it to gate this machinery).

Co-simulation mode
------------------

``--cosim`` runs every cell as a federated co-simulation
(:mod:`repro.cosim`): the FedAvg trainer sits inside the simulation loop,
each round trains the clients the scheduler actually delivered, and rows
additionally carry per-job time-to-target-accuracy, final accuracies and
the run's decision/accuracy hashes.  ``--cosim --smoke`` runs a fixed
2-scenario (``non_iid_contention``, ``flash_crowd``) × 2-policy
(``random``, ``venn``) matrix; byte-identity across worker counts holds
exactly as in plain mode (the per-cell co-sim is deterministic for any
shard/worker layout).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

import numpy as np

from ..analysis.aggregate import (
    aggregate_cosim_rows,
    aggregate_rows,
    format_aggregates,
    format_cosim_aggregates,
    metrics_row,
)
from ..scenarios import get_scenario, scenario_names
from ..sim.metrics import SimulationMetrics
from .config import ExperimentConfig, get_config
from .endtoend import run_policy
from .environment import Environment

#: Matrix run by ``--smoke`` (and CI): the four original beyond-paper
#: scenarios, two seeds, the Venn scheduler — 8 cells.
SMOKE_SCENARIOS: Tuple[str, ...] = (
    "flash_crowd",
    "churn_storm",
    "straggler_heavy",
    "multi_tenant",
)
SMOKE_POLICIES: Tuple[str, ...] = ("venn",)
SMOKE_NUM_SEEDS = 2

#: Matrix run by ``--cosim --smoke`` (and the CI co-sim gate): the
#: diversity-sensitive contention scenario plus a burst scenario, under a
#: baseline and the Venn scheduler — time-to-accuracy rows for 2 policies
#: × 2 scenarios at one seed.
COSIM_SMOKE_SCENARIOS: Tuple[str, ...] = ("non_iid_contention", "flash_crowd")
COSIM_SMOKE_POLICIES: Tuple[str, ...] = ("random", "venn")
COSIM_SMOKE_NUM_SEEDS = 1

#: JCT percentiles recorded per cell.
ROW_PERCENTILES: Tuple[float, ...] = (50.0, 99.0)


@dataclass(frozen=True)
class SweepCell:
    """One cell of the sweep matrix.

    ``entropy`` is the cell's experiment root seed, derived by
    :func:`plan_cells` from the matrix position alone.  Cells that share a
    (scenario, seed-index) but differ in policy share their entropy — all
    policies see the same environment, keeping cross-policy comparisons
    attributable to the scheduler.
    """

    index: int
    scenario: str
    seed_index: int
    entropy: int
    policy: str


def plan_cells(
    scenarios: Sequence[str],
    num_seeds: int,
    policies: Sequence[str],
    root_seed: int = 0,
) -> List[SweepCell]:
    """Enumerate the (scenario × seed × policy) matrix deterministically."""
    if num_seeds <= 0:
        raise ValueError("num_seeds must be positive")
    if not scenarios or not policies:
        raise ValueError("need at least one scenario and one policy")
    if len(set(scenarios)) != len(scenarios):
        raise ValueError("duplicate scenario names in sweep")
    if len(set(policies)) != len(policies):
        raise ValueError("duplicate policy names in sweep")
    # Fail fast on unknown scenarios (in the parent, not deep in a worker).
    for name in scenarios:
        get_scenario(name)
    children = np.random.SeedSequence(root_seed).spawn(len(scenarios) * num_seeds)
    cells: List[SweepCell] = []
    index = 0
    for si, scenario in enumerate(scenarios):
        for ki in range(num_seeds):
            entropy = int(children[si * num_seeds + ki].generate_state(1, np.uint32)[0])
            for policy in policies:
                cells.append(
                    SweepCell(
                        index=index,
                        scenario=scenario,
                        seed_index=ki,
                        entropy=entropy,
                        policy=policy,
                    )
                )
                index += 1
    return cells


def smoke_base_config(seed: int) -> ExperimentConfig:
    """The base config behind ``--smoke``: ``quick`` with a doubled device
    pool and a few more jobs, so each cell is substantial enough (~0.2 s)
    that the worker pool's fork/IPC overhead cannot mask the parallel
    speedup CI asserts."""
    base = get_config("quick", seed=seed)
    return replace(
        base,
        name="smoke",
        num_devices=1600,
        num_jobs=20,
        workload=replace(base.workload, mean_interarrival=900.0),
    )


def build_cell_environment(
    cell: SweepCell, preset: str = "quick", smoke: bool = False
) -> Environment:
    """Materialise a cell's environment (scenario applied to the base preset)."""
    if smoke:
        base = smoke_base_config(seed=cell.entropy)
    else:
        base = get_config(preset, seed=cell.entropy)
    return get_scenario(cell.scenario).build_environment(base)


def _metrics_row(cell: SweepCell, metrics: SimulationMetrics, env: Environment) -> Dict:
    # The aggregation-facing core of the row (scenario, policy, job_jcts,
    # rate metrics, aborts) is built by the shared helper so the JSONL and
    # in-memory aggregation paths can never drift apart; the sweep adds
    # its cell provenance and the extra diagnostics on top.
    row = metrics_row(cell.scenario, cell.policy, metrics)
    percentiles = metrics.jct_percentiles(ROW_PERCENTILES)
    row.update({
        "cell": cell.index,
        "seed_index": cell.seed_index,
        "entropy": cell.entropy,
        "num_devices": env.num_devices,
        "num_jobs": env.num_jobs,
        "average_jct": metrics.average_jct,
        "p50_jct": percentiles[50.0],
        "p99_jct": percentiles[99.0],
        "average_round_duration": metrics.average_round_duration,
        "p50_round_duration": metrics.round_duration_percentile(50.0),
        "p99_round_duration": metrics.round_duration_percentile(99.0),
        "average_scheduling_delay": metrics.average_scheduling_delay,
        "average_response_time": metrics.average_response_time,
        "total_checkins": metrics.total_checkins,
        "total_responses": metrics.total_responses,
        "total_failures": metrics.total_failures,
    })
    return row


def run_cell(cell: SweepCell, preset: str = "quick", smoke: bool = False) -> Dict:
    """Run one cell end to end and return its JSONL row (a plain dict).

    Delegates to :func:`~repro.experiments.endtoend.run_policy` so sweep
    cells share one policy-seeding / simulator-wiring convention with the
    table/figure drivers — rows stay comparable with runner output.
    """
    spec = get_scenario(cell.scenario)
    env = build_cell_environment(cell, preset=preset, smoke=smoke)
    metrics = run_policy(
        env, cell.policy, dict(spec.policy_kwargs.get(cell.policy, {}))
    )
    return _metrics_row(cell, metrics, env)


def run_cosim_cell(cell: SweepCell, preset: str = "quick", smoke: bool = False) -> Dict:
    """Run one cell as a federated co-simulation and return its JSONL row.

    The row is a superset of :func:`run_cell`'s (so
    :func:`~repro.analysis.aggregate.aggregate_rows` still applies) plus
    the time-to-accuracy payload consumed by
    :func:`~repro.analysis.aggregate.aggregate_cosim_rows`.
    """
    # Imported lazily (like endtoend.run_policy_cosim) so plain sweeps
    # never pay for the FL substrate.
    from ..cosim import CoSimConfig, CoSimulation, smoke_cosim_config

    spec = get_scenario(cell.scenario)
    env = build_cell_environment(cell, preset=preset, smoke=smoke)
    base_cfg = smoke_cosim_config() if smoke else CoSimConfig()
    cosim_cfg = base_cfg.with_overrides(spec.cosim)
    result = CoSimulation(
        env,
        cell.policy,
        policy_kwargs=dict(spec.policy_kwargs.get(cell.policy, {})),
        config=cosim_cfg,
    ).run()
    row = _metrics_row(cell, result.sim, env)
    row.update({
        "targets": [float(t) for t in result.targets],
        "time_to_target": {
            str(float(t)): {
                str(job_id): time
                for job_id, time in result.time_to_accuracy(t).items()
            }
            for t in result.targets
        },
        "final_accuracies": {
            str(job_id): job.final_accuracy
            for job_id, job in result.jobs.items()
        },
        "total_jobs": result.total_jobs,
        "rounds_trained": sum(len(j.rounds) for j in result.jobs.values()),
        "decision_hash": result.decision_hash,
        "accuracy_hash": result.accuracy_hash,
    })
    return row


def _failed_row(cell: SweepCell, exc: BaseException, attempts: int) -> Dict:
    """The JSONL row of a cell that kept raising after every retry.

    Carries full provenance plus the error and traceback, so a failed cell
    is diagnosable from the artifact alone.  The traceback is formatted
    from the frames below the task boundary only, which keeps the bytes
    identical whether the cell ran serially or in a pool worker.
    """
    return {
        "cell": cell.index,
        "scenario": cell.scenario,
        "policy": cell.policy,
        "seed_index": cell.seed_index,
        "entropy": cell.entropy,
        "status": "failed",
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        "attempts": attempts,
    }


def _run_cell_task(
    args: Tuple[SweepCell, str, bool, bool, int, bool]
) -> Dict:
    """Run one cell inside the sweep's exception boundary.

    Retries a raising cell up to ``max_retries`` extra times (transient
    failures: OOM kills of a neighbour, flaky filesystems), then folds the
    exception into a ``status: "failed"`` row instead of propagating — one
    broken cell must not sink the sweep.  ``KeyboardInterrupt`` always
    propagates (the pool is being torn down).
    """
    cell, preset, smoke, cosim, max_retries, inject_crash = args
    attempts = 0
    while True:
        attempts += 1
        try:
            if inject_crash:
                raise RuntimeError(
                    f"injected sweep-cell crash (cell {cell.index})"
                )
            if cosim:
                row = run_cosim_cell(cell, preset=preset, smoke=smoke)
            else:
                row = run_cell(cell, preset=preset, smoke=smoke)
            row["status"] = "ok"
            return row
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            if attempts <= max_retries:
                continue
            return _failed_row(cell, exc, attempts)


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (workers inherit ``sys.path`` patched by the
    repo's conftest), else ``spawn`` (needs ``PYTHONPATH=src``).  Overridable
    via ``REPRO_SWEEP_START_METHOD`` for debugging."""
    method = os.environ.get("REPRO_SWEEP_START_METHOD")
    if method is None:
        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
    return multiprocessing.get_context(method)


def run_sweep(
    cells: Sequence[SweepCell],
    preset: str = "quick",
    smoke: bool = False,
    workers: int = 1,
    out_path: Optional[str] = None,
    log: Optional[TextIO] = None,
    cosim: bool = False,
    max_cell_retries: int = 0,
    inject_crash_cells: Sequence[int] = (),
) -> List[Dict]:
    """Run every cell (serially or over a worker pool) and return the rows.

    Rows come back in cell order regardless of scheduling; when ``out_path``
    is given they are written there as JSONL (sorted keys, one row per
    line) so the bytes are reproducible for a fixed matrix and root seed.
    Rows are flushed incrementally — a sweep killed mid-flight leaves every
    completed cell's row on disk.  A cell that raises is retried
    ``max_cell_retries`` times, then becomes a ``status: "failed"`` row
    (see :func:`_run_cell_task`); ``KeyboardInterrupt`` terminates the pool
    and propagates.  ``cosim=True`` runs each cell through
    :func:`run_cosim_cell` instead of :func:`run_cell`;
    ``inject_crash_cells`` deliberately crashes the named cell indices.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    if max_cell_retries < 0:
        raise ValueError("max_cell_retries must be non-negative")
    crash_set = set(inject_crash_cells)
    unknown = crash_set - {cell.index for cell in cells}
    if unknown:
        raise ValueError(
            f"inject_crash_cells names unknown cell indices: {sorted(unknown)}"
        )
    tasks = [
        (cell, preset, smoke, cosim, max_cell_retries, cell.index in crash_set)
        for cell in cells
    ]
    started = time.perf_counter()
    rows: List[Dict] = []
    out_fh: Optional[TextIO] = None
    if out_path:
        directory = os.path.dirname(os.path.abspath(out_path))
        os.makedirs(directory, exist_ok=True)
        out_fh = open(out_path, "w")

    def emit(row: Dict) -> None:
        rows.append(row)
        if out_fh is not None:
            out_fh.write(json.dumps(row, sort_keys=True) + "\n")
            out_fh.flush()

    try:
        if workers == 1 or len(cells) <= 1:
            for task in tasks:
                emit(_run_cell_task(task))
        else:
            ctx = _pool_context()
            pool = ctx.Pool(processes=min(workers, len(cells)))
            try:
                # Ordered imap keeps rows aligned with cell indices while
                # streaming them back one at a time (incremental flush);
                # chunksize 1 load-balances uneven scenario runtimes.
                for row in pool.imap(_run_cell_task, tasks, chunksize=1):
                    emit(row)
                pool.close()
            except BaseException:
                # KeyboardInterrupt (and anything else) must not leave
                # worker processes behind; terminate before re-raising.
                pool.terminate()
                raise
            finally:
                pool.join()
    finally:
        if out_fh is not None:
            out_fh.close()
    elapsed = time.perf_counter() - started
    failed = sum(1 for row in rows if row.get("status") != "ok")
    if log is not None:
        log.write(
            f"ran {len(rows)} cells with {workers} worker(s) "
            f"in {elapsed:.2f}s"
            + (f" ({failed} failed)" if failed else "")
            + "\n"
        )
    return rows


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def _parse_names(raw: str, kind: str) -> List[str]:
    names = [token.strip() for token in raw.split(",") if token.strip()]
    if not names:
        raise argparse.ArgumentTypeError(f"no {kind} given")
    return names


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel (scenario x seed x policy) sweep runner."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fixed CI matrix (4 beyond-paper scenarios x 2 seeds x "
        "venn) on a shrunken base config",
    )
    parser.add_argument(
        "--cosim",
        action="store_true",
        help="run cells as federated co-simulations (time-to-accuracy rows); "
        "with --smoke runs the fixed 2-scenario x 2-policy co-sim matrix",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: all registered)",
    )
    parser.add_argument(
        "--policies",
        default="random,venn",
        help="comma-separated policy names (default: random,venn)",
    )
    parser.add_argument("--num-seeds", type=int, default=3)
    parser.add_argument("--root-seed", type=int, default=0)
    parser.add_argument(
        "--preset",
        default="quick",
        choices=["quick", "default", "large"],
        help="base experiment preset scenarios are applied to",
    )
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--out", default=None, help="JSONL output path")
    parser.add_argument(
        "--max-cell-retries",
        type=int,
        default=0,
        help="re-run a raising cell this many extra times before recording "
        "a failed row (default 0)",
    )
    parser.add_argument(
        "--inject-crash-cell",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help="deliberately crash cell N (repeatable; exercises the "
        "failed-row machinery, used by the CI sweep-smoke job)",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true", help="print scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in scenario_names():
            spec = get_scenario(name)
            tags = ",".join(spec.tags)
            print(f"{name:18s} [{tags}] {spec.description}")
        return 0

    if args.smoke and args.cosim:
        scenarios: Sequence[str] = COSIM_SMOKE_SCENARIOS
        policies: Sequence[str] = COSIM_SMOKE_POLICIES
        num_seeds = COSIM_SMOKE_NUM_SEEDS
    elif args.smoke:
        scenarios = SMOKE_SCENARIOS
        policies = SMOKE_POLICIES
        num_seeds = SMOKE_NUM_SEEDS
    else:
        scenarios = (
            _parse_names(args.scenarios, "scenarios")
            if args.scenarios
            else scenario_names()
        )
        policies = _parse_names(args.policies, "policies")
        num_seeds = args.num_seeds

    cells = plan_cells(scenarios, num_seeds, policies, root_seed=args.root_seed)
    try:
        rows = run_sweep(
            cells,
            preset=args.preset,
            smoke=args.smoke,
            workers=args.workers,
            out_path=args.out,
            log=sys.stderr,
            cosim=args.cosim,
            max_cell_retries=args.max_cell_retries,
            inject_crash_cells=args.inject_crash_cell or (),
        )
    except KeyboardInterrupt:
        print(
            "sweep interrupted; completed rows"
            + (f" are in {args.out}" if args.out else " were not persisted"),
            file=sys.stderr,
        )
        return 130
    print(format_aggregates(aggregate_rows(rows)))
    if args.cosim:
        print(format_cosim_aggregates(aggregate_cosim_rows(rows)))
    if args.out:
        print(f"wrote {len(rows)} rows to {args.out}", file=sys.stderr)
    failed = [row for row in rows if row.get("status") != "ok"]
    if failed:
        print(f"{len(failed)} cell(s) failed:", file=sys.stderr)
        for row in failed:
            print(
                f"  cell {row['cell']} ({row['scenario']}/{row['policy']} "
                f"seed {row['seed_index']}, {row['attempts']} attempt(s)): "
                f"{row['error']}",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


__all__ = [
    "COSIM_SMOKE_NUM_SEEDS",
    "COSIM_SMOKE_POLICIES",
    "COSIM_SMOKE_SCENARIOS",
    "ROW_PERCENTILES",
    "SMOKE_NUM_SEEDS",
    "SMOKE_POLICIES",
    "SMOKE_SCENARIOS",
    "SweepCell",
    "build_cell_environment",
    "main",
    "plan_cells",
    "run_cell",
    "run_cosim_cell",
    "run_sweep",
    "smoke_base_config",
]
