"""Ablation studies (§5.5): Figures 12, 13 and 14.

* **Figure 12** — Venn's (and FIFO's / SRSF's) improvement over random as the
  number of concurrent jobs grows; contention grows with the job count, so
  Venn's advantage should widen.
* **Figure 13** — Venn's improvement as a function of the number of device
  tiers used by the matching algorithm (1 disables matching entirely); gains
  should appear with 2+ tiers and then plateau.
* **Figure 14** — The fairness knob ε: the average-JCT speed-up shrinks as ε
  grows (14a) while the fraction of jobs meeting their fair-share JCT rises
  (14b).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import average_jct_speedup, fairness_satisfaction
from ..core.types import JobSpec
from .config import ExperimentConfig, default_config
from .endtoend import run_policies
from .environment import Environment, build_environment


def estimate_solo_jct(job: JobSpec, env: Environment) -> float:
    """Analytic estimate of a job's JCT without contention (``sd_i``).

    Without competing jobs, every eligible check-in goes to this job, so the
    per-round scheduling delay is roughly ``demand / eligible arrival rate``;
    the response collection time is approximated by twice the median task
    duration of the eligible devices (the tail of the log-normal response
    distribution).  Used for the fair-share targets of Figure 14.
    """
    eligible = [d for d in env.devices if job.requirement.is_eligible(d)]
    eligible_fraction = len(eligible) / max(1, len(env.devices))
    total_checkins = len(env.availability.sessions)
    horizon = max(env.availability.horizon, 1.0)
    arrival_rate = max(1e-9, total_checkins / horizon * eligible_fraction)
    sched_per_round = job.demand_per_round / arrival_rate
    median_speed = (
        float(np.median([d.speed_factor for d in eligible])) if eligible else 1.0
    )
    response_per_round = job.base_task_duration * median_speed * 2.0 + 15.0
    return job.num_rounds * (sched_per_round + response_per_round)


def figure12_num_jobs(
    config: Optional[ExperimentConfig] = None,
    job_counts: Sequence[int] = (25, 50, 75),
    policies: Sequence[str] = ("fifo", "srsf", "venn"),
) -> Dict[int, Dict[str, float]]:
    """Average-JCT improvement over random vs the number of concurrent jobs."""
    config = config or default_config()
    out: Dict[int, Dict[str, float]] = {}
    for n in job_counts:
        env = build_environment(config.with_jobs(n))
        results = run_policies(env, ("random",) + tuple(policies))
        speedups = average_jct_speedup(results, baseline="random")
        out[n] = {p: speedups[p] for p in policies}
    return out


def figure13_num_tiers(
    config: Optional[ExperimentConfig] = None,
    tier_counts: Sequence[int] = (1, 2, 3, 4),
    scenario: str = "low",
) -> Dict[int, float]:
    """Venn's improvement over random as a function of the tier count ``V``.

    The Low workload is used because matching matters most when contention is
    low (§5.3).
    """
    config = config or default_config()
    env = build_environment(config.with_scenario(scenario))
    baseline = run_policies(env, ("random",))["random"]
    out: Dict[int, float] = {}
    for v in tier_counts:
        results = run_policies(
            env, ("venn",), policy_kwargs={"venn": {"num_tiers": v}}
        )
        venn = results["venn"]
        out[v] = baseline.average_jct / max(venn.average_jct, 1e-9)
    return out


def figure14_fairness_knob(
    config: Optional[ExperimentConfig] = None,
    epsilons: Sequence[float] = (0.0, 1.0, 2.0, 4.0, 6.0),
    scenario: str = "even",
) -> Dict[float, Tuple[float, float]]:
    """Fairness-knob sweep: ``epsilon -> (JCT speed-up, fair-share ratio)``.

    The speed-up is over random matching; the fair-share ratio is the
    fraction of jobs whose JCT is within ``M × sd_i`` (Figure 14b).
    """
    config = config or default_config()
    env = build_environment(config.with_scenario(scenario))
    solo = {
        job.job_id: estimate_solo_jct(job, env) for job in env.workload.jobs
    }
    baseline = run_policies(env, ("random",))["random"]
    out: Dict[float, Tuple[float, float]] = {}
    for eps in epsilons:
        results = run_policies(
            env, ("venn",), policy_kwargs={"venn": {"epsilon": eps}}
        )
        venn = results["venn"]
        speedup = baseline.average_jct / max(venn.average_jct, 1e-9)
        fairness = fairness_satisfaction(venn, solo, num_jobs=len(env.workload.jobs))
        out[eps] = (speedup, fairness)
    return out


__all__ = [
    "estimate_solo_jct",
    "figure12_num_jobs",
    "figure13_num_tiers",
    "figure14_fairness_knob",
]
