"""Experiment configuration presets.

The paper's evaluation runs at planetary scale (hundreds of thousands of
device check-ins, jobs with thousands of rounds).  This reproduction keeps
the *structure* — the same workload scenarios, the same eligibility
categories, the same policies — but scales the sizes so every experiment runs
on a laptop in seconds to minutes.  EXPERIMENTS.md records, per table and
figure, which preset was used.

Three presets are provided:

* ``quick``   — used by the test-suite and pytest benchmarks (seconds).
* ``default`` — used by the example scripts and the experiment runner
  (tens of seconds per policy).
* ``large``   — closer to the paper's scale (minutes per policy); useful for
  checking that trends persist as the system grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from ..sim.engine import SimulationConfig
from ..sim.latency import LatencyConfig
from ..traces.capacity import CapacityConfig
from ..traces.device_trace import DAY, DiurnalConfig
from ..traces.workloads import WorkloadConfig

#: Named RNG streams of one experiment, each a fixed ``spawn_key`` child of
#: the experiment's root :class:`numpy.random.SeedSequence`.  Deriving every
#: nested seed this way (instead of ``seed + k`` offsets) guarantees that two
#: configs with different root seeds can never end up sharing a stream — the
#: property the sweep runner relies on when fanning out (scenario × seed)
#: cells.
SEED_STREAMS: Dict[str, int] = {
    "devices": 0,
    "availability": 1,
    "workload": 2,
    "simulation": 3,
    "policy": 4,
    "scenario": 5,
    # Federated co-simulation: seeds the synthetic dataset and the
    # per-(client, round) training streams of :mod:`repro.cosim`.  All
    # policies run against one experiment config share this stream, so
    # cross-policy time-to-accuracy differences are attributable to the
    # scheduler's participant sets alone.
    "cosim": 6,
}


@dataclass
class ExperimentConfig:
    """Everything needed to build one simulated environment + workload."""

    name: str = "default"
    seed: int = 7
    #: Device population size.
    num_devices: int = 5000
    #: Number of CL jobs in the workload.
    num_jobs: int = 50
    #: Simulation horizon (seconds).
    horizon: float = 2 * DAY
    #: Workload generation knobs (scenario etc. are overridden per table).
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Device availability model.
    availability: DiurnalConfig = field(default_factory=DiurnalConfig)
    #: Device capacity model.
    capacity: CapacityConfig = field(default_factory=CapacityConfig)
    #: Simulation engine knobs.
    simulation: SimulationConfig = field(default_factory=SimulationConfig)
    #: How the Venn scheduler maintains its plan between triggers:
    #: ``"incremental"`` (default, in-place deltas, decision-identical) or
    #: ``"full"`` (from-scratch rebuild on every trigger — the oracle).
    #: Forwarded to every ``venn*`` policy built for this experiment.
    plan_maintenance: str = "incremental"
    #: Number of device shards of the simulation engine (1 = the in-process
    #: single-queue engine; N > 1 = the coordinator/shard engine, with
    #: decisions and metrics bit-identical for any value).  Forwarded to
    #: ``SimulationConfig.num_shards``.
    num_shards: int = 1
    #: Run the engine's vectorized hot path (struct-of-arrays device state +
    #: numpy batch kernels).  Decisions and metrics are bit-identical to the
    #: scalar oracle; forwarded to ``SimulationConfig.vectorized_dispatch``.
    vectorized: bool = False
    #: Periodic full-state checkpointing: snapshot every N processed events
    #: (``None`` disables).  Checkpointing is pure observation — decisions
    #: and metrics are bit-identical with or without it; forwarded to
    #: ``SimulationConfig.checkpoint_interval`` (see ``docs/RESILIENCE.md``).
    checkpoint_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_devices <= 0 or self.num_jobs <= 0:
            raise ValueError("num_devices and num_jobs must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.plan_maintenance not in ("incremental", "full"):
            raise ValueError(
                "plan_maintenance must be 'incremental' or 'full', got "
                f"{self.plan_maintenance!r}"
            )
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        # Keep nested configs consistent with the top-level knobs.  The
        # simulation seed is re-derived from the root seed here, so every
        # ``replace``-based copy (``with_seed``, ``with_scenario``, ...)
        # automatically refreshes it.
        self.workload = replace(self.workload, num_jobs=self.num_jobs)
        self.availability = replace(self.availability, horizon=self.horizon)
        self.simulation = replace(
            self.simulation,
            horizon=self.horizon,
            seed=self.seed_for("simulation"),
            num_shards=self.num_shards,
            vectorized_dispatch=self.vectorized,
            checkpoint_interval=self.checkpoint_interval,
        )

    # ------------------------------------------------------------------ #
    # Seed derivation
    # ------------------------------------------------------------------ #
    def seed_sequence(self, stream: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` of one named RNG stream.

        All component seeds of an experiment (device sampling, availability
        trace, workload, simulation engine, policy) are children of the one
        root seed, keyed by :data:`SEED_STREAMS`.  Two experiments with
        different root seeds therefore use fully independent streams for
        every component — unlike the previous ``seed + k`` offsets, where
        e.g. seed 7's availability stream equalled seed 8's device stream.
        """
        if stream not in SEED_STREAMS:
            raise ValueError(
                f"unknown seed stream {stream!r}; expected one of "
                f"{tuple(SEED_STREAMS)}"
            )
        return np.random.SeedSequence(
            entropy=self.seed, spawn_key=(SEED_STREAMS[stream],)
        )

    def seed_for(self, stream: str) -> int:
        """Integer seed for one named RNG stream (see :meth:`seed_sequence`).

        128 bits of the stream's state are used: collapsing to a single
        uint32 would re-introduce birthday collisions between the streams of
        a large sweep (~10k cells x 6 streams has non-negligible odds of two
        colliding in a 32-bit space).
        """
        state = self.seed_sequence(stream).generate_state(2, np.uint64)
        return (int(state[0]) << 64) | int(state[1])

    def with_scenario(self, scenario: str, category_bias: Optional[str] = None) -> "ExperimentConfig":
        """Copy of this config with a different workload scenario."""
        workload = replace(
            self.workload, scenario=scenario, category_bias=category_bias
        )
        return replace(self, workload=workload)

    def with_jobs(self, num_jobs: int) -> "ExperimentConfig":
        return replace(self, num_jobs=num_jobs)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, seed=seed)

    def with_shards(self, num_shards: int) -> "ExperimentConfig":
        """Copy of this config running on ``num_shards`` device shards."""
        return replace(self, num_shards=num_shards)

    def with_vectorized(self, vectorized: bool = True) -> "ExperimentConfig":
        """Copy of this config on the vectorized (or scalar) hot path."""
        return replace(self, vectorized=vectorized)

    def with_checkpointing(
        self, interval: Optional[int]
    ) -> "ExperimentConfig":
        """Copy of this config checkpointing every ``interval`` events
        (``None`` disables)."""
        return replace(self, checkpoint_interval=interval)


def _scaled_workload(
    max_rounds: int,
    max_demand: int,
    rounds_scale: float,
    demand_scale: float,
    mean_interarrival: float,
    deadline_min: float,
    deadline_max: float,
) -> WorkloadConfig:
    """Workload knobs used by the presets.

    The paper's 5-15 minute round deadlines are calibrated to a planetary
    check-in rate (thousands of eligible devices per minute).  The presets
    scale device supply down by roughly two orders of magnitude, so the
    deadlines are scaled up proportionally to keep the deadline-to-supply
    ratio — and therefore the abort behaviour under contention — comparable.
    """
    return WorkloadConfig(
        rounds_scale=rounds_scale,
        demand_scale=demand_scale,
        max_rounds=max_rounds,
        max_demand=max_demand,
        min_rounds=2,
        min_demand=8,
        base_task_duration=60.0,
        mean_interarrival=mean_interarrival,
        deadline_min=deadline_min,
        deadline_max=deadline_max,
    )


def quick_config(seed: int = 7) -> ExperimentConfig:
    """Small preset for tests and benchmarks (runs in a few seconds)."""
    return ExperimentConfig(
        name="quick",
        seed=seed,
        num_devices=800,
        num_jobs=16,
        horizon=1 * DAY,
        workload=_scaled_workload(
            max_rounds=4,
            max_demand=30,
            rounds_scale=0.004,
            demand_scale=0.1,
            mean_interarrival=600.0,
            deadline_min=1200.0,
            deadline_max=3600.0,
        ),
        availability=DiurnalConfig(horizon=1 * DAY),
        simulation=SimulationConfig(horizon=1 * DAY, latency=LatencyConfig()),
    )


def default_config(seed: int = 7) -> ExperimentConfig:
    """The preset behind the reproduced tables (tens of seconds per policy)."""
    return ExperimentConfig(
        name="default",
        seed=seed,
        num_devices=4000,
        num_jobs=50,
        horizon=2 * DAY,
        workload=_scaled_workload(
            max_rounds=8,
            max_demand=60,
            rounds_scale=0.01,
            demand_scale=0.15,
            mean_interarrival=1800.0,
            deadline_min=1800.0,
            deadline_max=5400.0,
        ),
        availability=DiurnalConfig(horizon=2 * DAY),
        simulation=SimulationConfig(horizon=2 * DAY, latency=LatencyConfig()),
    )


def large_config(seed: int = 7) -> ExperimentConfig:
    """A larger preset for trend checks (minutes per policy)."""
    return ExperimentConfig(
        name="large",
        seed=seed,
        num_devices=16000,
        num_jobs=100,
        horizon=4 * DAY,
        workload=_scaled_workload(
            max_rounds=12,
            max_demand=150,
            rounds_scale=0.02,
            demand_scale=0.3,
            mean_interarrival=1800.0,
            deadline_min=1800.0,
            deadline_max=5400.0,
        ),
        availability=DiurnalConfig(horizon=4 * DAY),
        simulation=SimulationConfig(horizon=4 * DAY, latency=LatencyConfig()),
    )


#: Named presets for the experiment runner / examples.
PRESETS: Dict[str, "ExperimentConfig"] = {}


def get_config(name: str = "default", seed: int = 7) -> ExperimentConfig:
    """Look up a preset by name (``quick``, ``default`` or ``large``)."""
    builders = {
        "quick": quick_config,
        "default": default_config,
        "large": large_config,
    }
    if name not in builders:
        raise ValueError(f"unknown preset {name!r}; expected one of {tuple(builders)}")
    return builders[name](seed=seed)


__all__ = [
    "ExperimentConfig",
    "SEED_STREAMS",
    "default_config",
    "get_config",
    "large_config",
    "quick_config",
]
