"""Experiment drivers reproducing every table and figure of the evaluation."""

from .ablation import (
    estimate_solo_jct,
    figure12_num_jobs,
    figure13_num_tiers,
    figure14_fairness_knob,
)
from .accuracy import (
    figure4_contention_accuracy,
    figure9_accuracy_over_time,
    final_accuracy_by_policy,
)
from .breakdown import (
    FIGURE11_POLICIES,
    figure11_component_breakdown,
    figure5_jct_breakdown,
)
from .config import (
    ExperimentConfig,
    default_config,
    get_config,
    large_config,
    quick_config,
)
from .endtoend import (
    DEFAULT_POLICIES,
    averaged_speedups,
    run_policies,
    run_policy,
    run_policy_cosim,
    run_scenario,
    table1_average_jct,
    table2_demand_percentiles,
    table3_categories,
    table4_biased_workloads,
)
from .environment import (
    Environment,
    build_availability,
    build_devices,
    build_environment,
    build_workload,
)
from .figures import (
    ToyExampleResult,
    build_loaded_scheduler,
    figure10_overhead,
    figure2a_availability_curve,
    figure2b_capacity_heterogeneity,
    figure3_toy_example,
    figure8a_category_shares,
    figure8b_job_demand_stats,
)
from .runner import run_all

__all__ = [
    "DEFAULT_POLICIES",
    "Environment",
    "averaged_speedups",
    "ExperimentConfig",
    "FIGURE11_POLICIES",
    "ToyExampleResult",
    "build_availability",
    "build_devices",
    "build_environment",
    "build_loaded_scheduler",
    "build_workload",
    "default_config",
    "estimate_solo_jct",
    "figure10_overhead",
    "figure11_component_breakdown",
    "figure12_num_jobs",
    "figure13_num_tiers",
    "figure14_fairness_knob",
    "figure2a_availability_curve",
    "figure2b_capacity_heterogeneity",
    "figure3_toy_example",
    "figure4_contention_accuracy",
    "figure5_jct_breakdown",
    "figure8a_category_shares",
    "figure8b_job_demand_stats",
    "figure9_accuracy_over_time",
    "final_accuracy_by_policy",
    "get_config",
    "large_config",
    "quick_config",
    "run_all",
    "run_policies",
    "run_policy",
    "run_policy_cosim",
    "run_scenario",
    "table1_average_jct",
    "table2_demand_percentiles",
    "table3_categories",
    "table4_biased_workloads",
]
