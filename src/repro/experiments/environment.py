"""Building the simulated environment (devices + availability + workload)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Mapping, Optional, Sequence, Tuple

from ..core.types import DeviceProfile
from ..traces.capacity import CapacitySampler
from ..traces.device_trace import DeviceAvailabilityTrace, DiurnalAvailabilityModel
from ..traces.workloads import Workload, WorkloadGenerator
from .config import ExperimentConfig


@dataclass
class Environment:
    """A fully materialised simulation environment."""

    config: ExperimentConfig
    devices: List[DeviceProfile]
    availability: DeviceAvailabilityTrace
    workload: Workload

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_jobs(self) -> int:
        return len(self.workload.jobs)


def build_devices(config: ExperimentConfig) -> List[DeviceProfile]:
    """Sample the device population for an experiment."""
    sampler = CapacitySampler(config.capacity, seed=config.seed_for("devices"))
    return sampler.sample_devices(config.num_devices)


def build_availability(
    config: ExperimentConfig,
    device_ids: Optional[Sequence[int]] = None,
) -> DeviceAvailabilityTrace:
    """Generate the availability trace for the experiment's device ids.

    The availability model draws every device from its own
    :class:`numpy.random.SeedSequence` child keyed by the *global device
    id* (not by generation order), so ``device_ids`` can restrict the
    build to any subset — e.g. one device shard — and the produced
    sessions are bit-identical to that subset of the full-population
    trace.  The property test in ``tests/traces`` pins this.
    """
    model = DiurnalAvailabilityModel(
        config.availability, seed=config.seed_for("availability")
    )
    return model.generate(config.num_devices, device_ids=device_ids)


def build_workload(config: ExperimentConfig) -> Workload:
    """Generate the CL job workload for the experiment."""
    generator = WorkloadGenerator(config.workload, seed=config.seed_for("workload"))
    return generator.generate()


def build_environment(config: ExperimentConfig) -> Environment:
    """Build devices, availability and workload from one configuration.

    Each component draws from its own named child stream of the root seed
    (see :data:`~repro.experiments.config.SEED_STREAMS`), so the whole
    environment is reproducible while component streams stay independent
    both of each other and of every other root seed's streams.
    """
    return Environment(
        config=config,
        devices=build_devices(config),
        availability=build_availability(config),
        workload=build_workload(config),
    )


__all__ = [
    "Environment",
    "build_availability",
    "build_devices",
    "build_environment",
    "build_workload",
]
