"""Model-accuracy experiments (Figure 4 and Figure 9).

Both experiments couple the FL training substrate (:mod:`repro.fl`) with the
scheduling layer:

* **Figure 4** — resource contention hurts round-to-accuracy: when the same
  client pool is evenly partitioned among 1/5/10/20 jobs, each job sees fewer
  and less diverse clients per round and converges to a lower accuracy.
* **Figure 9** — the scheduling policy does not change *what* a job learns
  per round, only *when* rounds complete; Venn therefore reaches the same
  final accuracy sooner.  The experiment trains one round-to-accuracy curve,
  runs the simulator under FIFO / SRSF / Venn to obtain per-round completion
  times, and reports average test accuracy over wall-clock time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fl.datasets import FederatedDataConfig, SyntheticFederatedDataset
from ..fl.trainer import (
    FederatedTrainer,
    TrainerConfig,
    accuracy_over_time,
    contention_accuracy_curves,
)
from .config import ExperimentConfig, default_config
from .endtoend import run_policies
from .environment import build_environment


def figure4_contention_accuracy(
    job_counts: Sequence[int] = (1, 5, 10, 20),
    num_rounds: int = 30,
    num_clients: int = 200,
    clients_per_round: int = 20,
    seed: int = 11,
) -> Dict[int, List[float]]:
    """Round-to-accuracy curves when the client pool is split across jobs."""
    dataset = SyntheticFederatedDataset(
        FederatedDataConfig(num_clients=num_clients), seed=seed
    )
    trainer_config = TrainerConfig(clients_per_round=clients_per_round)
    return contention_accuracy_curves(
        dataset, job_counts, num_rounds, config=trainer_config, seed=seed
    )


def _round_accuracy_curve(
    max_rounds: int, seed: int, clients_per_round: int = 20, num_clients: int = 150
) -> List[float]:
    """One shared round-to-accuracy trajectory used across policies."""
    dataset = SyntheticFederatedDataset(
        FederatedDataConfig(num_clients=num_clients), seed=seed
    )
    trainer = FederatedTrainer(
        dataset, TrainerConfig(clients_per_round=clients_per_round), seed=seed
    )
    history = trainer.train(max_rounds)
    return history.accuracies


def figure9_accuracy_over_time(
    config: Optional[ExperimentConfig] = None,
    policies: Sequence[str] = ("fifo", "srsf", "venn"),
    num_time_points: int = 40,
    seed: int = 11,
) -> Tuple[List[float], Dict[str, List[float]]]:
    """Average test accuracy vs wall-clock time per scheduling policy.

    Returns ``(time_grid_seconds, {policy: mean accuracy at each time})``.
    """
    config = config or default_config()
    env = build_environment(config)
    results = run_policies(env, tuple(policies))

    max_rounds = max(job.num_rounds for job in env.workload.jobs)
    accuracy_curve = _round_accuracy_curve(max_rounds, seed=seed)

    horizon = config.horizon
    time_grid = list(np.linspace(0.0, horizon, num_time_points))

    curves: Dict[str, List[float]] = {}
    for policy in policies:
        metrics = results[policy]
        per_job_curves: List[List[float]] = []
        for job in env.workload.jobs:
            jm = metrics.jobs[job.job_id]
            # Reconstruct per-round completion times from arrival + cumulative
            # round durations (scheduling delay + response time per round).
            durations = [
                s + r for s, r in zip(jm.scheduling_delays, jm.response_times)
            ]
            if not durations:
                continue
            completion_times = list(job.arrival_time + np.cumsum(durations))
            accs = accuracy_curve[: len(completion_times)]
            per_job_curves.append(
                accuracy_over_time(completion_times, accs, time_grid)
            )
        if per_job_curves:
            curves[policy] = list(np.mean(np.array(per_job_curves), axis=0))
        else:
            curves[policy] = [0.0] * len(time_grid)
    return time_grid, curves


def final_accuracy_by_policy(
    curves: Dict[str, List[float]]
) -> Dict[str, float]:
    """Final (end-of-horizon) accuracy per policy — should be ~equal (Fig. 9)."""
    return {policy: (series[-1] if series else 0.0) for policy, series in curves.items()}


__all__ = [
    "figure4_contention_accuracy",
    "figure9_accuracy_over_time",
    "final_accuracy_by_policy",
]
