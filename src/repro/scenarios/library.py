"""Built-in scenario library.

Three families are registered on import:

* the **paper** scenarios — the five demand scenarios of §5.1 and the four
  category-biased workloads of §5.4, expressed as pure workload-config
  overrides; and
* four **beyond-paper** scenarios exercising regimes the paper does not
  evaluate:

  - ``flash_crowd``   — a large fraction of the jobs arrives in one burst
    instead of trickling in via the Poisson process;
  - ``churn_storm``   — correlated mass dropouts: most of the online
    population disappears simultaneously (and later re-checks in) at fixed
    points in the horizon;
  - ``straggler_heavy`` — the capacity distribution is shifted down and its
    tail stretched, so rounds wait on much slower stragglers;
  - ``multi_tenant``  — jobs belong to gold/silver/bronze tenants with
    tiered round deadlines, plus a finer device-tier quantisation for the
    Venn matcher;
  - ``non_iid_contention`` — many concurrent high-demand jobs burst onto
    the pool at once, so round reporting sets shrink and lose diversity
    exactly when the co-simulated federated data is most non-IID (the
    spec's ``cosim`` overrides sharpen the Dirichlet label skew) — the
    client-diversity effect of the paper's Figure-4 contention study, now
    measurable as time-to-accuracy per policy;

* four **network-degradation** scenarios exercising the supply/network axis
  (lossy retried uplinks, periodic link flaps, a regional
  partition-and-heal, static link-speed tiers) — judged primarily on the
  round-completion-time (FCT-analogue) distribution rather than mean JCT.

See ``docs/SCENARIOS.md`` for knob-by-knob descriptions and for how to add a
scenario of your own.
"""

from __future__ import annotations

from functools import partial

from ..traces.workloads import BIAS_SCENARIOS, DEMAND_SCENARIOS
from .registry import register_scenario
from .spec import ScenarioSpec
from .transforms import (
    assign_priority_tiers,
    compress_arrivals,
    inject_churn_storms,
    regional_outage,
)

#: Names of the beyond-paper scenarios, in doc order.
BEYOND_PAPER_SCENARIOS = (
    "flash_crowd",
    "churn_storm",
    "straggler_heavy",
    "multi_tenant",
    "non_iid_contention",
)

#: Names of the network-degradation scenarios, in doc order.
NETWORK_SCENARIOS = (
    "lossy_uplink",
    "link_flaps",
    "regional_outage",
    "tiered_links",
)


def _register_paper_scenarios() -> None:
    for scenario in DEMAND_SCENARIOS:
        register_scenario(
            ScenarioSpec(
                name=scenario,
                description=f"§5.1 demand scenario {scenario!r}",
                workload={"scenario": scenario, "category_bias": None},
                tags=("paper", "demand"),
            )
        )
    for bias in BIAS_SCENARIOS:
        register_scenario(
            ScenarioSpec(
                name=bias,
                description=f"§5.4 category-biased workload {bias!r}",
                workload={"scenario": "even", "category_bias": bias},
                tags=("paper", "bias"),
            )
        )


def _register_beyond_paper_scenarios() -> None:
    register_scenario(
        ScenarioSpec(
            name="flash_crowd",
            description=(
                "70% of the jobs arrive in one 15-minute burst at 20% of the "
                "horizon, on top of the usual Poisson background arrivals"
            ),
            workload_transform=partial(
                compress_arrivals,
                burst_fraction=0.7,
                burst_at=0.2,
                burst_window=900.0,
            ),
            tags=("beyond-paper",),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="churn_storm",
            description=(
                "two 30-minute storms, evenly spaced, each knocking 80% of "
                "the devices offline simultaneously; survivors of a session "
                "re-check in when the storm passes"
            ),
            availability_transform=partial(
                inject_churn_storms,
                num_storms=2,
                storm_duration=1800.0,
                dropout_fraction=0.8,
            ),
            tags=("beyond-paper",),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="straggler_heavy",
            description=(
                "capacity distribution shifted towards weak hardware with a "
                "14x worst-case slowdown and noisier per-task compute times "
                "— rounds wait on a long straggler tail"
            ),
            capacity={
                "cpu_mu": -0.75,
                "mem_mu": -0.6,
                "sigma": 0.65,
                "max_slowdown": 14.0,
            },
            latency={"compute_sigma": 0.6},
            tags=("beyond-paper",),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="non_iid_contention",
            description=(
                "half the high-demand workload bursts onto the pool at 10% "
                "of the horizon over a fast background arrival process — "
                "reporting sets shrink and lose client diversity under "
                "contention; in co-sim mode the federated data is sharply "
                "non-IID (dirichlet_alpha=0.1) so that diversity loss "
                "directly slows time-to-accuracy"
            ),
            workload={"scenario": "high", "mean_interarrival": 450.0},
            workload_transform=partial(
                compress_arrivals,
                burst_fraction=0.5,
                burst_at=0.1,
                burst_window=1200.0,
            ),
            cosim={"dataset": {"dirichlet_alpha": 0.1, "client_shift": 0.8}},
            tags=("beyond-paper", "cosim"),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="multi_tenant",
            description=(
                "gold/silver/bronze tenant tiers (20/30/50% of jobs) with "
                "0.6x/1.0x/1.5x round deadlines; Venn quantises supply into "
                "6 device tiers to discriminate better between tenants"
            ),
            workload_transform=partial(assign_priority_tiers),
            policy_kwargs={"venn": {"num_tiers": 6}},
            tags=("beyond-paper",),
        )
    )


def _register_network_scenarios() -> None:
    register_scenario(
        ScenarioSpec(
            name="lossy_uplink",
            description=(
                "12% uplink loss on every report with up to 3 retries — each "
                "lost attempt re-pays the transfer time, and a report that "
                "exhausts its retries counts as a dropout; the round-"
                "completion-time (RCT) tail stretches long before mean JCT "
                "moves"
            ),
            latency={"loss_rate": 0.12, "max_retries": 3, "retry_backoff": 1.0},
            tags=("beyond-paper", "network"),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="link_flaps",
            description=(
                "periodic link flaps: every 4 hours the uplink degrades for "
                "20 minutes to a 60% loss rate (on top of a 2% baseline) — "
                "rounds unlucky enough to straddle a flap window retry their "
                "transfers or drop out in bursts"
            ),
            latency={
                "loss_rate": 0.02,
                "flap_period": 4 * 3600.0,
                "flap_duration": 1200.0,
                "flap_loss_rate": 0.6,
                "max_retries": 3,
            },
            tags=("beyond-paper", "network"),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="regional_outage",
            description=(
                "30% of the device population is partitioned off the network "
                "for 2 hours starting at 45% of the horizon; when the "
                "partition heals the whole region re-checks in at once — a "
                "synchronized thundering herd the planner must absorb"
            ),
            availability_transform=partial(
                regional_outage,
                region_fraction=0.3,
                outage_start=0.45,
                outage_duration=7200.0,
            ),
            tags=("beyond-paper", "network"),
        )
    )
    register_scenario(
        ScenarioSpec(
            name="tiered_links",
            description=(
                "fleet split into fiber/broadband/cellular link tiers "
                "(15/55/30% of devices, 0.35x/1.0x/2.6x transfer time) by a "
                "static per-device hash — comm time heterogeneity without "
                "touching compute capacity"
            ),
            latency={
                "link_tiers": (
                    ("fiber", 0.15, 0.35),
                    ("broadband", 0.55, 1.0),
                    ("cellular", 0.30, 2.6),
                ),
            },
            tags=("beyond-paper", "network"),
        )
    )


_register_paper_scenarios()
_register_beyond_paper_scenarios()
_register_network_scenarios()


__all__ = ["BEYOND_PAPER_SCENARIOS", "NETWORK_SCENARIOS"]
