"""Declarative scenario specifications.

A :class:`ScenarioSpec` bundles everything that makes one evaluation scenario
different from the preset baseline: overrides for the trace generators
(availability, capacity), the workload shape, the simulation engine, plus
optional *transforms* that post-process the generated workload or
availability trace (e.g. compressing job arrivals into a flash crowd, or
carving correlated dropout storms out of the availability sessions).

Scenarios **compose** the existing generators in :mod:`repro.traces` rather
than duplicating them: a spec is applied to a base
:class:`~repro.experiments.config.ExperimentConfig` (typically one of the
``quick``/``default``/``large`` presets), producing a derived config whose
nested generator configs carry the scenario's knobs; transforms then reshape
the generated artefacts deterministically using the config's dedicated
``scenario`` RNG stream.

The module deliberately knows nothing about *which* scenarios exist — the
registry (:mod:`repro.scenarios.registry`) and the built-in library
(:mod:`repro.scenarios.library`) layer on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Tuple

import numpy as np

from ..experiments.config import ExperimentConfig
from ..experiments.environment import Environment, build_environment
from ..traces.device_trace import DeviceAvailabilityTrace
from ..traces.workloads import Workload

#: Transforms see the generated artefact, the scenario RNG stream and the
#: resolved experiment config (for horizon-relative knobs).
WorkloadTransform = Callable[
    [Workload, np.random.Generator, ExperimentConfig], Workload
]
AvailabilityTransform = Callable[
    [DeviceAvailabilityTrace, np.random.Generator, ExperimentConfig],
    DeviceAvailabilityTrace,
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named evaluation scenario, declaratively.

    All override mappings hold keyword arguments for ``dataclasses.replace``
    on the corresponding nested config (unknown keys therefore fail fast).
    ``num_devices`` / ``num_jobs`` / ``horizon`` override the top-level
    experiment knobs; ``__post_init__`` of the config keeps the nested
    configs consistent with them — which is also why nested overrides of
    the keys it owns (``workload.num_jobs``, ``availability.horizon``,
    ``simulation.horizon``/``seed``) are rejected at construction: they
    would be silently clobbered otherwise.
    """

    name: str
    description: str = ""
    #: Top-level experiment knob overrides (``None`` keeps the base value).
    num_devices: Optional[int] = None
    num_jobs: Optional[int] = None
    horizon: Optional[float] = None
    #: ``dataclasses.replace`` overrides for the nested configs.
    workload: Mapping[str, object] = field(default_factory=dict)
    availability: Mapping[str, object] = field(default_factory=dict)
    capacity: Mapping[str, object] = field(default_factory=dict)
    simulation: Mapping[str, object] = field(default_factory=dict)
    #: Overrides for ``SimulationConfig.latency`` (kept separate so a
    #: scenario can tweak the latency model without restating the rest).
    latency: Mapping[str, object] = field(default_factory=dict)
    #: Post-generation transforms (see module docstring).  Must be
    #: picklable — module-level functions or ``functools.partial`` of them —
    #: so sweep workers can rebuild scenarios by name in subprocesses.
    workload_transform: Optional[WorkloadTransform] = None
    availability_transform: Optional[AvailabilityTransform] = None
    #: Extra keyword arguments per policy name, merged into ``make_policy``
    #: calls (e.g. ``{"venn": {"num_tiers": 6}}`` for a tiering scenario).
    policy_kwargs: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    #: Overrides for the federated co-simulation layer, applied to
    #: :class:`~repro.cosim.CoSimConfig` via ``with_overrides`` when the
    #: scenario runs in co-sim mode (``sweep --cosim``); the special
    #: ``"dataset"`` key nests :class:`~repro.fl.datasets.
    #: FederatedDataConfig` overrides (e.g. a smaller ``dirichlet_alpha``
    #: for harsher non-IID-ness).  Plain scheduling runs ignore it.
    cosim: Mapping[str, object] = field(default_factory=dict)
    #: Free-form labels ("paper", "beyond-paper", ...) used for selection.
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        for knob, value in (
            ("num_devices", self.num_devices),
            ("num_jobs", self.num_jobs),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{knob} override must be positive")
        if self.horizon is not None and self.horizon <= 0:
            raise ValueError("horizon override must be positive")
        self._check_owned_keys()

    # ------------------------------------------------------------------ #
    # Config derivation
    # ------------------------------------------------------------------ #
    #: Nested-config keys that ``ExperimentConfig.__post_init__`` re-derives
    #: from the top-level knobs — an override there would be silently
    #: clobbered, so ``apply`` rejects them with a pointer to the right knob.
    _OWNED_KEYS = {
        "workload": {"num_jobs": "the ScenarioSpec.num_jobs field"},
        "availability": {"horizon": "the ScenarioSpec.horizon field"},
        "simulation": {
            "horizon": "the ScenarioSpec.horizon field",
            "seed": "the experiment root seed (derived per sweep cell)",
        },
    }

    def _check_owned_keys(self) -> None:
        for section, owned in self._OWNED_KEYS.items():
            overrides = getattr(self, section)
            for key, owner in owned.items():
                if key in overrides:
                    raise ValueError(
                        f"scenario {self.name!r}: {section}[{key!r}] is "
                        f"derived from {owner} and would be silently "
                        f"overwritten — set it there instead"
                    )

    def apply(self, base: ExperimentConfig) -> ExperimentConfig:
        """The base config with this scenario's overrides folded in."""
        top: dict = {"name": f"{base.name}/{self.name}"}
        if self.num_devices is not None:
            top["num_devices"] = self.num_devices
        if self.num_jobs is not None:
            top["num_jobs"] = self.num_jobs
        if self.horizon is not None:
            top["horizon"] = self.horizon
        simulation = base.simulation
        if self.latency:
            simulation = replace(
                simulation, latency=replace(simulation.latency, **dict(self.latency))
            )
        if self.simulation:
            simulation = replace(simulation, **dict(self.simulation))
        return replace(
            base,
            workload=replace(base.workload, **dict(self.workload)),
            availability=replace(base.availability, **dict(self.availability)),
            capacity=replace(base.capacity, **dict(self.capacity)),
            simulation=simulation,
            **top,
        )

    # ------------------------------------------------------------------ #
    # Environment building
    # ------------------------------------------------------------------ #
    def build_environment(self, base: ExperimentConfig) -> Environment:
        """Materialise the scenario against ``base``.

        Generation uses the usual per-component seed streams; both transforms
        share the config's dedicated ``scenario`` stream, drawn in a fixed
        order (availability first, then workload) so one root seed pins the
        whole scenario bit-for-bit.
        """
        config = self.apply(base)
        env = build_environment(config)
        if self.availability_transform is None and self.workload_transform is None:
            return env
        rng = np.random.default_rng(config.seed_sequence("scenario"))
        availability = env.availability
        workload = env.workload
        if self.availability_transform is not None:
            availability = self.availability_transform(availability, rng, config)
        if self.workload_transform is not None:
            workload = self.workload_transform(workload, rng, config)
        return Environment(
            config=config,
            devices=env.devices,
            availability=availability,
            workload=workload,
        )


def validate_environment(env: Environment) -> None:
    """Schema validation of a materialised environment.

    Raises ``AssertionError`` with a descriptive message on the first
    violation.  Used by the property tests (every registered scenario must
    produce a valid environment for arbitrary configs) and cheap enough to
    run after any custom transform.
    """
    config = env.config
    device_ids = {d.device_id for d in env.devices}
    assert len(device_ids) == len(env.devices), "duplicate device ids"
    assert len(env.devices) == config.num_devices, "device count mismatch"
    horizon = config.horizon
    for s in env.availability.sessions:
        assert s.device_id in device_ids, f"session for unknown device {s.device_id}"
        assert 0.0 <= s.start < s.end, "session bounds out of order"
        assert s.end <= horizon + 1e-9, "session extends past the horizon"
    assert env.availability.horizon == horizon, "trace horizon mismatch"
    job_ids = set()
    for job in env.workload.jobs:
        assert job.job_id not in job_ids, f"duplicate job id {job.job_id}"
        job_ids.add(job.job_id)
        assert job.demand_per_round > 0, "non-positive demand"
        assert job.num_rounds > 0, "non-positive round count"
        assert job.arrival_time >= 0.0, "negative arrival time"
        assert job.round_deadline > 0.0, "non-positive deadline"
        assert 0.0 < job.min_report_fraction <= 1.0, "bad report fraction"
        assert env.workload.categories.get(job.job_id), (
            f"job {job.job_id} missing category"
        )
    assert len(env.workload.jobs) == config.num_jobs, "job count mismatch"


__all__ = [
    "AvailabilityTransform",
    "ScenarioSpec",
    "WorkloadTransform",
    "validate_environment",
]
