"""Workload / availability transforms used by the scenario library.

Each transform is a pure, module-level function (picklable for the sweep's
worker processes) with the :data:`~repro.scenarios.spec.WorkloadTransform` or
:data:`~repro.scenarios.spec.AvailabilityTransform` signature.  Scenario
specs bind knobs with :func:`functools.partial`.

Transforms only *reshape* artefacts produced by the generators in
:mod:`repro.traces` — they never fabricate devices or jobs from scratch, so
every invariant the generators guarantee (unique ids, positive demands,
sessions inside the horizon) is preserved by construction and re-checked by
:func:`repro.scenarios.spec.validate_environment` in the property tests.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple

import numpy as np

from ..experiments.config import ExperimentConfig
from ..traces.device_trace import AvailabilitySession, DeviceAvailabilityTrace
from ..traces.workloads import Workload


def compress_arrivals(
    workload: Workload,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    burst_fraction: float = 0.7,
    burst_at: float = 0.2,
    burst_window: float = 900.0,
) -> Workload:
    """Flash crowd: herd a fraction of the jobs into one arrival burst.

    Each job joins the burst independently with probability
    ``burst_fraction``; burst arrivals are redrawn uniformly inside the
    ``burst_window``-second window starting at ``burst_at × horizon``.
    Non-burst jobs keep their Poisson arrival times, so the scenario layers a
    flash crowd *on top of* the background process instead of replacing it.
    Burst arrivals never leave the horizon: the window is clamped to the
    remaining ``horizon - start``, however small that is.
    """
    if not (0.0 < burst_fraction <= 1.0):
        raise ValueError("burst_fraction must be in (0, 1]")
    if not (0.0 <= burst_at < 1.0):
        raise ValueError("burst_at must be in [0, 1)")
    if burst_window <= 0:
        raise ValueError("burst_window must be positive")
    start = burst_at * config.horizon
    # Clamp to the remaining horizon with no floor: the old
    # ``max(horizon - start, 1.0)`` floor let a late burst (burst_at → 1)
    # redraw arrivals past the horizon, violating the documented
    # "arrivals inside the horizon" invariant.
    window = min(burst_window, config.horizon - start)
    jobs = []
    for job in workload.jobs:
        if rng.random() < burst_fraction:
            jobs.append(
                replace(job, arrival_time=float(start + rng.uniform(0.0, window)))
            )
        else:
            jobs.append(job)
    return Workload(
        config=workload.config,
        jobs=jobs,
        trace=workload.trace,
        categories=dict(workload.categories),
    )


def storm_windows(
    horizon: float, num_storms: int, storm_duration: float
) -> Tuple[Tuple[float, float], ...]:
    """Evenly spaced, *disjoint* storm windows across ``horizon``.

    Window ``i`` is centred at ``horizon × (i + 1) / (num_storms + 1)`` and
    clipped to the horizon.  When ``num_storms × storm_duration`` exceeds
    the inter-centre spacing the raw windows overlap; overlapping (or
    touching) windows are coalesced into one, so callers always see a
    sorted tuple of non-overlapping ``(start, end)`` intervals.  Without
    the merge, a later window re-truncates sessions an earlier window
    already resumed at its end, producing spurious zero-length-progress
    check-ins right at storm boundaries.
    """
    if num_storms <= 0:
        raise ValueError("num_storms must be positive")
    if storm_duration <= 0:
        raise ValueError("storm_duration must be positive")
    raw = []
    for i in range(num_storms):
        centre = horizon * (i + 1) / (num_storms + 1)
        start = max(0.0, centre - storm_duration / 2.0)
        end = min(horizon, start + storm_duration)
        if end > start:
            raw.append((start, end))
    merged: list = []
    for start, end in raw:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


def _clip_sessions(
    sessions: Sequence[AvailabilitySession],
    affected: frozenset,
    window_start: float,
    window_end: float,
) -> list:
    """Remove ``[window_start, window_end)`` from the affected devices'
    sessions: a session spanning the window is truncated at its start and
    resumes (a fresh check-in) at its end."""
    survivors = []
    for s in sessions:
        if (
            s.device_id not in affected
            or s.end <= window_start
            or s.start >= window_end
        ):
            survivors.append(s)
            continue
        if s.start < window_start:
            survivors.append(
                AvailabilitySession(s.device_id, s.start, window_start)
            )
        if s.end > window_end:
            survivors.append(AvailabilitySession(s.device_id, window_end, s.end))
    return survivors


def inject_churn_storms(
    trace: DeviceAvailabilityTrace,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    num_storms: int = 2,
    storm_duration: float = 1800.0,
    dropout_fraction: float = 0.8,
) -> DeviceAvailabilityTrace:
    """Churn storm: correlated mass dropouts at fixed points in the horizon.

    ``num_storms`` windows of ``storm_duration`` seconds are spaced evenly
    across the horizon (overlapping windows coalesce — see
    :func:`storm_windows`).  During each window every device is affected
    independently with probability ``dropout_fraction``: its sessions are
    truncated at the storm's start and resume (as a fresh session, i.e. a new
    check-in) at the storm's end.  Devices already offline are unaffected —
    the storm models a push gone wrong / network partition, not a blackout of
    the whole population.
    """
    if not (0.0 < dropout_fraction <= 1.0):
        raise ValueError("dropout_fraction must be in (0, 1]")
    horizon = trace.horizon
    windows = storm_windows(horizon, num_storms, storm_duration)
    sessions = list(trace.sessions)
    device_ids = sorted({s.device_id for s in sessions})
    for storm_start, storm_end in windows:
        affected = frozenset(
            d for d in device_ids if rng.random() < dropout_fraction
        )
        sessions = _clip_sessions(sessions, affected, storm_start, storm_end)
    return DeviceAvailabilityTrace(horizon=horizon, sessions=sessions)


def regional_outage(
    trace: DeviceAvailabilityTrace,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    region_fraction: float = 0.3,
    outage_start: float = 0.45,
    outage_duration: float = 7200.0,
) -> DeviceAvailabilityTrace:
    """Regional outage: partition one region off the network, then heal.

    A random ``region_fraction`` of the device population (one draw per
    device, in device-id order) forms the "region".  From
    ``outage_start × horizon`` the region is partitioned away — its sessions
    are truncated at the outage start — and when the partition heals
    ``outage_duration`` seconds later every surviving session resumes as a
    fresh check-in.  Devices outside the region never notice.  The healing
    edge is the interesting part for a scheduler: a synchronized thundering
    herd of check-ins from an entire region at once.
    """
    if not (0.0 < region_fraction <= 1.0):
        raise ValueError("region_fraction must be in (0, 1]")
    if not (0.0 <= outage_start < 1.0):
        raise ValueError("outage_start must be in [0, 1)")
    if outage_duration <= 0:
        raise ValueError("outage_duration must be positive")
    horizon = trace.horizon
    start = outage_start * horizon
    end = min(horizon, start + outage_duration)
    sessions = list(trace.sessions)
    device_ids = sorted({s.device_id for s in sessions})
    region = frozenset(d for d in device_ids if rng.random() < region_fraction)
    if end > start:
        sessions = _clip_sessions(sessions, region, start, end)
    return DeviceAvailabilityTrace(horizon=horizon, sessions=sessions)


def chain_availability_transforms(
    trace: DeviceAvailabilityTrace,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    transforms: Sequence,
) -> DeviceAvailabilityTrace:
    """Apply several availability transforms in sequence (fuzzer helper).

    ``ScenarioSpec`` holds a single ``availability_transform`` slot; the
    fuzzer composes stacked transforms by binding this with
    ``partial(chain_availability_transforms, transforms=(...))`` — a
    module-level function over module-level partials, so the composition
    stays picklable for sweep workers.
    """
    for transform in transforms:
        trace = transform(trace, rng, config)
    return trace


def chain_workload_transforms(
    workload: Workload,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    transforms: Sequence,
) -> Workload:
    """Apply several workload transforms in sequence (fuzzer helper)."""
    for transform in transforms:
        workload = transform(workload, rng, config)
    return workload


#: ``(tier name, population fraction, round-deadline scale)`` triples.  Gold
#: tenants get tight deadlines (they abort rather than wait), bronze tenants
#: tolerate slack ones.
DEFAULT_TIERS: Tuple[Tuple[str, float, float], ...] = (
    ("gold", 0.2, 0.6),
    ("silver", 0.3, 1.0),
    ("bronze", 0.5, 1.5),
)


def assign_priority_tiers(
    workload: Workload,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    tiers: Sequence[Tuple[str, float, float]] = DEFAULT_TIERS,
) -> Workload:
    """Multi-tenant tiers: split jobs across tenant classes by deadline.

    Every job is assigned a tier by sampling the tier fractions; its
    per-round deadline is scaled by the tier's factor and its name prefixed
    with the tier so per-tier slices can be recovered from metrics rows.
    """
    if not tiers:
        raise ValueError("need at least one tier")
    fractions = np.array([f for _, f, _ in tiers], dtype=float)
    if np.any(fractions <= 0) or not np.isclose(fractions.sum(), 1.0):
        raise ValueError("tier fractions must be positive and sum to 1")
    for _, _, scale in tiers:
        if scale <= 0:
            raise ValueError("deadline scales must be positive")
    cumulative = np.cumsum(fractions)
    jobs = []
    for job in workload.jobs:
        draw = rng.random()
        tier_idx = int(np.searchsorted(cumulative, draw, side="right"))
        tier_idx = min(tier_idx, len(tiers) - 1)
        tier_name, _, scale = tiers[tier_idx]
        jobs.append(
            replace(
                job,
                round_deadline=job.round_deadline * scale,
                name=f"{tier_name}:{job.name}",
            )
        )
    return Workload(
        config=workload.config,
        jobs=jobs,
        trace=workload.trace,
        categories=dict(workload.categories),
    )


__all__ = [
    "DEFAULT_TIERS",
    "assign_priority_tiers",
    "chain_availability_transforms",
    "chain_workload_transforms",
    "compress_arrivals",
    "inject_churn_storms",
    "regional_outage",
    "storm_windows",
]
