"""Workload / availability transforms used by the scenario library.

Each transform is a pure, module-level function (picklable for the sweep's
worker processes) with the :data:`~repro.scenarios.spec.WorkloadTransform` or
:data:`~repro.scenarios.spec.AvailabilityTransform` signature.  Scenario
specs bind knobs with :func:`functools.partial`.

Transforms only *reshape* artefacts produced by the generators in
:mod:`repro.traces` — they never fabricate devices or jobs from scratch, so
every invariant the generators guarantee (unique ids, positive demands,
sessions inside the horizon) is preserved by construction and re-checked by
:func:`repro.scenarios.spec.validate_environment` in the property tests.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence, Tuple

import numpy as np

from ..experiments.config import ExperimentConfig
from ..traces.device_trace import AvailabilitySession, DeviceAvailabilityTrace
from ..traces.workloads import Workload


def compress_arrivals(
    workload: Workload,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    burst_fraction: float = 0.7,
    burst_at: float = 0.2,
    burst_window: float = 900.0,
) -> Workload:
    """Flash crowd: herd a fraction of the jobs into one arrival burst.

    Each job joins the burst independently with probability
    ``burst_fraction``; burst arrivals are redrawn uniformly inside the
    ``burst_window``-second window starting at ``burst_at × horizon``.
    Non-burst jobs keep their Poisson arrival times, so the scenario layers a
    flash crowd *on top of* the background process instead of replacing it.
    """
    if not (0.0 < burst_fraction <= 1.0):
        raise ValueError("burst_fraction must be in (0, 1]")
    if not (0.0 <= burst_at < 1.0):
        raise ValueError("burst_at must be in [0, 1)")
    if burst_window <= 0:
        raise ValueError("burst_window must be positive")
    start = burst_at * config.horizon
    window = min(burst_window, max(config.horizon - start, 1.0))
    jobs = []
    for job in workload.jobs:
        if rng.random() < burst_fraction:
            jobs.append(
                replace(job, arrival_time=float(start + rng.uniform(0.0, window)))
            )
        else:
            jobs.append(job)
    return Workload(
        config=workload.config,
        jobs=jobs,
        trace=workload.trace,
        categories=dict(workload.categories),
    )


def inject_churn_storms(
    trace: DeviceAvailabilityTrace,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    num_storms: int = 2,
    storm_duration: float = 1800.0,
    dropout_fraction: float = 0.8,
) -> DeviceAvailabilityTrace:
    """Churn storm: correlated mass dropouts at fixed points in the horizon.

    ``num_storms`` windows of ``storm_duration`` seconds are spaced evenly
    across the horizon.  During each window every device is affected
    independently with probability ``dropout_fraction``: its sessions are
    truncated at the storm's start and resume (as a fresh session, i.e. a new
    check-in) at the storm's end.  Devices already offline are unaffected —
    the storm models a push gone wrong / network partition, not a blackout of
    the whole population.
    """
    if num_storms <= 0:
        raise ValueError("num_storms must be positive")
    if storm_duration <= 0:
        raise ValueError("storm_duration must be positive")
    if not (0.0 < dropout_fraction <= 1.0):
        raise ValueError("dropout_fraction must be in (0, 1]")
    horizon = trace.horizon
    windows = []
    for i in range(num_storms):
        centre = horizon * (i + 1) / (num_storms + 1)
        start = max(0.0, centre - storm_duration / 2.0)
        end = min(horizon, start + storm_duration)
        if end > start:
            windows.append((start, end))
    sessions = list(trace.sessions)
    device_ids = sorted({s.device_id for s in sessions})
    for storm_start, storm_end in windows:
        affected = {
            d for d in device_ids if rng.random() < dropout_fraction
        }
        survivors = []
        for s in sessions:
            if (
                s.device_id not in affected
                or s.end <= storm_start
                or s.start >= storm_end
            ):
                survivors.append(s)
                continue
            if s.start < storm_start:
                survivors.append(
                    AvailabilitySession(s.device_id, s.start, storm_start)
                )
            if s.end > storm_end:
                survivors.append(AvailabilitySession(s.device_id, storm_end, s.end))
        sessions = survivors
    return DeviceAvailabilityTrace(horizon=horizon, sessions=sessions)


#: ``(tier name, population fraction, round-deadline scale)`` triples.  Gold
#: tenants get tight deadlines (they abort rather than wait), bronze tenants
#: tolerate slack ones.
DEFAULT_TIERS: Tuple[Tuple[str, float, float], ...] = (
    ("gold", 0.2, 0.6),
    ("silver", 0.3, 1.0),
    ("bronze", 0.5, 1.5),
)


def assign_priority_tiers(
    workload: Workload,
    rng: np.random.Generator,
    config: ExperimentConfig,
    *,
    tiers: Sequence[Tuple[str, float, float]] = DEFAULT_TIERS,
) -> Workload:
    """Multi-tenant tiers: split jobs across tenant classes by deadline.

    Every job is assigned a tier by sampling the tier fractions; its
    per-round deadline is scaled by the tier's factor and its name prefixed
    with the tier so per-tier slices can be recovered from metrics rows.
    """
    if not tiers:
        raise ValueError("need at least one tier")
    fractions = np.array([f for _, f, _ in tiers], dtype=float)
    if np.any(fractions <= 0) or not np.isclose(fractions.sum(), 1.0):
        raise ValueError("tier fractions must be positive and sum to 1")
    for _, _, scale in tiers:
        if scale <= 0:
            raise ValueError("deadline scales must be positive")
    cumulative = np.cumsum(fractions)
    jobs = []
    for job in workload.jobs:
        draw = rng.random()
        tier_idx = int(np.searchsorted(cumulative, draw, side="right"))
        tier_idx = min(tier_idx, len(tiers) - 1)
        tier_name, _, scale = tiers[tier_idx]
        jobs.append(
            replace(
                job,
                round_deadline=job.round_deadline * scale,
                name=f"{tier_name}:{job.name}",
            )
        )
    return Workload(
        config=workload.config,
        jobs=jobs,
        trace=workload.trace,
        categories=dict(workload.categories),
    )


__all__ = [
    "DEFAULT_TIERS",
    "assign_priority_tiers",
    "compress_arrivals",
    "inject_churn_storms",
]
