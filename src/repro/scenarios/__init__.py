"""Declarative scenario subsystem: specs, registry and built-in library.

Importing the package registers the built-in scenarios, so

>>> from repro.scenarios import get_scenario
>>> get_scenario("flash_crowd")

works without further setup.  See ``docs/SCENARIOS.md``.
"""

from .library import BEYOND_PAPER_SCENARIOS, NETWORK_SCENARIOS
from .registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from .spec import (
    AvailabilityTransform,
    ScenarioSpec,
    WorkloadTransform,
    validate_environment,
)
from .transforms import (
    DEFAULT_TIERS,
    assign_priority_tiers,
    chain_availability_transforms,
    chain_workload_transforms,
    compress_arrivals,
    inject_churn_storms,
    regional_outage,
    storm_windows,
)

__all__ = [
    "AvailabilityTransform",
    "BEYOND_PAPER_SCENARIOS",
    "DEFAULT_TIERS",
    "NETWORK_SCENARIOS",
    "ScenarioSpec",
    "WorkloadTransform",
    "all_scenarios",
    "assign_priority_tiers",
    "chain_availability_transforms",
    "chain_workload_transforms",
    "compress_arrivals",
    "get_scenario",
    "inject_churn_storms",
    "regional_outage",
    "register_scenario",
    "scenario_names",
    "storm_windows",
    "unregister_scenario",
    "validate_environment",
]
