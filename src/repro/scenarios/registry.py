"""Registry of named scenarios.

The registry is the lookup layer between scenario *names* (what the sweep
CLI, JSONL rows and docs speak) and :class:`~repro.scenarios.spec.ScenarioSpec`
objects.  Sweep workers resolve scenarios by name inside the subprocess, so
only strings ever cross the process boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (also usable as a plain function call).

    Registering a name twice is an error unless ``overwrite=True`` — silent
    shadowing of a built-in scenario would make sweep rows ambiguous.
    """
    if not overwrite and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario (mainly for tests registering temporary specs)."""
    _REGISTRY.pop(name, None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name, with a helpful error for typos."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def scenario_names(tag: Optional[str] = None) -> List[str]:
    """Sorted registered names, optionally filtered by tag."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(name for name, s in _REGISTRY.items() if tag in s.tags)


def all_scenarios() -> Dict[str, ScenarioSpec]:
    """Snapshot of the registry (name -> spec)."""
    return dict(_REGISTRY)


__all__ = [
    "all_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "unregister_scenario",
]
