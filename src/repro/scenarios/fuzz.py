"""Scenario fuzzer: random ``ScenarioSpec`` compositions vs engine invariants.

The scenario layer grows by axes (demand bursts, churn, stragglers, network
degradation, ...) and every axis multiplies the space of *compositions* no
hand-written test enumerates.  This module samples that space with
hypothesis: random scenario specs — stacked availability/workload
transforms, extreme latency knobs, degenerate horizons — are materialised
against random base configs and checked against the invariants the rest of
the repo relies on:

* the environment is schema-valid (``validate_environment``: sessions inside
  the horizon, unique ids, positive demands, ...);
* transforms never move a job arrival past the horizon (the base Poisson
  process may legitimately overshoot it, so the check compares against a
  transform-free twin environment rather than asserting a blanket bound);
* a short simulation produces finite, non-negative metrics (JCTs,
  round-completion times, rates);
* the metrics row is **byte-identical across shard counts** — and, on
  request, across sweep worker counts and across the scalar vs vectorized
  dispatch paths (``--vectorized`` twin mode) — extending the determinism
  contract of ``docs/ARCHITECTURE.md`` to every sampled composition.

Shrunk failing examples graduate into pinned regression tests
(``tests/scenarios/test_fuzz_regressions.py``); the ``compress_arrivals``
horizon overflow and the ``inject_churn_storms`` window overlap were both
found this way.

Run it from the command line (CI runs a fixed smoke budget)::

    PYTHONPATH=src python -m repro.scenarios.fuzz --budget 25 --seed 0
    PYTHONPATH=src python -m repro.scenarios.fuzz --budget 5 --check-workers
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import replace
from functools import partial
from typing import Optional, Sequence, Tuple

from hypothesis import HealthCheck, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings
from hypothesis import strategies as st

from ..analysis.aggregate import metrics_row
from ..experiments.config import ExperimentConfig, quick_config
from ..experiments.endtoend import run_policy
from .registry import register_scenario, unregister_scenario
from .spec import ScenarioSpec, validate_environment
from .transforms import (
    assign_priority_tiers,
    chain_availability_transforms,
    chain_workload_transforms,
    compress_arrivals,
    inject_churn_storms,
    regional_outage,
)

DAY = 24 * 3600.0

#: Policy used for the invariant-checking runs.  FIFO is the cheapest
#: scheduler in the repo and exercises the whole engine/metrics path; the
#: identity properties hold per policy, so one is enough for fuzzing.
FUZZ_POLICY = "fifo"

#: Link-tier tables offered to the latency-override strategy (fractions must
#: sum to 1, so free-form float sampling would mostly produce invalid
#: tables; degenerate single-tier and extreme-scale tables are included on
#: purpose).
_TIER_TABLES: Tuple[Tuple[Tuple[str, float, float], ...], ...] = (
    (("only", 1.0, 1.0),),
    (("fast", 0.5, 0.1), ("slow", 0.5, 10.0)),
    (("fiber", 0.15, 0.35), ("broadband", 0.55, 1.0), ("cellular", 0.3, 2.6)),
    (("a", 0.25, 0.5), ("b", 0.25, 1.0), ("c", 0.25, 2.0), ("d", 0.25, 8.0)),
)


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def _availability_transforms() -> st.SearchStrategy:
    churn = st.builds(
        lambda **kw: partial(inject_churn_storms, **kw),
        num_storms=st.integers(min_value=1, max_value=8),
        storm_duration=st.floats(min_value=60.0, max_value=6 * 3600.0),
        dropout_fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    outage = st.builds(
        lambda **kw: partial(regional_outage, **kw),
        region_fraction=st.floats(min_value=0.05, max_value=1.0),
        outage_start=st.floats(min_value=0.0, max_value=0.999),
        outage_duration=st.floats(min_value=60.0, max_value=12 * 3600.0),
    )
    return st.one_of(churn, outage)


def _workload_transforms() -> st.SearchStrategy:
    burst = st.builds(
        lambda **kw: partial(compress_arrivals, **kw),
        burst_fraction=st.floats(min_value=0.05, max_value=1.0),
        # burst_at close to 1.0 is the regime that exposed the
        # horizon-overflow bug; keep it reachable.
        burst_at=st.floats(min_value=0.0, max_value=0.999),
        burst_window=st.floats(min_value=1.0, max_value=7200.0),
    )
    tiers = st.just(partial(assign_priority_tiers))
    return st.one_of(burst, tiers)


@st.composite
def latency_overrides(draw) -> dict:
    """Random (possibly empty) ``ScenarioSpec.latency`` override mapping."""
    overrides: dict = {}
    if draw(st.booleans()):
        overrides["loss_rate"] = draw(st.floats(min_value=0.0, max_value=0.95))
        overrides["max_retries"] = draw(st.integers(min_value=0, max_value=5))
        overrides["retry_backoff"] = draw(
            st.floats(min_value=0.1, max_value=3.0)
        )
    if draw(st.booleans()):
        # flap_duration requires a positive flap_period; draw them together.
        period = draw(st.floats(min_value=600.0, max_value=8 * 3600.0))
        overrides["flap_period"] = period
        overrides["flap_duration"] = draw(
            st.floats(min_value=30.0, max_value=period)
        )
        overrides["flap_loss_rate"] = draw(
            st.floats(min_value=0.0, max_value=1.0)
        )
    if draw(st.booleans()):
        overrides["link_tiers"] = draw(st.sampled_from(_TIER_TABLES))
    return overrides


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    """Random scenario composition: 0-2 stacked transforms per axis plus
    latency-knob overrides, chained through the picklable ``chain_*``
    helpers so the sampled spec could be registered and swept as-is."""
    avail = draw(st.lists(_availability_transforms(), max_size=2))
    work = draw(st.lists(_workload_transforms(), max_size=2))
    return ScenarioSpec(
        name="fuzz",
        description="fuzzer-generated scenario composition",
        latency=draw(latency_overrides()),
        availability_transform=(
            partial(chain_availability_transforms, transforms=tuple(avail))
            if avail
            else None
        ),
        workload_transform=(
            partial(chain_workload_transforms, transforms=tuple(work))
            if work
            else None
        ),
        tags=("fuzz",),
    )


@st.composite
def base_configs(draw) -> ExperimentConfig:
    """Small random base configs, horizons from degenerate (15 min) to a
    full day."""
    base = quick_config(seed=draw(st.integers(min_value=0, max_value=2**31 - 1)))
    return replace(
        base,
        num_devices=draw(st.integers(min_value=15, max_value=60)),
        num_jobs=draw(st.integers(min_value=1, max_value=6)),
        horizon=draw(st.floats(min_value=900.0, max_value=DAY)),
        workload=replace(base.workload, trace_size=40),
    )


# --------------------------------------------------------------------------- #
# Invariant checks
# --------------------------------------------------------------------------- #
def _check_transformed_arrivals(spec: ScenarioSpec, env, config) -> None:
    """A workload transform must not move an arrival past the horizon.

    The base Poisson process is *allowed* to overshoot the horizon (its
    arrivals are a cumulative sum of exponential gaps), so compare against a
    transform-free twin environment: only arrivals the transform actually
    changed must land inside the horizon.
    """
    if spec.workload_transform is None:
        return
    twin = replace(spec, workload_transform=None).build_environment(config)
    untouched = {j.job_id: j.arrival_time for j in twin.workload.jobs}
    for job in env.workload.jobs:
        if job.arrival_time == untouched.get(job.job_id):
            continue
        assert 0.0 <= job.arrival_time <= config.horizon + 1e-9, (
            f"transform moved job {job.job_id} arrival to {job.arrival_time} "
            f"outside [0, {config.horizon}]"
        )


def _check_row_sane(row: dict) -> None:
    """Metrics must be finite; durations and JCTs non-negative."""
    for key in ("sla_attainment", "error_rate", "completion_rate"):
        assert math.isfinite(row[key]), f"{key} is not finite: {row[key]}"
        assert row[key] >= 0.0, f"{key} is negative: {row[key]}"
    for jct in row["job_jcts"]:
        assert math.isfinite(jct) and jct >= 0.0, f"bad JCT {jct}"
    for duration in row["round_durations"]:
        assert math.isfinite(duration) and duration >= 0.0, (
            f"bad round duration {duration}"
        )


def check_scenario(
    spec: ScenarioSpec,
    base: ExperimentConfig,
    *,
    shards: Sequence[int] = (1, 2),
    check_workers: bool = False,
    vectorized: bool = False,
    policy: str = FUZZ_POLICY,
) -> None:
    """Assert every fuzzed invariant for one (spec, base config) pair.

    With ``vectorized=True``, every shard count additionally runs a twin on
    the struct-of-arrays hot path (``ExperimentConfig.with_vectorized``)
    whose metrics row must be byte-identical to the scalar run — the fuzz
    leg of the vectorized-identity contract.

    Raises ``AssertionError`` on the first violation; hypothesis shrinks
    the example, and the shrunk case belongs in
    ``tests/scenarios/test_fuzz_regressions.py``.
    """
    rows = {}
    for num_shards in shards:
        config = base.with_shards(num_shards)
        env = spec.build_environment(config)
        validate_environment(env)
        _check_transformed_arrivals(spec, env, config)
        metrics = run_policy(env, policy)
        row = metrics_row(spec.name, policy, metrics)
        _check_row_sane(row)
        rows[num_shards] = json.dumps(row, sort_keys=True)
        if vectorized:
            vec_env = spec.build_environment(config.with_vectorized(True))
            vec_metrics = run_policy(vec_env, policy)
            vec_row = json.dumps(
                metrics_row(spec.name, policy, vec_metrics), sort_keys=True
            )
            assert vec_row == rows[num_shards], (
                f"vectorized identity violated at num_shards={num_shards}: "
                f"scalar vs vectorized produced different metrics rows"
            )
    reference = rows[shards[0]]
    for num_shards in shards[1:]:
        assert rows[num_shards] == reference, (
            f"shard-count identity violated: num_shards={shards[0]} vs "
            f"{num_shards} produced different metrics rows"
        )
    if check_workers:
        check_worker_identity(spec, policy=policy)


def check_worker_identity(
    spec: ScenarioSpec,
    *,
    policy: str = FUZZ_POLICY,
    workers: int = 2,
) -> None:
    """Sweep rows for the spec must be byte-identical across worker counts.

    The spec is registered under a temporary name so pool workers can
    resolve it; that only reaches forked workers (they inherit the parent's
    registry), so the check is skipped under a ``spawn``-only start method.
    Cells are built from the ``quick`` preset (the sweep runner owns base
    configs; per-cell seeds come from the matrix position).
    """
    import multiprocessing

    from ..experiments.sweep import plan_cells, run_sweep

    if "fork" not in multiprocessing.get_all_start_methods():
        return
    name = "fuzz_worker_identity"
    register_scenario(replace(spec, name=name), overwrite=True)
    try:
        # Two seeds -> two cells; a single cell short-circuits to the
        # serial path and would make the comparison vacuous.
        cells = plan_cells([name], num_seeds=2, policies=[policy], root_seed=7)
        serial = run_sweep(cells, preset="quick", workers=1)
        pooled = run_sweep(cells, preset="quick", workers=workers)
        serial_bytes = [json.dumps(r, sort_keys=True) for r in serial]
        pooled_bytes = [json.dumps(r, sort_keys=True) for r in pooled]
        assert serial_bytes == pooled_bytes, (
            f"worker-count identity violated: workers=1 vs workers={workers}"
        )
    finally:
        unregister_scenario(name)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fuzz random scenario compositions against engine "
        "invariants and shard/worker identity."
    )
    parser.add_argument(
        "--budget", type=int, default=25,
        help="number of hypothesis examples to run (default: 25)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="derandomised hypothesis seed (default: 0)",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2],
        help="shard counts whose metrics rows must be byte-identical "
        "(default: 1 2)",
    )
    parser.add_argument(
        "--check-workers", action="store_true",
        help="additionally assert sweep-row identity across worker counts "
        "(slower; fork start method only)",
    )
    parser.add_argument(
        "--vectorized", action="store_true",
        help="additionally run a vectorized-dispatch twin at every shard "
        "count and assert its metrics row is byte-identical to the scalar "
        "run",
    )
    args = parser.parse_args(argv)
    if args.budget <= 0:
        parser.error("--budget must be positive")
    if len(args.shards) < 2:
        parser.error("need at least two --shards values to compare")

    # Built here (not at import time) so the CLI budget/seed become part of
    # the hypothesis profile; shrinking still works, so a failure prints the
    # minimal composition to pin as a regression test.
    @settings(
        max_examples=args.budget,
        deadline=None,
        database=None,
        derandomize=False,
        suppress_health_check=list(HealthCheck),
        print_blob=True,
    )
    @hypothesis_seed(args.seed)
    @given(spec=scenario_specs(), base=base_configs())
    def fuzz(spec: ScenarioSpec, base: ExperimentConfig) -> None:
        check_scenario(
            spec,
            base,
            shards=tuple(args.shards),
            check_workers=args.check_workers,
            vectorized=args.vectorized,
        )

    fuzz()
    print(
        f"scenario fuzz: {args.budget} examples passed "
        f"(shards={tuple(args.shards)}, check_workers={args.check_workers}, "
        f"vectorized={args.vectorized})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())


__all__ = [
    "FUZZ_POLICY",
    "base_configs",
    "check_scenario",
    "check_worker_identity",
    "latency_overrides",
    "main",
    "scenario_specs",
]
