"""repro — a full reproduction of Venn (MLSys 2025).

Venn is a collaborative-learning (CL) resource manager that shares a large
pool of ephemeral, heterogeneous edge devices among many concurrent CL jobs
to minimise the average job completion time.  This package implements the
whole system in Python:

* :mod:`repro.core`        — the Venn scheduler (Intersection Resource
  Scheduling, tier-based device matching, fairness), the baselines it is
  compared against and the exact ILP reference;
* :mod:`repro.sim`         — the event-driven CL simulator;
* :mod:`repro.traces`      — synthetic device-availability, device-capacity
  and job-demand traces;
* :mod:`repro.fl`          — a numpy federated-learning substrate (FedAvg);
* :mod:`repro.cosim`       — scheduler-driven federated co-simulation: the
  trainer runs inside the simulation loop and every scenario yields
  time-to-accuracy curves;
* :mod:`repro.analysis`    — metrics, sweep aggregation and report
  formatting;
* :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation, plus the parallel scenario sweep runner
  (:mod:`repro.experiments.sweep`);
* :mod:`repro.scenarios`   — the declarative scenario registry the sweep
  draws from (paper scenarios plus flash crowds, churn storms, straggler
  tails and multi-tenant tiers).

Quickstart::

    from repro.experiments import quick_config, build_environment, run_policies

    env = build_environment(quick_config())
    results = run_policies(env, ("random", "fifo", "srsf", "venn"))
    for name, metrics in results.items():
        print(name, metrics.average_jct)
"""

# `scenarios` must come after `experiments`: scenario specs build on the
# experiment config machinery.  `cosim` comes last: it couples the
# experiment, fl and sim layers into the federated co-simulation.
from . import analysis, core, experiments, fl, scenarios, sim, traces
from . import cosim
from .core import (
    DeviceProfile,
    EligibilityRequirement,
    JobSpec,
    ResourceRequest,
    SchedulingPolicy,
    VennScheduler,
    make_policy,
)
from .sim import SimulationConfig, SimulationMetrics, Simulator, run_simulation
from .traces import Workload, WorkloadConfig, WorkloadGenerator, scenario_workload

__version__ = "1.0.0"

__all__ = [
    "DeviceProfile",
    "EligibilityRequirement",
    "JobSpec",
    "ResourceRequest",
    "SchedulingPolicy",
    "SimulationConfig",
    "SimulationMetrics",
    "Simulator",
    "VennScheduler",
    "Workload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "__version__",
    "analysis",
    "core",
    "cosim",
    "experiments",
    "fl",
    "make_policy",
    "run_simulation",
    "scenario_workload",
    "scenarios",
    "sim",
    "traces",
]
