"""Federated training loop used by the accuracy experiments (Figures 4 and 9).

:class:`FederatedTrainer` runs synchronous FedAvg over a
:class:`~repro.fl.datasets.SyntheticFederatedDataset`.  Two usage patterns
match the paper's two accuracy experiments:

* **Contention study (Figure 4)** — the client population is evenly
  partitioned among ``k`` concurrent jobs; each job trains only on its
  partition.  As ``k`` grows, each job sees fewer/less-diverse clients per
  round and its round-to-accuracy curve degrades.
  :func:`contention_accuracy_curves` runs this sweep.

* **Policy accuracy-vs-time (Figure 9)** — the *timing* of each round comes
  from a simulator run under a given scheduling policy, while the
  round-to-accuracy curve comes from the trainer; combining the two gives
  test accuracy as a function of wall-clock time.
  :func:`accuracy_over_time` performs the combination.

Externally driven rounds (co-simulation)
----------------------------------------

:meth:`FederatedTrainer.run_external_round` trains a round over a
participant set chosen by someone else — in practice the simulation
engine's per-round reporting set (:mod:`repro.cosim`), so stragglers,
deadline misses and scheduling-policy bias flow straight into model
convergence instead of being stitched on after the fact.

Externally driven rounds draw their local-SGD randomness from per-client
streams keyed by ``(trainer seed, client_id, round_index)`` — the same
keying discipline as the engine's per-device latency streams — so a
client's draws depend only on the trainer seed and which round it trains
in, never on which other clients participate, their iteration order, the
engine's shard count or the sweep's worker count.  Same seed and same
participant sets ⇒ byte-identical parameter trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .datasets import SyntheticFederatedDataset
from .fedavg import fedavg_aggregate
from .models import FLModel, SoftmaxRegression


@dataclass
class TrainerConfig:
    """Hyper-parameters of the synchronous FedAvg loop."""

    clients_per_round: int = 100
    local_epochs: int = 1
    batch_size: int = 32
    learning_rate: float = 0.1
    #: Fraction of selected clients that actually report back (80 % in the
    #: paper's synchronous rounds).
    report_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.clients_per_round <= 0:
            raise ValueError("clients_per_round must be positive")
        if self.local_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("local_epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0.0 < self.report_fraction <= 1.0):
            raise ValueError("report_fraction must be in (0, 1]")


@dataclass
class TrainingHistory:
    """Round-indexed accuracy trajectory of one federated job."""

    accuracies: List[float] = field(default_factory=list)
    participant_counts: List[int] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else 0.0

    @property
    def rounds(self) -> int:
        return len(self.accuracies)


class FederatedTrainer:
    """Synchronous FedAvg over a fixed client pool."""

    def __init__(
        self,
        dataset: SyntheticFederatedDataset,
        config: Optional[TrainerConfig] = None,
        model_factory: Optional[Callable[[], FLModel]] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or TrainerConfig()
        self._rng = np.random.default_rng(seed)
        # Master entropy of the per-(client, round) streams used by
        # externally driven rounds.  Normalising through a SeedSequence
        # keeps the streams well-defined for seed=None too (random entropy,
        # but still internally order-independent).
        self._entropy = np.random.SeedSequence(seed).entropy
        if model_factory is None:
            model_factory = lambda: SoftmaxRegression(  # noqa: E731
                dataset.num_features, dataset.num_classes
            )
        self.model_factory = model_factory
        self.model: FLModel = model_factory()

    def _select_clients(self, client_pool: Sequence[int]) -> List[int]:
        k = min(self.config.clients_per_round, len(client_pool))
        idx = self._rng.choice(len(client_pool), size=k, replace=False)
        return [client_pool[int(i)] for i in idx]

    def run_round(self, client_pool: Sequence[int]) -> Tuple[float, int]:
        """Run one FedAvg round; returns (test accuracy, participants)."""
        if not client_pool:
            raise ValueError("client pool must not be empty")
        selected = self._select_clients(client_pool)
        # Only a fraction of the selected clients report back.
        n_report = max(1, int(round(self.config.report_fraction * len(selected))))
        reporting = selected[:n_report]

        global_params = self.model.get_parameters()
        updates: List[np.ndarray] = []
        weights: List[float] = []
        for cid in reporting:
            shard = self.dataset.shard(cid)
            local = self.model.clone()
            local.set_parameters(global_params)
            local.train_steps(
                shard.features,
                shard.labels,
                lr=self.config.learning_rate,
                epochs=self.config.local_epochs,
                batch_size=self.config.batch_size,
                rng=self._rng,
            )
            updates.append(local.get_parameters())
            weights.append(float(len(shard)))
        new_params = fedavg_aggregate(updates, weights)
        self.model.set_parameters(new_params)
        accuracy = self.model.accuracy(
            self.dataset.test_features, self.dataset.test_labels
        )
        return accuracy, len(reporting)

    # ------------------------------------------------------------------ #
    # Externally driven rounds (co-simulation)
    # ------------------------------------------------------------------ #
    def client_rng(self, client_id: int, round_index: int) -> np.random.Generator:
        """The dedicated generator of ``client_id``'s round-``round_index``
        local training — a pure function of ``(trainer seed, client_id,
        round_index)``, independent of every other client's draws."""
        if client_id < 0 or round_index < 0:
            raise ValueError("client_id and round_index must be non-negative")
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self._entropy,
                spawn_key=(int(client_id), int(round_index)),
            )
        )

    def run_external_round(
        self, round_index: int, participants: Sequence[int]
    ) -> Tuple[float, int]:
        """Run one FedAvg round over an externally chosen participant set.

        ``participants`` is the round's *reporting set* — e.g. the device-
        derived client ids the simulator saw report before the deadline —
        so no further selection or report-fraction subsetting is applied:
        whoever the scheduler delivered is exactly who trains.  Duplicates
        collapse and iteration runs in ascending client id; combined with
        :meth:`client_rng` this makes the round's result a pure function of
        ``(trainer seed, round_index, set(participants))``.

        Returns ``(test accuracy after the round, number of clients trained)``.
        """
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        reporting = sorted({int(c) for c in participants})
        if not reporting:
            raise ValueError("participant set must not be empty")
        unknown = [c for c in reporting if c not in self.dataset.clients]
        if unknown:
            raise ValueError(f"unknown client ids: {unknown[:5]}")
        global_params = self.model.get_parameters()
        updates: List[np.ndarray] = []
        weights: List[float] = []
        for cid in reporting:
            shard = self.dataset.shard(cid)
            local = self.model.clone()
            local.set_parameters(global_params)
            local.train_steps(
                shard.features,
                shard.labels,
                lr=self.config.learning_rate,
                epochs=self.config.local_epochs,
                batch_size=self.config.batch_size,
                rng=self.client_rng(cid, round_index),
            )
            updates.append(local.get_parameters())
            weights.append(float(len(shard)))
        self.model.set_parameters(fedavg_aggregate(updates, weights))
        accuracy = self.model.accuracy(
            self.dataset.test_features, self.dataset.test_labels
        )
        return accuracy, len(reporting)

    def train(
        self, num_rounds: int, client_pool: Optional[Sequence[int]] = None
    ) -> TrainingHistory:
        """Run ``num_rounds`` rounds over ``client_pool`` (default: all clients)."""
        if num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        pool = list(client_pool) if client_pool is not None else self.dataset.client_ids()
        history = TrainingHistory()
        for _ in range(num_rounds):
            acc, n = self.run_round(pool)
            history.accuracies.append(acc)
            history.participant_counts.append(n)
        return history

    def reset(self) -> None:
        """Re-initialise the global model."""
        self.model = self.model_factory()


def contention_accuracy_curves(
    dataset: SyntheticFederatedDataset,
    job_counts: Sequence[int],
    num_rounds: int,
    config: Optional[TrainerConfig] = None,
    seed: Optional[int] = None,
) -> Dict[int, List[float]]:
    """Figure-4 experiment: average accuracy-per-round vs number of jobs.

    For each ``k`` in ``job_counts`` the client population is evenly
    partitioned into ``k`` pools, one job is trained per pool, and the mean
    accuracy trajectory across jobs is returned.  To keep the sweep cheap the
    mean is computed over ``min(k, 4)`` representative jobs.
    """
    curves: Dict[int, List[float]] = {}
    for k in job_counts:
        partitions = dataset.partition_clients(k, seed=seed)
        sample_jobs = partitions[: min(k, 4)]
        trajectories = []
        for i, pool in enumerate(sample_jobs):
            trainer = FederatedTrainer(
                dataset, config=config, seed=(seed or 0) + 1000 * k + i
            )
            history = trainer.train(num_rounds, client_pool=pool)
            trajectories.append(history.accuracies)
        curves[k] = list(np.mean(np.array(trajectories), axis=0))
    return curves


def accuracy_over_time(
    round_completion_times: Sequence[float],
    accuracy_per_round: Sequence[float],
    time_grid: Sequence[float],
) -> List[float]:
    """Combine simulator timing with a round-to-accuracy curve (Figure 9).

    ``round_completion_times[i]`` is the wall-clock time at which round ``i``
    completed under some policy; ``accuracy_per_round[i]`` the model accuracy
    after that round.  Returns the accuracy reached by each time in
    ``time_grid`` (0 accuracy before the first round completes is represented
    by the first round's accuracy held back, i.e. step interpolation).
    """
    if len(round_completion_times) != len(accuracy_per_round):
        raise ValueError("timing and accuracy sequences must align")
    times = np.asarray(round_completion_times, dtype=float)
    accs = np.asarray(accuracy_per_round, dtype=float)
    order = np.argsort(times)
    times, accs = times[order], accs[order]
    out: List[float] = []
    for t in time_grid:
        completed = np.searchsorted(times, t, side="right")
        out.append(float(accs[completed - 1]) if completed > 0 else 0.0)
    return out


__all__ = [
    "FederatedTrainer",
    "TrainerConfig",
    "TrainingHistory",
    "accuracy_over_time",
    "contention_accuracy_curves",
]
