"""Numpy models used by the federated-learning substrate.

Two models are provided, mirroring the paper's use of two architectures
(ResNet-18 and MobileNet-V2) at very different cost points:

* :class:`SoftmaxRegression` — a linear softmax classifier;
* :class:`MLPClassifier` — a one-hidden-layer network with ReLU.

Both expose the same flat-parameter-vector interface so that FedAvg
aggregation (:mod:`repro.fl.fedavg`) can treat them uniformly.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    out = np.zeros((len(labels), num_classes))
    out[np.arange(len(labels)), labels] = 1.0
    return out


class FLModel(abc.ABC):
    """Interface every federated model implements."""

    @abc.abstractmethod
    def get_parameters(self) -> np.ndarray:
        """Return the model parameters as one flat vector (a copy)."""

    @abc.abstractmethod
    def set_parameters(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector."""

    @abc.abstractmethod
    def train_steps(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        lr: float,
        epochs: int,
        batch_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Run local SGD on one client's shard."""

    @abc.abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels."""

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        if len(labels) == 0:
            return 0.0
        return float(np.mean(self.predict(features) == labels))

    @abc.abstractmethod
    def clone(self) -> "FLModel":
        """A new model of the same shape with copied parameters."""


class SoftmaxRegression(FLModel):
    """Multinomial logistic regression trained with mini-batch SGD."""

    def __init__(
        self, num_features: int, num_classes: int, l2: float = 1e-4
    ) -> None:
        if num_features <= 0 or num_classes <= 1:
            raise ValueError("invalid model dimensions")
        self.num_features = num_features
        self.num_classes = num_classes
        self.l2 = float(l2)
        self.weights = np.zeros((num_features, num_classes))
        self.bias = np.zeros(num_classes)

    # -- parameter vector interface -------------------------------------- #
    def get_parameters(self) -> np.ndarray:
        return np.concatenate([self.weights.ravel(), self.bias.ravel()]).copy()

    def set_parameters(self, flat: np.ndarray) -> None:
        expected = self.num_features * self.num_classes + self.num_classes
        if flat.shape != (expected,):
            raise ValueError(f"expected parameter vector of length {expected}")
        w_end = self.num_features * self.num_classes
        self.weights = flat[:w_end].reshape(self.num_features, self.num_classes).copy()
        self.bias = flat[w_end:].copy()

    # -- training / inference --------------------------------------------- #
    def _logits(self, features: np.ndarray) -> np.ndarray:
        return features @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _softmax(self._logits(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self._logits(features), axis=1)

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        probs = self.predict_proba(features)
        eps = 1e-12
        nll = -np.mean(np.log(probs[np.arange(len(labels)), labels] + eps))
        reg = 0.5 * self.l2 * float(np.sum(self.weights**2))
        return float(nll + reg)

    def train_steps(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        lr: float,
        epochs: int = 1,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng or np.random.default_rng()
        n = len(labels)
        if n == 0:
            return
        onehot = _one_hot(labels, self.num_classes)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                X, Y = features[idx], onehot[idx]
                probs = _softmax(X @ self.weights + self.bias)
                grad_logits = (probs - Y) / len(idx)
                grad_w = X.T @ grad_logits + self.l2 * self.weights
                grad_b = grad_logits.sum(axis=0)
                self.weights -= lr * grad_w
                self.bias -= lr * grad_b

    def clone(self) -> "SoftmaxRegression":
        model = SoftmaxRegression(self.num_features, self.num_classes, self.l2)
        model.set_parameters(self.get_parameters())
        return model


class MLPClassifier(FLModel):
    """One-hidden-layer ReLU network trained with mini-batch SGD."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        l2: float = 1e-4,
        seed: Optional[int] = None,
    ) -> None:
        if hidden <= 0:
            raise ValueError("hidden size must be positive")
        self.num_features = num_features
        self.num_classes = num_classes
        self.hidden = hidden
        self.l2 = float(l2)
        rng = np.random.default_rng(seed)
        scale1 = np.sqrt(2.0 / num_features)
        scale2 = np.sqrt(2.0 / hidden)
        self.w1 = rng.normal(0.0, scale1, size=(num_features, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, scale2, size=(hidden, num_classes))
        self.b2 = np.zeros(num_classes)

    # -- parameter vector interface -------------------------------------- #
    def get_parameters(self) -> np.ndarray:
        return np.concatenate(
            [self.w1.ravel(), self.b1.ravel(), self.w2.ravel(), self.b2.ravel()]
        ).copy()

    def set_parameters(self, flat: np.ndarray) -> None:
        sizes = [
            self.num_features * self.hidden,
            self.hidden,
            self.hidden * self.num_classes,
            self.num_classes,
        ]
        if flat.shape != (sum(sizes),):
            raise ValueError(f"expected parameter vector of length {sum(sizes)}")
        i = 0
        self.w1 = flat[i : i + sizes[0]].reshape(self.num_features, self.hidden).copy()
        i += sizes[0]
        self.b1 = flat[i : i + sizes[1]].copy()
        i += sizes[1]
        self.w2 = flat[i : i + sizes[2]].reshape(self.hidden, self.num_classes).copy()
        i += sizes[2]
        self.b2 = flat[i : i + sizes[3]].copy()

    # -- training / inference --------------------------------------------- #
    def _forward(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(0.0, features @ self.w1 + self.b1)
        logits = hidden @ self.w2 + self.b2
        return hidden, logits

    def predict(self, features: np.ndarray) -> np.ndarray:
        _, logits = self._forward(features)
        return np.argmax(logits, axis=1)

    def train_steps(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        lr: float,
        epochs: int = 1,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        rng = rng or np.random.default_rng()
        n = len(labels)
        if n == 0:
            return
        onehot = _one_hot(labels, self.num_classes)
        for _ in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                X, Y = features[idx], onehot[idx]
                hidden = np.maximum(0.0, X @ self.w1 + self.b1)
                logits = hidden @ self.w2 + self.b2
                probs = _softmax(logits)
                grad_logits = (probs - Y) / len(idx)
                grad_w2 = hidden.T @ grad_logits + self.l2 * self.w2
                grad_b2 = grad_logits.sum(axis=0)
                grad_hidden = grad_logits @ self.w2.T
                grad_hidden[hidden <= 0] = 0.0
                grad_w1 = X.T @ grad_hidden + self.l2 * self.w1
                grad_b1 = grad_hidden.sum(axis=0)
                self.w2 -= lr * grad_w2
                self.b2 -= lr * grad_b2
                self.w1 -= lr * grad_w1
                self.b1 -= lr * grad_b1

    def clone(self) -> "MLPClassifier":
        model = MLPClassifier(
            self.num_features, self.num_classes, self.hidden, self.l2
        )
        model.set_parameters(self.get_parameters())
        return model


__all__ = ["FLModel", "MLPClassifier", "SoftmaxRegression"]
