"""FedAvg aggregation.

The server-side half of synchronous federated training: the weighted average
of client parameter updates, with each client weighted by the number of
local samples it trained on (McMahan et al.'s original rule).  A failure-
tolerant variant simply omits clients that did not report back — which is how
the paper's 80 %-report-back rounds behave.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def fedavg_aggregate(
    client_parameters: Sequence[np.ndarray],
    client_weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Weighted average of client parameter vectors.

    Parameters
    ----------
    client_parameters:
        One flat parameter vector per reporting client (all the same shape).
    client_weights:
        Optional non-negative weights (e.g. local sample counts).  Defaults
        to uniform weights.
    """
    if not client_parameters:
        raise ValueError("need at least one client update to aggregate")
    stacked = np.stack([np.asarray(p, dtype=float) for p in client_parameters])
    if stacked.ndim != 2:
        raise ValueError("client parameters must be flat vectors")
    if client_weights is None:
        weights = np.full(len(client_parameters), 1.0)
    else:
        weights = np.asarray(client_weights, dtype=float)
        if weights.shape != (len(client_parameters),):
            raise ValueError("one weight per client update is required")
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    weights = weights / total
    return (weights[:, None] * stacked).sum(axis=0)


def fedavg_delta_aggregate(
    global_parameters: np.ndarray,
    client_parameters: Sequence[np.ndarray],
    client_weights: Optional[Sequence[float]] = None,
    server_lr: float = 1.0,
) -> np.ndarray:
    """FedAvg expressed as a server-side step on the average client delta.

    Equivalent to :func:`fedavg_aggregate` when ``server_lr == 1`` but lets
    experiments explore server learning rates (a common FedOpt extension).
    """
    global_parameters = np.asarray(global_parameters, dtype=float)
    avg = fedavg_aggregate(client_parameters, client_weights)
    delta = avg - global_parameters
    return global_parameters + server_lr * delta


__all__ = ["fedavg_aggregate", "fedavg_delta_aggregate"]
