"""Numpy federated-learning substrate (FEMNIST / FedAvg stand-in)."""

from .datasets import ClientShard, FederatedDataConfig, SyntheticFederatedDataset
from .fedavg import fedavg_aggregate, fedavg_delta_aggregate
from .models import FLModel, MLPClassifier, SoftmaxRegression
from .trainer import (
    FederatedTrainer,
    TrainerConfig,
    TrainingHistory,
    accuracy_over_time,
    contention_accuracy_curves,
)

__all__ = [
    "ClientShard",
    "FLModel",
    "FederatedDataConfig",
    "FederatedTrainer",
    "MLPClassifier",
    "SoftmaxRegression",
    "SyntheticFederatedDataset",
    "TrainerConfig",
    "TrainingHistory",
    "accuracy_over_time",
    "contention_accuracy_curves",
    "fedavg_aggregate",
    "fedavg_delta_aggregate",
]
