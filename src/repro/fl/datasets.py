"""Synthetic non-IID federated dataset (FEMNIST stand-in).

The paper's small-scale CL experiments train ResNet-18 / MobileNet-V2 on
FEMNIST.  The behaviour those experiments rely on is purely statistical:
clients hold *non-IID* shards of a classification problem, so a round's model
quality depends on how many and how diverse the participating clients are.
This module provides a numpy-only federated dataset with exactly those
properties:

* a global linear-softmax ground truth over ``num_features`` dimensions,
* per-client label distributions drawn from a Dirichlet prior (the standard
  way to control non-IID-ness), and
* per-client feature shift, so clients are heterogeneous in both label and
  feature space.

Training more diverse clients per round therefore improves test accuracy —
the property Figures 4 and 9 exercise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class FederatedDataConfig:
    """Parameters of the synthetic federated dataset."""

    num_clients: int = 200
    num_classes: int = 10
    num_features: int = 32
    samples_per_client: int = 64
    test_samples: int = 2000
    #: Dirichlet concentration controlling label skew (smaller = more skewed).
    dirichlet_alpha: float = 0.3
    #: Magnitude of the per-client feature shift.
    client_shift: float = 0.5
    #: Label noise probability.
    label_noise: float = 0.02

    def __post_init__(self) -> None:
        if self.num_clients <= 0 or self.num_classes <= 1 or self.num_features <= 0:
            raise ValueError("invalid dataset dimensions")
        if self.samples_per_client <= 0 or self.test_samples <= 0:
            raise ValueError("sample counts must be positive")
        if self.dirichlet_alpha <= 0:
            raise ValueError("dirichlet_alpha must be positive")
        if not (0.0 <= self.label_noise < 1.0):
            raise ValueError("label_noise must be in [0, 1)")


@dataclass
class ClientShard:
    """One client's local dataset."""

    client_id: int
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.features) != len(self.labels):
            raise ValueError("features and labels must have the same length")

    def __len__(self) -> int:
        return len(self.labels)


class SyntheticFederatedDataset:
    """Generates and holds the client shards plus a shared test set."""

    def __init__(
        self,
        config: Optional[FederatedDataConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or FederatedDataConfig()
        self._rng = np.random.default_rng(seed)
        cfg = self.config
        # Ground-truth class prototypes: well-separated Gaussian means.
        self._prototypes = self._rng.normal(
            0.0, 1.0, size=(cfg.num_classes, cfg.num_features)
        )
        self._prototypes *= 2.0 / np.linalg.norm(
            self._prototypes, axis=1, keepdims=True
        )
        self.clients: Dict[int, ClientShard] = {}
        self._build_clients()
        self.test_features, self.test_labels = self._sample_pool(
            cfg.test_samples, class_probs=None, shift=None
        )

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _sample_pool(
        self,
        n: int,
        class_probs: Optional[np.ndarray],
        shift: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        if class_probs is None:
            class_probs = np.full(cfg.num_classes, 1.0 / cfg.num_classes)
        labels = self._rng.choice(cfg.num_classes, size=n, p=class_probs)
        features = self._prototypes[labels] + self._rng.normal(
            0.0, 1.0, size=(n, cfg.num_features)
        )
        if shift is not None:
            features = features + shift
        if cfg.label_noise > 0:
            flip = self._rng.random(n) < cfg.label_noise
            labels[flip] = self._rng.choice(cfg.num_classes, size=int(flip.sum()))
        return features.astype(np.float64), labels.astype(np.int64)

    def _build_clients(self) -> None:
        cfg = self.config
        for cid in range(cfg.num_clients):
            class_probs = self._rng.dirichlet(
                np.full(cfg.num_classes, cfg.dirichlet_alpha)
            )
            shift = self._rng.normal(0.0, cfg.client_shift, size=cfg.num_features)
            X, y = self._sample_pool(cfg.samples_per_client, class_probs, shift)
            self.clients[cid] = ClientShard(client_id=cid, features=X, labels=y)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def num_clients(self) -> int:
        return self.config.num_clients

    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def num_features(self) -> int:
        return self.config.num_features

    def client_ids(self) -> List[int]:
        return sorted(self.clients)

    def shard(self, client_id: int) -> ClientShard:
        return self.clients[client_id]

    def partition_clients(self, num_partitions: int, seed: Optional[int] = None) -> List[List[int]]:
        """Evenly split the client population into disjoint pools.

        Used by the Figure-4 experiment where the device pool is evenly
        partitioned among the concurrently running jobs.
        """
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        rng = np.random.default_rng(seed)
        ids = np.array(self.client_ids())
        rng.shuffle(ids)
        return [list(map(int, part)) for part in np.array_split(ids, num_partitions)]


__all__ = ["ClientShard", "FederatedDataConfig", "SyntheticFederatedDataset"]
