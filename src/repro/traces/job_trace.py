"""CL job demand trace (Figure 8b).

The paper derives its workloads from a trace of real CL applications whose
per-job number of rounds reaches several thousand and whose per-round
participant demand reaches ~1500 devices, both heavy-tailed.  This module
generates a synthetic demand trace with the same marginals (log-normal with
configurable medians and caps) and exposes the summary statistics the
workload scenarios are defined against (above/below-average total demand,
above/below-average per-round demand).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class JobDemandEntry:
    """One job's demand profile from the trace."""

    #: Index of the entry within the trace.
    entry_id: int
    #: Number of training rounds the job runs.
    num_rounds: int
    #: Number of participant devices requested per round.
    demand_per_round: int
    #: Application label (keyboard, emoji, speech, ...).
    application: str = "generic"

    @property
    def total_demand(self) -> int:
        """Total device-participations over the job's lifetime."""
        return self.num_rounds * self.demand_per_round


@dataclass
class JobTraceConfig:
    """Parameters of the synthetic demand trace."""

    #: Median / sigma of the log-normal number of rounds.
    rounds_median: float = 400.0
    rounds_sigma: float = 1.0
    rounds_cap: int = 4000
    #: Median / sigma of the log-normal per-round participant demand.
    demand_median: float = 120.0
    demand_sigma: float = 1.0
    demand_cap: int = 1500
    #: Minimum values so every job is non-trivial.
    rounds_min: int = 10
    demand_min: int = 10
    #: Application labels sampled uniformly for annotation purposes.
    applications: Tuple[str, ...] = (
        "keyboard",
        "emoji",
        "speech",
        "health",
        "query",
        "dictation",
    )

    def __post_init__(self) -> None:
        if self.rounds_median <= 0 or self.demand_median <= 0:
            raise ValueError("medians must be positive")
        if self.rounds_min <= 0 or self.demand_min <= 0:
            raise ValueError("minimums must be positive")
        if self.rounds_cap < self.rounds_min or self.demand_cap < self.demand_min:
            raise ValueError("caps must be at least the minimums")


@dataclass
class JobDemandTrace:
    """A collection of :class:`JobDemandEntry` with summary statistics."""

    entries: List[JobDemandEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def mean_total_demand(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.total_demand for e in self.entries]))

    @property
    def mean_demand_per_round(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.demand_per_round for e in self.entries]))

    @property
    def mean_rounds(self) -> float:
        if not self.entries:
            return 0.0
        return float(np.mean([e.num_rounds for e in self.entries]))

    # ------------------------------------------------------------------ #
    # Scenario filters (§5.1 workload definitions)
    # ------------------------------------------------------------------ #
    def below_average_total(self) -> List[JobDemandEntry]:
        """Jobs with below-average *total* demand (the "Small" pool)."""
        mean = self.mean_total_demand
        return [e for e in self.entries if e.total_demand < mean]

    def above_average_total(self) -> List[JobDemandEntry]:
        """Jobs with above-average *total* demand (the "Large" pool)."""
        mean = self.mean_total_demand
        return [e for e in self.entries if e.total_demand >= mean]

    def below_average_per_round(self) -> List[JobDemandEntry]:
        """Jobs with below-average *per-round* demand (the "Low" pool)."""
        mean = self.mean_demand_per_round
        return [e for e in self.entries if e.demand_per_round < mean]

    def above_average_per_round(self) -> List[JobDemandEntry]:
        """Jobs with above-average *per-round* demand (the "High" pool)."""
        mean = self.mean_demand_per_round
        return [e for e in self.entries if e.demand_per_round >= mean]

    def percentile_split(
        self, percentiles: Sequence[float] = (25.0, 50.0, 75.0)
    ) -> Dict[float, List[JobDemandEntry]]:
        """Entries with total demand below each percentile (Table 2 split)."""
        if not self.entries:
            return {p: [] for p in percentiles}
        totals = np.array([e.total_demand for e in self.entries], dtype=float)
        out: Dict[float, List[JobDemandEntry]] = {}
        for p in percentiles:
            cut = float(np.percentile(totals, p))
            out[p] = [e for e in self.entries if e.total_demand <= cut]
        return out


class JobTraceGenerator:
    """Generates synthetic :class:`JobDemandTrace` objects."""

    def __init__(
        self,
        config: Optional[JobTraceConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or JobTraceConfig()
        self._rng = np.random.default_rng(seed)

    def sample_entry(self, entry_id: int) -> JobDemandEntry:
        cfg = self.config
        rounds = int(
            np.clip(
                np.exp(self._rng.normal(np.log(cfg.rounds_median), cfg.rounds_sigma)),
                cfg.rounds_min,
                cfg.rounds_cap,
            )
        )
        demand = int(
            np.clip(
                np.exp(self._rng.normal(np.log(cfg.demand_median), cfg.demand_sigma)),
                cfg.demand_min,
                cfg.demand_cap,
            )
        )
        app = str(self._rng.choice(cfg.applications))
        return JobDemandEntry(
            entry_id=entry_id,
            num_rounds=rounds,
            demand_per_round=demand,
            application=app,
        )

    def generate(self, num_entries: int) -> JobDemandTrace:
        if num_entries <= 0:
            raise ValueError("num_entries must be positive")
        return JobDemandTrace(
            entries=[self.sample_entry(i) for i in range(num_entries)]
        )


__all__ = [
    "JobDemandEntry",
    "JobDemandTrace",
    "JobTraceConfig",
    "JobTraceGenerator",
]
