"""Workload scenarios used in the evaluation (§5.1, §5.4).

A *workload* is a set of :class:`~repro.core.types.JobSpec` objects — jobs
sampled from the demand trace (Figure 8b), mapped to one of the four device
eligibility categories (Figure 8a) and arriving over time via a Poisson
process with a 30-minute mean inter-arrival.

The five demand scenarios of §5.1 sample differently from the trace:

* ``even``  — uniformly from all jobs (the default);
* ``small`` — only jobs with below-average **total** demand;
* ``large`` — only jobs with above-average **total** demand;
* ``low``   — only jobs with below-average **per-round** demand;
* ``high``  — only jobs with above-average **per-round** demand.

The four biased scenarios of §5.4 keep the demand distribution even but bias
the *category* assignment: half of the jobs request the focal category, the
rest are spread evenly over the other three.

Because this reproduction runs on a laptop-scale simulator rather than a
planetary device population, the generator supports scaling knobs
(``rounds_scale``, ``demand_scale``, caps) that shrink job sizes while
preserving the relative structure of the trace; EXPERIMENTS.md records the
values used for each reproduced table/figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.requirements import (
    COMPUTE_RICH,
    DEFAULT_CATEGORIES,
    EligibilityRequirement,
    GENERAL,
    HIGH_PERFORMANCE,
    MEMORY_RICH,
)
from ..core.types import JobSpec
from .job_trace import JobDemandEntry, JobDemandTrace, JobTraceConfig, JobTraceGenerator

#: Demand scenarios of §5.1.
DEMAND_SCENARIOS: Tuple[str, ...] = ("even", "small", "large", "low", "high")

#: Category-bias scenarios of §5.4 mapped to the focal requirement.
BIAS_SCENARIOS: Dict[str, EligibilityRequirement] = {
    "general_heavy": GENERAL,
    "compute_heavy": COMPUTE_RICH,
    "memory_heavy": MEMORY_RICH,
    "resource_heavy": HIGH_PERFORMANCE,
}


@dataclass
class WorkloadConfig:
    """Knobs controlling workload generation."""

    #: Number of jobs in the workload (50 in the default simulation setup).
    num_jobs: int = 50
    #: One of :data:`DEMAND_SCENARIOS`.
    scenario: str = "even"
    #: One of :data:`BIAS_SCENARIOS` keys, or ``None`` for the unbiased
    #: uniform category assignment.
    category_bias: Optional[str] = None
    #: Fraction of jobs assigned to the focal category when biased (§5.4).
    bias_fraction: float = 0.5
    #: Mean of the exponential job inter-arrival time, seconds (30 min).
    mean_interarrival: float = 1800.0
    #: Per-round deadline bounds (5 - 15 minutes in the paper), seconds.
    deadline_min: float = 300.0
    deadline_max: float = 900.0
    #: Fraction of the per-round demand that must report back (0.8).
    min_report_fraction: float = 0.8
    #: Median on-device task duration, seconds.
    base_task_duration: float = 60.0
    #: Scaling applied to the trace's number of rounds / per-round demand so
    #: the workload fits the simulated device pool.  1.0 keeps paper scale.
    rounds_scale: float = 1.0
    demand_scale: float = 1.0
    #: Hard caps applied after scaling (0 disables the cap).
    max_rounds: int = 0
    max_demand: int = 0
    #: Minimums applied after scaling.
    min_rounds: int = 1
    min_demand: int = 5
    #: Size of the underlying demand trace the scenario samples from.
    trace_size: int = 400
    #: Configuration of the underlying demand trace.
    trace_config: JobTraceConfig = field(default_factory=JobTraceConfig)

    def __post_init__(self) -> None:
        if self.num_jobs <= 0:
            raise ValueError("num_jobs must be positive")
        if self.scenario not in DEMAND_SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; expected one of "
                f"{DEMAND_SCENARIOS}"
            )
        if self.category_bias is not None and self.category_bias not in BIAS_SCENARIOS:
            raise ValueError(
                f"unknown category bias {self.category_bias!r}; expected one of "
                f"{tuple(BIAS_SCENARIOS)}"
            )
        if not (0.0 < self.bias_fraction <= 1.0):
            raise ValueError("bias_fraction must be in (0, 1]")
        if self.mean_interarrival < 0:
            raise ValueError("mean_interarrival must be non-negative")
        if self.deadline_min <= 0 or self.deadline_max < self.deadline_min:
            raise ValueError("need 0 < deadline_min <= deadline_max")
        if self.rounds_scale <= 0 or self.demand_scale <= 0:
            raise ValueError("scales must be positive")


@dataclass
class Workload:
    """A generated workload: jobs plus the trace they were sampled from."""

    config: WorkloadConfig
    jobs: List[JobSpec]
    trace: JobDemandTrace
    #: Category requirement name assigned to each job id.
    categories: Dict[int, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.jobs)

    def jobs_in_category(self, category: str) -> List[JobSpec]:
        return [j for j in self.jobs if self.categories.get(j.job_id) == category]

    @property
    def total_demand(self) -> int:
        return sum(j.total_demand for j in self.jobs)


class WorkloadGenerator:
    """Samples workloads according to the paper's scenarios."""

    def __init__(self, config: Optional[WorkloadConfig] = None, seed: Optional[int] = None):
        self.config = config or WorkloadConfig()
        self._rng = np.random.default_rng(seed)
        # Derive a child seed so the trace is stable given the workload seed.
        trace_seed = int(self._rng.integers(0, 2**31 - 1))
        self._trace_generator = JobTraceGenerator(
            config=self.config.trace_config, seed=trace_seed
        )

    # ------------------------------------------------------------------ #
    # Scenario sampling
    # ------------------------------------------------------------------ #
    def _scenario_pool(self, trace: JobDemandTrace) -> List[JobDemandEntry]:
        scenario = self.config.scenario
        if scenario == "even":
            pool = list(trace.entries)
        elif scenario == "small":
            pool = trace.below_average_total()
        elif scenario == "large":
            pool = trace.above_average_total()
        elif scenario == "low":
            pool = trace.below_average_per_round()
        elif scenario == "high":
            pool = trace.above_average_per_round()
        else:  # pragma: no cover - guarded by WorkloadConfig
            raise ValueError(f"unknown scenario {scenario!r}")
        if not pool:
            raise ValueError(
                f"scenario {scenario!r} produced an empty sampling pool; "
                "increase trace_size"
            )
        return pool

    def _assign_categories(self, num_jobs: int) -> List[EligibilityRequirement]:
        cfg = self.config
        categories = list(DEFAULT_CATEGORIES)
        if cfg.category_bias is None:
            idx = self._rng.integers(0, len(categories), size=num_jobs)
            return [categories[int(i)] for i in idx]
        focal = BIAS_SCENARIOS[cfg.category_bias]
        others = [c for c in categories if c.name != focal.name]
        out: List[EligibilityRequirement] = []
        for _ in range(num_jobs):
            if self._rng.random() < cfg.bias_fraction:
                out.append(focal)
            else:
                out.append(others[int(self._rng.integers(0, len(others)))])
        return out

    def _scaled(self, value: float, scale: float, minimum: int, cap: int) -> int:
        scaled = int(round(value * scale))
        scaled = max(minimum, scaled)
        if cap > 0:
            scaled = min(cap, scaled)
        return scaled

    def _deadline_for(self, demand: int, max_demand: int) -> float:
        """Deadline grows with the round demand (5-15 min in the paper)."""
        cfg = self.config
        if max_demand <= 0:
            return cfg.deadline_min
        frac = min(1.0, demand / max_demand)
        return cfg.deadline_min + frac * (cfg.deadline_max - cfg.deadline_min)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self, start_job_id: int = 0) -> Workload:
        """Generate the workload described by the configuration."""
        cfg = self.config
        trace = self._trace_generator.generate(cfg.trace_size)
        pool = self._scenario_pool(trace)
        picks = [
            pool[int(i)] for i in self._rng.integers(0, len(pool), size=cfg.num_jobs)
        ]
        categories = self._assign_categories(cfg.num_jobs)

        # Poisson arrivals: exponential inter-arrival gaps.
        if cfg.mean_interarrival > 0:
            gaps = self._rng.exponential(cfg.mean_interarrival, size=cfg.num_jobs)
        else:
            gaps = np.zeros(cfg.num_jobs)
        arrivals = np.cumsum(gaps)
        max_scaled_demand = max(
            self._scaled(e.demand_per_round, cfg.demand_scale, cfg.min_demand, cfg.max_demand)
            for e in picks
        )

        jobs: List[JobSpec] = []
        category_map: Dict[int, str] = {}
        for k, (entry, requirement) in enumerate(zip(picks, categories)):
            job_id = start_job_id + k
            rounds = self._scaled(
                entry.num_rounds, cfg.rounds_scale, cfg.min_rounds, cfg.max_rounds
            )
            demand = self._scaled(
                entry.demand_per_round, cfg.demand_scale, cfg.min_demand, cfg.max_demand
            )
            job = JobSpec(
                job_id=job_id,
                requirement=requirement,
                demand_per_round=demand,
                num_rounds=rounds,
                arrival_time=float(arrivals[k]),
                round_deadline=self._deadline_for(demand, max_scaled_demand),
                min_report_fraction=cfg.min_report_fraction,
                base_task_duration=cfg.base_task_duration,
                name=f"{entry.application}-{job_id}",
            )
            jobs.append(job)
            category_map[job_id] = requirement.name
        return Workload(config=cfg, jobs=jobs, trace=trace, categories=category_map)


def scenario_workload(
    scenario: str,
    num_jobs: int = 50,
    seed: Optional[int] = None,
    **overrides,
) -> Workload:
    """Convenience helper: generate a workload for one of the named scenarios.

    ``scenario`` may be a demand scenario (``even``, ``small``, ``large``,
    ``low``, ``high``) or a bias scenario (``general_heavy``,
    ``compute_heavy``, ``memory_heavy``, ``resource_heavy``); bias scenarios
    use the even demand distribution, as in §5.4.
    """
    if scenario in DEMAND_SCENARIOS:
        config = WorkloadConfig(num_jobs=num_jobs, scenario=scenario, **overrides)
    elif scenario in BIAS_SCENARIOS:
        config = WorkloadConfig(
            num_jobs=num_jobs, scenario="even", category_bias=scenario, **overrides
        )
    else:
        raise ValueError(f"unknown workload scenario {scenario!r}")
    return WorkloadGenerator(config, seed=seed).generate()


__all__ = [
    "BIAS_SCENARIOS",
    "DEMAND_SCENARIOS",
    "Workload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "scenario_workload",
]
