"""Synthetic trace generators: device capacity, availability and job demand.

These replace the FedScale / AI-Benchmark traces and the production job trace
used in the paper (see DESIGN.md for the substitution rationale).
"""

from .capacity import (
    CapacityConfig,
    CapacitySampler,
    DEFAULT_DATA_DOMAINS,
    MODEL_REQUIREMENTS,
)
from .device_trace import (
    DAY,
    AvailabilitySession,
    DeviceAvailabilityTrace,
    DiurnalAvailabilityModel,
    DiurnalConfig,
    iter_checkins,
    merge_traces,
)
from .job_trace import JobDemandEntry, JobDemandTrace, JobTraceConfig, JobTraceGenerator
from .workloads import (
    BIAS_SCENARIOS,
    DEMAND_SCENARIOS,
    Workload,
    WorkloadConfig,
    WorkloadGenerator,
    scenario_workload,
)

__all__ = [
    "AvailabilitySession",
    "BIAS_SCENARIOS",
    "CapacityConfig",
    "CapacitySampler",
    "DAY",
    "DEFAULT_DATA_DOMAINS",
    "DEMAND_SCENARIOS",
    "DeviceAvailabilityTrace",
    "DiurnalAvailabilityModel",
    "DiurnalConfig",
    "JobDemandEntry",
    "JobDemandTrace",
    "JobTraceConfig",
    "JobTraceGenerator",
    "MODEL_REQUIREMENTS",
    "Workload",
    "WorkloadConfig",
    "WorkloadGenerator",
    "iter_checkins",
    "merge_traces",
    "scenario_workload",
]
