"""Device availability trace (FedScale-style, Figure 2a).

The paper replays a real one-week availability trace (180 M events) in which
devices are usable only while charging and on WiFi; the number of available
devices follows a strong diurnal pattern.  This module generates synthetic
traces with the same behaviourally relevant structure:

* every device alternates between *online sessions* and offline gaps;
* the probability of starting a session follows a 24-hour sinusoid, so the
  population-level availability swings by roughly 2x between the daily peak
  and trough (as in Figure 2a);
* session lengths are log-normal (most sessions are an hour or two, a few
  last all night).

A trace is a list of :class:`AvailabilitySession` per device plus helpers to
compute the availability curve that reproduces Figure 2a.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Seconds per day, used throughout the module.
DAY = 24 * 3600.0


@dataclass(frozen=True)
class AvailabilitySession:
    """A contiguous interval during which one device is online and idle-able."""

    device_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("session end must be after start")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class DiurnalConfig:
    """Parameters of the diurnal availability model."""

    #: Simulated horizon in seconds (default: 4 days).
    horizon: float = 4 * DAY
    #: Fraction of the population online at the daily peak.
    peak_availability: float = 0.30
    #: Fraction of the population online at the daily trough.
    trough_availability: float = 0.12
    #: Hour of day (0-24) at which availability peaks (devices charge at night).
    peak_hour: float = 2.0
    #: Median online-session length in seconds.
    median_session: float = 2 * 3600.0
    #: Log-normal sigma of the session length.
    session_sigma: float = 0.8

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if not (0 < self.trough_availability <= self.peak_availability <= 1):
            raise ValueError("need 0 < trough <= peak <= 1")
        if self.median_session <= 0:
            raise ValueError("median_session must be positive")

    def availability_at(self, t: float) -> float:
        """Expected online fraction of the population at time ``t``."""
        mid = (self.peak_availability + self.trough_availability) / 2.0
        amp = (self.peak_availability - self.trough_availability) / 2.0
        phase = 2.0 * np.pi * ((t / DAY) - self.peak_hour / 24.0)
        return float(mid + amp * np.cos(phase))


@dataclass
class DeviceAvailabilityTrace:
    """All availability sessions of a device population over a horizon."""

    horizon: float
    sessions: List[AvailabilitySession] = field(default_factory=list)

    def sessions_of(self, device_id: int) -> List[AvailabilitySession]:
        return [s for s in self.sessions if s.device_id == device_id]

    def checkin_events(self) -> List[Tuple[float, int, float]]:
        """Sorted ``(start, device_id, end)`` tuples — the simulator's input."""
        events = [(s.start, s.device_id, s.end) for s in self.sessions]
        events.sort()
        return events

    def checkin_events_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`checkin_events` as parallel numpy arrays
        ``(starts, device_ids, ends)``.

        Same (start, device_id, end) lexicographic order as the tuple form,
        but built through one vectorised lexsort — the representation the
        sharded engine's stream builder consumes (it avoids materialising
        millions of Python tuples at 10^6-device scale).
        """
        n = len(self.sessions)
        starts = np.empty(n, dtype=np.float64)
        ids = np.empty(n, dtype=np.int64)
        ends = np.empty(n, dtype=np.float64)
        for i, s in enumerate(self.sessions):
            starts[i] = s.start
            ids[i] = s.device_id
            ends[i] = s.end
        order = np.lexsort((ends, ids, starts))
        return starts[order], ids[order], ends[order]

    def availability_curve(
        self, resolution: float = 600.0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (times, online_count) sampled every ``resolution`` seconds.

        This regenerates the data behind Figure 2a: the number of devices
        online over the horizon, exhibiting the diurnal swing.
        """
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        times = np.arange(0.0, self.horizon + resolution, resolution)
        counts = np.zeros_like(times)
        # Sweep-line over session boundaries.
        deltas: Dict[float, int] = {}
        for s in self.sessions:
            deltas[s.start] = deltas.get(s.start, 0) + 1
            deltas[s.end] = deltas.get(s.end, 0) - 1
        boundary_times = sorted(deltas)
        online = 0
        idx = 0
        for k, t in enumerate(times):
            while idx < len(boundary_times) and boundary_times[idx] <= t:
                online += deltas[boundary_times[idx]]
                idx += 1
            counts[k] = online
        return times, counts

    @property
    def num_devices(self) -> int:
        return len({s.device_id for s in self.sessions})


class DiurnalAvailabilityModel:
    """Generates :class:`DeviceAvailabilityTrace` objects.

    The generation works per device: offline gaps are sampled from an
    exponential distribution whose rate is modulated by the diurnal
    availability target, and each gap is followed by a log-normal online
    session.  The resulting population-level availability tracks the
    configured peak/trough fractions.

    Every device draws from its **own random stream**, a
    :class:`numpy.random.SeedSequence` child keyed by the global device id
    (``spawn_key=(device_id,)``).  A device's sessions therefore depend only
    on the model seed and its id — never on how many other devices exist or
    in which order they are generated — so a sharded builder can generate
    any subset of devices and obtain bit-identical sessions.
    """

    def __init__(
        self,
        config: Optional[DiurnalConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or DiurnalConfig()
        # Normalising through a SeedSequence gives stable entropy even for
        # seed=None (a random run is still internally consistent).
        self._entropy = np.random.SeedSequence(seed).entropy

    def _device_rng(self, device_id: int) -> np.random.Generator:
        """The per-device stream keyed by global device id."""
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self._entropy, spawn_key=(device_id,))
        )

    def _sample_session_length(self, rng: np.random.Generator) -> float:
        cfg = self.config
        return float(
            np.exp(rng.normal(np.log(cfg.median_session), cfg.session_sigma))
        )

    def _mean_offline_gap(self, t: float) -> float:
        """Mean offline gap so the stationary online fraction matches the target.

        With online fraction ``p`` and mean session ``s`` the mean gap must be
        ``s * (1 - p) / p``.
        """
        cfg = self.config
        p = max(1e-3, cfg.availability_at(t))
        mean_session = cfg.median_session * float(np.exp(cfg.session_sigma**2 / 2))
        return mean_session * (1.0 - p) / p

    def device_sessions(self, device_id: int) -> List[AvailabilitySession]:
        """Sessions of one device, independent of every other device."""
        cfg = self.config
        rng = self._device_rng(device_id)
        sessions: List[AvailabilitySession] = []
        # Random initial phase so devices are not synchronised.
        t = float(rng.uniform(0.0, self._mean_offline_gap(0.0)))
        while t < cfg.horizon:
            gap = float(rng.exponential(self._mean_offline_gap(t)))
            start = t + gap
            if start >= cfg.horizon:
                break
            length = self._sample_session_length(rng)
            end = min(start + length, cfg.horizon)
            if end > start:
                sessions.append(
                    AvailabilitySession(device_id=device_id, start=start, end=end)
                )
            t = end
        return sessions

    def generate(
        self, num_devices: int, device_ids: Optional[Sequence[int]] = None
    ) -> DeviceAvailabilityTrace:
        """Generate a trace for ``num_devices`` devices over the horizon.

        ``device_ids`` restricts generation to a subset (a shard) — the
        sessions of each listed device are identical to the ones it would
        get in the full-population trace.
        """
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        ids = range(num_devices) if device_ids is None else device_ids
        sessions: List[AvailabilitySession] = []
        for dev in ids:
            sessions.extend(self.device_sessions(dev))
        return DeviceAvailabilityTrace(
            horizon=self.config.horizon, sessions=sessions
        )


def merge_traces(traces: Sequence[DeviceAvailabilityTrace]) -> DeviceAvailabilityTrace:
    """Merge traces over disjoint device-id ranges into one trace."""
    if not traces:
        raise ValueError("need at least one trace")
    horizon = max(t.horizon for t in traces)
    merged = DeviceAvailabilityTrace(horizon=horizon)
    heap: List[Tuple[float, int, AvailabilitySession]] = []
    for i, tr in enumerate(traces):
        for s in tr.sessions:
            heapq.heappush(heap, (s.start, i, s))
    while heap:
        _, _, s = heapq.heappop(heap)
        merged.sessions.append(s)
    return merged


def iter_checkins(
    trace: DeviceAvailabilityTrace,
) -> Iterator[Tuple[float, int, float]]:
    """Convenience iterator over sorted check-in events."""
    yield from trace.checkin_events()


__all__ = [
    "AvailabilitySession",
    "DAY",
    "DeviceAvailabilityTrace",
    "DiurnalAvailabilityModel",
    "DiurnalConfig",
    "iter_checkins",
    "merge_traces",
]
