"""Device hardware-capacity trace (AI-Benchmark-style, Figures 2b / 8a).

The paper draws per-device CPU and memory scores from the AI Benchmark
smartphone dataset, normalises them to ``[0, 1]`` and stratifies the
population into four regions (General, Compute-Rich, Memory-Rich,
High-Performance) using a cut at 0.5 on each axis.  Since that dataset is not
redistributable, this module generates a synthetic population with the same
behaviourally relevant properties:

* right-skewed, positively correlated CPU/memory scores (most devices are
  mid/low-end, a long tail of flagships),
* a configurable fraction of devices falling in each of the four regions,
* an execution ``speed_factor`` that decreases with hardware capability, so
  hardware heterogeneity translates into response-time heterogeneity, and
* per-device data domains and reliability.

It also carries the minimum-requirement annotations of Figure 2b
(:data:`MODEL_REQUIREMENTS` for MobileNet, VideoSR and MobileBERT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.requirements import (
    COMPUTE_RICH,
    DEFAULT_CATEGORIES,
    EligibilityRequirement,
    GENERAL,
    HIGH_PERFORMANCE,
    MEMORY_RICH,
)
from ..core.types import DeviceProfile

#: Minimum hardware requirements of the three on-device models annotated in
#: Figure 2b of the paper (normalised scores).
MODEL_REQUIREMENTS: Dict[str, EligibilityRequirement] = {
    "mobilenet": EligibilityRequirement("mobilenet", min_cpu=0.2, min_memory=0.15),
    "mobilebert": EligibilityRequirement("mobilebert", min_cpu=0.45, min_memory=0.4),
    "videosr": EligibilityRequirement("videosr", min_cpu=0.7, min_memory=0.6),
}

#: Data domains used by the example CL applications in the paper's intro.
DEFAULT_DATA_DOMAINS: Tuple[str, ...] = (
    "keyboard",
    "emoji",
    "speech",
    "health",
    "query",
    "dictation",
)


@dataclass
class CapacityConfig:
    """Parameters of the synthetic capacity distribution."""

    #: Mean / sigma of the underlying bivariate normal (before squashing).
    cpu_mu: float = -0.35
    mem_mu: float = -0.25
    sigma: float = 0.55
    #: Correlation between CPU and memory capability.
    correlation: float = 0.6
    #: Median task slowdown of the weakest devices relative to the strongest.
    max_slowdown: float = 6.0
    #: Probability that a device holds each data domain.
    domain_probability: float = 0.35
    #: Mean reliability (probability of completing an assigned task).
    mean_reliability: float = 0.9
    data_domains: Tuple[str, ...] = DEFAULT_DATA_DOMAINS

    def __post_init__(self) -> None:
        if not (-1.0 < self.correlation < 1.0):
            raise ValueError("correlation must be in (-1, 1)")
        if self.max_slowdown < 1.0:
            raise ValueError("max_slowdown must be >= 1")
        if not (0.0 <= self.domain_probability <= 1.0):
            raise ValueError("domain_probability must be a probability")
        if not (0.0 < self.mean_reliability <= 1.0):
            raise ValueError("mean_reliability must be in (0, 1]")


class CapacitySampler:
    """Samples :class:`~repro.core.types.DeviceProfile` populations."""

    def __init__(
        self,
        config: Optional[CapacityConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.config = config or CapacityConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_scores(self, n: int) -> np.ndarray:
        """Sample ``(n, 2)`` normalised (cpu, memory) scores in [0, 1]."""
        if n <= 0:
            raise ValueError("n must be positive")
        cfg = self.config
        cov = np.array(
            [
                [cfg.sigma**2, cfg.correlation * cfg.sigma**2],
                [cfg.correlation * cfg.sigma**2, cfg.sigma**2],
            ]
        )
        raw = self._rng.multivariate_normal(
            mean=[cfg.cpu_mu, cfg.mem_mu], cov=cov, size=n
        )
        # Logistic squashing gives a right-skewed distribution on [0, 1] with
        # most mass below 0.5 — matching the AI-Benchmark population shape.
        scores = 1.0 / (1.0 + np.exp(-raw))
        return np.clip(scores, 0.0, 1.0)

    def speed_factor(self, cpu: float, mem: float) -> float:
        """Task-duration multiplier for a device with the given scores.

        The strongest devices (score ~1) run at factor ~1; the weakest run up
        to ``max_slowdown`` times slower, with multiplicative log-normal noise
        so that two devices with identical scores still differ a little.
        """
        cfg = self.config
        capability = 0.6 * cpu + 0.4 * mem
        base = 1.0 + (cfg.max_slowdown - 1.0) * (1.0 - capability)
        noise = float(np.exp(self._rng.normal(0.0, 0.15)))
        return float(base * noise)

    def sample_devices(self, n: int, start_id: int = 0) -> List[DeviceProfile]:
        """Sample a population of ``n`` devices."""
        cfg = self.config
        scores = self.sample_scores(n)
        devices: List[DeviceProfile] = []
        for k in range(n):
            cpu, mem = float(scores[k, 0]), float(scores[k, 1])
            domains = frozenset(
                d
                for d in cfg.data_domains
                if self._rng.random() < cfg.domain_probability
            )
            reliability = float(
                np.clip(self._rng.beta(9.0, 1.0) * cfg.mean_reliability / 0.9, 0.0, 1.0)
            )
            devices.append(
                DeviceProfile(
                    device_id=start_id + k,
                    cpu_score=cpu,
                    memory_score=mem,
                    speed_factor=self.speed_factor(cpu, mem),
                    data_domains=domains,
                    reliability=reliability,
                )
            )
        return devices

    # ------------------------------------------------------------------ #
    # Population statistics
    # ------------------------------------------------------------------ #
    @staticmethod
    def classify(device: DeviceProfile) -> str:
        """Most specific of the four default categories the device falls in."""
        if HIGH_PERFORMANCE.is_eligible(device):
            return HIGH_PERFORMANCE.name
        if COMPUTE_RICH.is_eligible(device):
            return COMPUTE_RICH.name
        if MEMORY_RICH.is_eligible(device):
            return MEMORY_RICH.name
        return GENERAL.name

    @staticmethod
    def category_shares(devices: Sequence[DeviceProfile]) -> Dict[str, float]:
        """Fraction of devices *eligible* for each of the four categories.

        Note this is an eligibility share (General is always 1.0), not a
        partition: the categories nest, which is exactly what creates the
        contention patterns the paper studies.
        """
        if not devices:
            return {r.name: 0.0 for r in DEFAULT_CATEGORIES}
        n = len(devices)
        return {
            r.name: sum(1 for d in devices if r.is_eligible(d)) / n
            for r in DEFAULT_CATEGORIES
        }

    @staticmethod
    def model_eligibility_shares(
        devices: Sequence[DeviceProfile],
    ) -> Dict[str, float]:
        """Fraction of devices able to run each Figure-2b model."""
        if not devices:
            return {name: 0.0 for name in MODEL_REQUIREMENTS}
        n = len(devices)
        return {
            name: sum(1 for d in devices if req.is_eligible(d)) / n
            for name, req in MODEL_REQUIREMENTS.items()
        }


__all__ = [
    "CapacityConfig",
    "CapacitySampler",
    "DEFAULT_DATA_DOMAINS",
    "MODEL_REQUIREMENTS",
]
