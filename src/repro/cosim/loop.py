"""Scheduler-driven federated co-simulation.

:class:`CoSimulation` runs the FedAvg trainer *inside* the simulation loop:
the engine's round callback hands over each round's actual reporting set
(the device ids that completed before the round deadline, per
:class:`~repro.sim.job.RoundRecord`), those devices select the client
partitions trained that round, and the resulting test accuracy is stamped
with the round's simulated completion time.  Stragglers, failures,
daily-budget parking and policy bias therefore flow directly into model
convergence — time-to-accuracy becomes a first-class output of every
scenario instead of a post-hoc stitch of two unrelated curves.

Determinism contract
--------------------

For a fixed experiment config (one root seed) and policy:

* the engine emits round completions in event order, bit-identically for
  any shard count (the callback runs on the coordinator);
* each round trains the sorted, deduplicated client set derived from the
  reporting set, with per-client randomness keyed by ``(cosim seed,
  client_id, round_index)`` (:meth:`~repro.fl.trainer.FederatedTrainer.
  client_rng`), independent of iteration order and of everything outside
  the round;
* the dataset and all per-job trainer seeds derive from the experiment's
  dedicated ``cosim`` stream.

Together: same seed ⇒ byte-identical accuracy curves, decision hashes and
time-to-accuracy numbers for any ``num_shards`` and any sweep worker
count.  The golden fixture in ``tests/golden`` and the CI gates pin this.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..experiments.environment import Environment
from ..fl.datasets import SyntheticFederatedDataset
from ..fl.trainer import FederatedTrainer, TrainerConfig
from ..sim.job import RoundCompletion
from ..sim.metrics import SimulationMetrics
from .config import CoSimConfig


def _child_seed(entropy: int, *spawn_key: int) -> int:
    """128-bit child seed of ``entropy`` keyed by ``spawn_key`` (the same
    derivation discipline as ``ExperimentConfig.seed_for``)."""
    state = np.random.SeedSequence(
        entropy=entropy, spawn_key=tuple(spawn_key)
    ).generate_state(2, np.uint64)
    return (int(state[0]) << 64) | int(state[1])


def map_devices_to_clients(
    participants: Sequence[int], num_clients: int
) -> List[int]:
    """Deterministic device-id → client-id mapping (sorted, deduplicated).

    Devices map onto the shared client population by ``device_id %
    num_clients``: stable across runs, shard counts and policies, so which
    *clients* train is a pure function of which *devices* reported.
    Distinct devices may collapse onto one client (a device pool larger
    than the client population), which mirrors what losing reporting-set
    diversity does to training: fewer distinct shards per round.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    return sorted({int(d) % num_clients for d in participants})


@dataclass
class CoSimRound:
    """One completed, co-trained round of one job."""

    round_index: int
    completion_time: float
    #: Devices that reported back (size of the reporting set).
    num_participants: int
    #: Distinct clients trained after the device→client mapping.
    num_clients: int
    #: Test accuracy of the job's model after this round.
    accuracy: float


@dataclass
class JobCoSim:
    """Accuracy trajectory of one co-simulated job."""

    job_id: int
    rounds: List[CoSimRound] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.rounds[-1].accuracy if self.rounds else 0.0

    @property
    def accuracies(self) -> List[float]:
        return [r.accuracy for r in self.rounds]

    @property
    def completion_times(self) -> List[float]:
        return [r.completion_time for r in self.rounds]

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated time at which the job first reached ``target`` test
        accuracy, or ``None`` if it never did."""
        for r in self.rounds:
            if r.accuracy >= target:
                return r.completion_time
        return None


@dataclass
class CoSimResult:
    """Outcome of one co-simulated (environment, policy) run."""

    policy: str
    #: Scheduling metrics of the underlying simulation run.
    sim: SimulationMetrics
    #: Per-job accuracy trajectories (only jobs that completed ≥1 round).
    jobs: Dict[int, JobCoSim]
    #: Accuracy targets of :meth:`time_to_accuracy` / :meth:`summary`.
    targets: Tuple[float, ...]
    #: Total jobs in the workload (attainment denominators include jobs
    #: that never completed a round).
    total_jobs: int
    #: blake2b over the ordered (job, round, time, reporting set) stream —
    #: the scheduling-decision half of the determinism contract.
    decision_hash: str
    #: blake2b over the ordered (job, round, accuracy) stream — the
    #: training half.
    accuracy_hash: str

    def time_to_accuracy(self, target: float) -> Dict[int, Optional[float]]:
        """Per-job time to first reach ``target`` (None = never)."""
        return {
            job_id: job.time_to_accuracy(target)
            for job_id, job in sorted(self.jobs.items())
        }

    def summary(self) -> Dict[float, Dict[str, float]]:
        """Per-target attainment and mean time-to-accuracy.

        ``attainment`` counts over *all* workload jobs (a job that never
        completed a round attains nothing); ``mean_time`` averages over the
        attaining jobs only and is 0.0 when none attained.
        """
        out: Dict[float, Dict[str, float]] = {}
        for target in self.targets:
            times = [
                t for t in self.time_to_accuracy(target).values() if t is not None
            ]
            out[target] = {
                "attained_jobs": float(len(times)),
                "total_jobs": float(self.total_jobs),
                "attainment": (
                    len(times) / self.total_jobs if self.total_jobs else 0.0
                ),
                "mean_time": float(np.mean(times)) if times else 0.0,
            }
        return out


class CoSimulation:
    """Couple one environment + policy run to in-loop federated training."""

    def __init__(
        self,
        env: Environment,
        policy_name: str,
        policy_kwargs: Optional[dict] = None,
        config: Optional[CoSimConfig] = None,
    ) -> None:
        self.env = env
        self.policy_name = policy_name
        self.policy_kwargs = dict(policy_kwargs or {})
        self.config = config or CoSimConfig()
        #: Root of the run's FL randomness: the experiment's dedicated
        #: ``cosim`` stream, so every policy over this environment shares
        #: the dataset and the per-job trainer streams.
        self._entropy = env.config.seed_for("cosim")
        self.dataset = SyntheticFederatedDataset(
            self.config.dataset, seed=_child_seed(self._entropy, 0)
        )
        self._trainers: Dict[int, FederatedTrainer] = {}
        self._jobs: Dict[int, JobCoSim] = {}
        #: Ordered hash feeds (callback order == event order).
        self._decision_feed = hashlib.blake2b(digest_size=16)
        self._accuracy_feed = hashlib.blake2b(digest_size=16)

    # ------------------------------------------------------------------ #
    # In-loop training
    # ------------------------------------------------------------------ #
    def _trainer_for(self, job_id: int) -> FederatedTrainer:
        trainer = self._trainers.get(job_id)
        if trainer is None:
            trainer = FederatedTrainer(
                self.dataset,
                config=TrainerConfig(
                    clients_per_round=max(1, self.dataset.num_clients),
                    learning_rate=self.config.learning_rate,
                    local_epochs=self.config.local_epochs,
                    batch_size=self.config.batch_size,
                ),
                seed=_child_seed(self._entropy, 1, job_id),
            )
            self._trainers[job_id] = trainer
        return trainer

    def _on_round(self, completion: RoundCompletion) -> None:
        """Engine round callback: train the round's reporting set."""
        clients = map_devices_to_clients(
            completion.participants, self.dataset.num_clients
        )
        self._decision_feed.update(
            json.dumps(
                [
                    completion.job_id,
                    completion.round_index,
                    repr(completion.completion_time),
                    list(completion.participants),
                ],
                separators=(",", ":"),
            ).encode()
        )
        if not clients:  # pragma: no cover - min_reports >= 1 guards this
            return
        trainer = self._trainer_for(completion.job_id)
        accuracy, _ = trainer.run_external_round(completion.round_index, clients)
        self._accuracy_feed.update(
            json.dumps(
                [completion.job_id, completion.round_index, repr(accuracy)],
                separators=(",", ":"),
            ).encode()
        )
        job = self._jobs.setdefault(
            completion.job_id, JobCoSim(job_id=completion.job_id)
        )
        job.rounds.append(
            CoSimRound(
                round_index=completion.round_index,
                completion_time=completion.completion_time,
                num_participants=len(completion.participants),
                num_clients=len(clients),
                accuracy=accuracy,
            )
        )

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #
    def run(self) -> CoSimResult:
        """Run the coupled simulation and return the co-sim result."""
        # Imported here: endtoend imports this package lazily for its
        # cosim mode, so a module-level import would be circular.
        from ..experiments.endtoend import run_policy

        metrics = run_policy(
            self.env,
            self.policy_name,
            self.policy_kwargs,
            round_callback=self._on_round,
        )
        return CoSimResult(
            policy=metrics.policy,
            sim=metrics,
            jobs=dict(sorted(self._jobs.items())),
            targets=tuple(self.config.target_accuracies),
            total_jobs=len(metrics.jobs),
            decision_hash=self._decision_feed.hexdigest(),
            accuracy_hash=self._accuracy_feed.hexdigest(),
        )


__all__ = [
    "CoSimResult",
    "CoSimRound",
    "CoSimulation",
    "JobCoSim",
    "map_devices_to_clients",
]
