"""Configuration of the scheduler-driven federated co-simulation."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Mapping, Tuple

from ..fl.datasets import FederatedDataConfig


@dataclass
class CoSimConfig:
    """Knobs of one co-simulated federated training run.

    The simulation side (devices, availability, workload, policy) comes
    from the usual :class:`~repro.experiments.config.ExperimentConfig`;
    this config only describes the FL side layered on top of it and the
    accuracy targets the time-to-accuracy metric is read at.
    """

    #: Synthetic non-IID dataset every co-simulated job trains on.  One
    #: dataset is shared by all jobs of a run (they model concurrent jobs
    #: drawing from one device population), seeded from the experiment's
    #: ``cosim`` stream.
    dataset: FederatedDataConfig = field(default_factory=FederatedDataConfig)
    #: Local-SGD hyper-parameters applied per participating client.
    learning_rate: float = 0.1
    local_epochs: int = 1
    batch_size: int = 32
    #: Test accuracies the time-to-accuracy metric is evaluated at.
    target_accuracies: Tuple[float, ...] = (0.5, 0.6, 0.7)

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.local_epochs <= 0 or self.batch_size <= 0:
            raise ValueError("local_epochs and batch_size must be positive")
        targets = tuple(float(t) for t in self.target_accuracies)
        if not targets:
            raise ValueError("need at least one target accuracy")
        if any(not (0.0 < t <= 1.0) for t in targets):
            raise ValueError("target accuracies must be in (0, 1]")
        if list(targets) != sorted(targets):
            raise ValueError("target accuracies must be ascending")
        self.target_accuracies = targets

    def with_overrides(self, overrides: Mapping[str, object]) -> "CoSimConfig":
        """Copy with scenario-level overrides folded in.

        ``overrides`` holds keyword arguments for ``dataclasses.replace``
        on this config; the special key ``"dataset"`` takes a nested
        mapping applied to :class:`FederatedDataConfig` the same way —
        this is how a :class:`~repro.scenarios.spec.ScenarioSpec` tunes
        e.g. the Dirichlet non-IID-ness without restating the rest.
        """
        if not overrides:
            return replace(self)
        top = dict(overrides)
        dataset_overrides = top.pop("dataset", None)
        known = {f.name for f in fields(self)}
        unknown = sorted(set(top) - known)
        if unknown:
            raise ValueError(f"unknown CoSimConfig overrides: {unknown}")
        dataset = self.dataset
        if dataset_overrides:
            dataset = replace(dataset, **dict(dataset_overrides))
        return replace(self, dataset=dataset, **top)


def smoke_cosim_config() -> CoSimConfig:
    """The micro FL config behind ``sweep --cosim --smoke`` and CI: a small
    non-IID dataset that converges within the quick preset's handful of
    rounds while keeping every cell in fractions of a second."""
    return CoSimConfig(
        dataset=FederatedDataConfig(
            num_clients=60,
            num_classes=5,
            num_features=16,
            samples_per_client=32,
            test_samples=400,
        ),
        learning_rate=0.2,
        target_accuracies=(0.4, 0.55, 0.7),
    )


__all__ = ["CoSimConfig", "smoke_cosim_config"]
