"""Scheduler-driven federated co-simulation.

Runs the FedAvg trainer inside the simulation loop so each simulated
round's actual reporting set selects the clients trained that round —
time-to-accuracy as a first-class metric of every scheduling scenario.
See ``docs/COSIM.md`` for the participant-set contract and the
determinism guarantees.
"""

from .config import CoSimConfig, smoke_cosim_config
from .loop import (
    CoSimResult,
    CoSimRound,
    CoSimulation,
    JobCoSim,
    map_devices_to_clients,
)

__all__ = [
    "CoSimConfig",
    "CoSimResult",
    "CoSimRound",
    "CoSimulation",
    "JobCoSim",
    "map_devices_to_clients",
    "smoke_cosim_config",
]
