"""Exact ILP formulation of the IRS problem (paper Appendix B).

Given a *known* sequence of device check-ins (offline information), the
optimal assignment of devices to jobs that minimises the average scheduling
delay can be written as an integer linear program:

* ``x_ij ∈ {0, 1}`` — device ``i`` is assigned to job ``j``;
* every device serves at most one job and only jobs it is eligible for;
* job ``j`` receives exactly ``D_j`` devices;
* job ``j``'s delay is the check-in time of the last device it receives,
  ``T_j = max_i x_ij · t_i``;
* minimise ``(1/m) Σ_j T_j``.

This module solves the ILP with :func:`scipy.optimize.milp` (HiGHS) and also
provides a brute-force solver for tiny instances, used in tests to validate
both the MILP encoding and the Venn heuristic's quality (the heuristic is
never better than the ILP and should stay close on small instances).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse


@dataclass(frozen=True)
class IRSInstance:
    """An offline IRS instance.

    Parameters
    ----------
    arrival_times:
        Check-in time ``t_i`` of each device (length ``q``).
    eligibility:
        Boolean matrix ``e_ij`` of shape ``(q, m)``; ``True`` when device
        ``i`` may serve job ``j``.
    demands:
        Demand ``D_j`` of each job (length ``m``).
    """

    arrival_times: Tuple[float, ...]
    eligibility: Tuple[Tuple[bool, ...], ...]
    demands: Tuple[int, ...]

    def __post_init__(self) -> None:
        q, m = self.num_devices, self.num_jobs
        if len(self.eligibility) != q:
            raise ValueError("eligibility must have one row per device")
        if any(len(row) != m for row in self.eligibility):
            raise ValueError("eligibility rows must have one column per job")
        if any(d <= 0 for d in self.demands):
            raise ValueError("demands must be positive")
        if any(t < 0 for t in self.arrival_times):
            raise ValueError("arrival times must be non-negative")

    @property
    def num_devices(self) -> int:
        return len(self.arrival_times)

    @property
    def num_jobs(self) -> int:
        return len(self.demands)

    @staticmethod
    def build(
        arrival_times: Sequence[float],
        eligibility: Sequence[Sequence[bool]],
        demands: Sequence[int],
    ) -> "IRSInstance":
        return IRSInstance(
            arrival_times=tuple(float(t) for t in arrival_times),
            eligibility=tuple(tuple(bool(v) for v in row) for row in eligibility),
            demands=tuple(int(d) for d in demands),
        )

    def is_feasible_assignment(self, assignment: Dict[int, int]) -> bool:
        """Check a ``device -> job`` mapping against all constraints."""
        counts = [0] * self.num_jobs
        for dev, job in assignment.items():
            if not (0 <= dev < self.num_devices and 0 <= job < self.num_jobs):
                return False
            if not self.eligibility[dev][job]:
                return False
            counts[job] += 1
        return all(c == d for c, d in zip(counts, self.demands))

    def average_delay(self, assignment: Dict[int, int]) -> float:
        """Average scheduling delay of a feasible ``device -> job`` mapping."""
        last: List[float] = [0.0] * self.num_jobs
        for dev, job in assignment.items():
            last[job] = max(last[job], self.arrival_times[dev])
        return float(sum(last) / self.num_jobs)


@dataclass
class IRSSolution:
    """Result of an exact solve."""

    #: Device index -> job index.
    assignment: Dict[int, int]
    #: Optimal average scheduling delay.
    average_delay: float
    #: Per-job delay ``T_j``.
    job_delays: List[float]
    #: Whether the solver proved optimality.
    optimal: bool


def solve_irs_milp(
    instance: IRSInstance, time_limit: Optional[float] = None
) -> IRSSolution:
    """Solve the Appendix-B ILP with HiGHS via :func:`scipy.optimize.milp`."""
    q, m = instance.num_devices, instance.num_jobs
    t = np.asarray(instance.arrival_times, dtype=float)
    elig = np.asarray(instance.eligibility, dtype=bool)
    demands = np.asarray(instance.demands, dtype=float)
    if (elig.sum(axis=0) < demands).any():
        raise ValueError("instance is infeasible: a job has too few eligible devices")

    # Variable layout: x_ij for eligible (i, j) pairs, then T_j.
    pairs = [(i, j) for i in range(q) for j in range(m) if elig[i, j]]
    pair_index = {p: k for k, p in enumerate(pairs)}
    n_x = len(pairs)
    n_vars = n_x + m

    c = np.zeros(n_vars)
    c[n_x:] = 1.0 / m  # minimise average of T_j

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    row = 0

    # (1) Each device serves at most one job: sum_j x_ij <= 1.
    for i in range(q):
        touched = False
        for j in range(m):
            if elig[i, j]:
                rows.append(row)
                cols.append(pair_index[(i, j)])
                vals.append(1.0)
                touched = True
        if touched:
            lower.append(-np.inf)
            upper.append(1.0)
            row += 1

    # (2) Each job receives exactly D_j devices: sum_i x_ij = D_j.
    for j in range(m):
        for i in range(q):
            if elig[i, j]:
                rows.append(row)
                cols.append(pair_index[(i, j)])
                vals.append(1.0)
        lower.append(float(demands[j]))
        upper.append(float(demands[j]))
        row += 1

    # (3) T_j >= t_i * x_ij  <=>  t_i * x_ij - T_j <= 0.
    for (i, j), k in pair_index.items():
        rows.append(row)
        cols.append(k)
        vals.append(float(t[i]))
        rows.append(row)
        cols.append(n_x + j)
        vals.append(-1.0)
        lower.append(-np.inf)
        upper.append(0.0)
        row += 1

    A = sparse.csc_matrix((vals, (rows, cols)), shape=(row, n_vars))
    constraints = optimize.LinearConstraint(A, lower, upper)
    integrality = np.zeros(n_vars)
    integrality[:n_x] = 1
    bounds = optimize.Bounds(
        lb=np.concatenate([np.zeros(n_x), np.zeros(m)]),
        ub=np.concatenate([np.ones(n_x), np.full(m, np.inf)]),
    )
    options = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = optimize.milp(
        c=c,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options=options,
    )
    if result.x is None:
        raise RuntimeError(f"MILP solver failed: {result.message}")
    x = np.round(result.x[:n_x]).astype(int)
    assignment: Dict[int, int] = {}
    for (i, j), k in pair_index.items():
        if x[k] == 1:
            assignment[i] = j
    job_delays = [0.0] * m
    for i, j in assignment.items():
        job_delays[j] = max(job_delays[j], float(t[i]))
    avg = float(sum(job_delays) / m)
    return IRSSolution(
        assignment=assignment,
        average_delay=avg,
        job_delays=job_delays,
        optimal=bool(result.status == 0),
    )


def solve_irs_bruteforce(instance: IRSInstance) -> IRSSolution:
    """Enumerate all feasible assignments (tiny instances only).

    Complexity is exponential; intended for cross-checking the MILP encoding
    in tests with at most ~10 devices.
    """
    q, m = instance.num_devices, instance.num_jobs
    if q > 12:
        raise ValueError("brute force limited to at most 12 devices")
    t = instance.arrival_times
    elig = instance.eligibility
    demands = list(instance.demands)

    best: Optional[Dict[int, int]] = None
    best_delay = math.inf

    # Option -1 means the device stays unassigned.
    choices: List[List[int]] = [
        [-1] + [j for j in range(m) if elig[i][j]] for i in range(q)
    ]
    for combo in itertools.product(*choices):
        counts = [0] * m
        for j in combo:
            if j >= 0:
                counts[j] += 1
        if counts != demands:
            continue
        assignment = {i: j for i, j in enumerate(combo) if j >= 0}
        delay = instance.average_delay(assignment)
        if delay < best_delay:
            best_delay = delay
            best = assignment
    if best is None:
        raise ValueError("instance is infeasible")
    job_delays = [0.0] * m
    for i, j in best.items():
        job_delays[j] = max(job_delays[j], t[i])
    return IRSSolution(
        assignment=best,
        average_delay=best_delay,
        job_delays=job_delays,
        optimal=True,
    )


__all__ = [
    "IRSInstance",
    "IRSSolution",
    "solve_irs_bruteforce",
    "solve_irs_milp",
]
