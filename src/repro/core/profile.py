"""Lightweight plan-maintenance instrumentation (counters + wall time).

The scalability work of this repo rests on two claims that are easy to
regress silently: device check-ins are O(1) (PR 1's ``AtomIndex``), and plan
maintenance pays only for what changed (the incremental delta layer of
:mod:`repro.core.plan_delta`).  This module provides the cheap, always-on
counters that make both claims *measurable* per run:

* how many triggers were served by a **full** ``build_plan`` versus an
  **incremental** in-place update (``rebuilds_avoided``);
* how each trigger was classified (request arrival / completion, job
  arrival / departure, supply drift, fairness fallback, ...);
* how large the in-place :class:`~repro.core.atom_index.AtomIndex` patches
  were (atoms re-flattened vs. whole-index rebuilds);
* wall time spent in each maintenance path, so benchmarks can report the
  *plan-maintenance time share* of a simulation instead of inferring it
  from rebuild counts.

The profile is a plain mutable dataclass owned by the scheduler
(``VennScheduler.plan_profile``); the engine snapshots it into
``SimulationMetrics.plan_maintenance`` at the end of a run, and
``benchmarks/bench_scalability.py`` surfaces it in the JSON artifact.
Counters are incremented from the scheduler's maintenance paths only —
never per check-in — so the instrumentation itself stays off the hot path.

The class lives in ``repro.core`` (its producers are the scheduler and the
delta layer, and ``repro.sim`` already depends on ``repro.core`` — the
reverse import would invert the layering); ``repro.sim.profile`` re-exports
it as the simulation-facing surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PlanMaintenanceProfile:
    """Counters and per-phase wall time for scheduling-plan maintenance."""

    #: Full ``build_plan`` runs (atom space, registry and plan from scratch).
    full_rebuilds: int = 0
    #: In-place incremental plan updates (each one is a full rebuild avoided).
    incremental_updates: int = 0
    #: Incremental updates where no job/group state changed — only supply
    #: estimates drifted (the plan's decision surface was refreshed or kept).
    supply_only_refreshes: int = 0
    #: Phase-2/3 (allocation + reallocation) re-runs inside incremental
    #: updates.
    allocation_reruns: int = 0
    #: Phase-2/3 runs skipped because no group state changed and supply
    #: drift stayed within the configured tolerance.
    allocation_skips: int = 0
    #: Per-group intra-group job re-sorts performed by incremental updates.
    groups_resorted: int = 0
    #: In-place patch operations applied to a live ``AtomIndex``.
    index_patches: int = 0
    #: Total atom signatures re-flattened across all index patches.
    index_atoms_patched: int = 0
    #: Full ``AtomIndex`` constructions (lazy build after a full rebuild).
    index_rebuilds: int = 0
    #: Wall time spent inside full rebuilds / incremental updates (seconds).
    full_rebuild_time_s: float = 0.0
    incremental_time_s: float = 0.0
    #: Trigger classification counts (see ``repro.core.plan_delta.Trigger``).
    triggers: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_trigger(self, kind: str) -> None:
        self.triggers[kind] = self.triggers.get(kind, 0) + 1

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def rebuilds_avoided(self) -> int:
        """Triggers served without a from-scratch ``build_plan``."""
        return self.incremental_updates

    @property
    def maintenance_time_s(self) -> float:
        """Total wall time spent maintaining the plan, either path."""
        return self.full_rebuild_time_s + self.incremental_time_s

    def time_share(self, wall_s: float) -> float:
        """Fraction of ``wall_s`` spent in plan maintenance."""
        if wall_s <= 0:
            return 0.0
        return self.maintenance_time_s / wall_s

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (used by metrics and benchmark artifacts)."""
        return {
            "full_rebuilds": self.full_rebuilds,
            "incremental_updates": self.incremental_updates,
            "rebuilds_avoided": self.rebuilds_avoided,
            "supply_only_refreshes": self.supply_only_refreshes,
            "allocation_reruns": self.allocation_reruns,
            "allocation_skips": self.allocation_skips,
            "groups_resorted": self.groups_resorted,
            "index_patches": self.index_patches,
            "index_atoms_patched": self.index_atoms_patched,
            "index_rebuilds": self.index_rebuilds,
            "full_rebuild_time_s": round(self.full_rebuild_time_s, 6),
            "incremental_time_s": round(self.incremental_time_s, 6),
            "maintenance_time_s": round(self.maintenance_time_s, 6),
            "triggers": dict(sorted(self.triggers.items())),
        }


__all__ = ["PlanMaintenanceProfile"]
