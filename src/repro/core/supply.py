"""Dynamic resource-supply estimation (paper §4.4).

Venn keeps a time-series record of device check-ins per eligibility atom and
queries the *average* eligible-device arrival rate over a trailing window
(24 hours by default).  Averaging over a full diurnal period makes the
scheduler "far-sighted": momentary dips or spikes in device availability do
not flip the scheduling order.

The estimator is deliberately simple: an append-only list of (time,
signature) events per atom with lazy pruning.  Query cost is amortised O(1)
per event and the memory footprint is bounded by the window length.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, Mapping, Optional, Tuple

from .requirements import AtomSignature

#: Seconds in the default averaging window (24 hours, per the paper).
DEFAULT_WINDOW = 24 * 3600.0


class SupplyEstimator:
    """Sliding-window estimator of device arrival rates per eligibility atom.

    Parameters
    ----------
    window:
        Length of the trailing window, in seconds, over which arrival rates
        are averaged.  The paper uses 24 hours so that diurnal patterns are
        smoothed out.
    prior_rates:
        Optional mapping ``signature -> devices/second`` used before any
        check-ins have been observed (and blended with observations until the
        window has filled once).  Workload generators can seed this from the
        capacity distribution so that the very first scheduling decisions are
        already contention-aware.
    """

    def __init__(
        self,
        window: float = DEFAULT_WINDOW,
        prior_rates: Optional[Mapping[AtomSignature, float]] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._events: Dict[AtomSignature, Deque[float]] = defaultdict(deque)
        self._prior: Dict[AtomSignature, float] = (
            {frozenset(k): float(v) for k, v in prior_rates.items()}
            if prior_rates
            else {}
        )
        self._first_event_time: Optional[float] = None
        self._last_event_time: Optional[float] = None
        self._total_checkins = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_checkin(self, signature: AtomSignature, now: float) -> None:
        """Record one device check-in with eligibility ``signature``."""
        sig = frozenset(signature)
        if self._last_event_time is not None and now < self._last_event_time:
            raise ValueError(
                f"check-ins must be recorded in time order "
                f"(got {now} after {self._last_event_time})"
            )
        self._events[sig].append(now)
        if self._first_event_time is None:
            self._first_event_time = now
        self._last_event_time = now
        self._total_checkins += 1
        self._prune(sig, now)

    def _prune(self, sig: AtomSignature, now: float) -> None:
        horizon = now - self.window
        events = self._events[sig]
        while events and events[0] < horizon:
            events.popleft()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def observed_signatures(self) -> Tuple[AtomSignature, ...]:
        """Signatures seen so far (plus any seeded priors)."""
        sigs = set(self._events) | set(self._prior)
        return tuple(sigs)

    def _effective_span(self, now: float) -> float:
        """Length of the observation span to divide counts by."""
        if self._first_event_time is None:
            return self.window
        span = min(self.window, max(now - self._first_event_time, 1.0))
        return span

    def rate(self, signature: AtomSignature, now: float) -> float:
        """Estimated arrival rate (devices/second) for one atom at ``now``.

        Before the window has filled once, the empirical rate is blended with
        the prior (if any) proportionally to how much of the window has been
        observed, so that cold-start estimates degrade gracefully.
        """
        sig = frozenset(signature)
        self._prune(sig, now)
        span = self._effective_span(now)
        count = len(self._events.get(sig, ()))
        empirical = count / span
        prior = self._prior.get(sig)
        if prior is None:
            return empirical
        fill = min(1.0, span / self.window) if self._total_checkins else 0.0
        return fill * empirical + (1.0 - fill) * prior

    def rate_for_atoms(
        self, atoms: Iterable[AtomSignature], now: float
    ) -> float:
        """Total arrival rate across a set of atoms (a requirement's supply)."""
        return sum(self.rate(a, now) for a in set(map(frozenset, atoms)))

    def rates(self, now: float) -> Dict[AtomSignature, float]:
        """Arrival-rate estimate for every known atom."""
        return {sig: self.rate(sig, now) for sig in self.observed_signatures()}

    def count_in_window(self, signature: AtomSignature, now: float) -> int:
        """Raw number of check-ins for ``signature`` inside the window."""
        sig = frozenset(signature)
        self._prune(sig, now)
        return len(self._events.get(sig, ()))

    @property
    def total_checkins(self) -> int:
        """Total number of check-ins ever recorded (window-independent)."""
        return self._total_checkins


__all__ = ["DEFAULT_WINDOW", "SupplyEstimator"]
