"""Dynamic resource-supply estimation (paper §4.4).

Venn tracks device check-ins per eligibility atom and queries the *average*
eligible-device arrival rate over a trailing window (24 hours by default).
Averaging over a full diurnal period makes the scheduler "far-sighted":
momentary dips or spikes in device availability do not flip the scheduling
order.

The estimator is an incremental *streaming* one: check-ins are accumulated
into coarse time buckets (a ring of ``num_buckets`` buckets spanning the
window) and a running per-atom count is maintained as buckets enter and
leave the window.  Recording a check-in is amortised O(1), querying a rate
is O(1), and the memory footprint is O(num_buckets) per atom — independent
of the number of devices or check-ins, which is what lets the estimator
keep up with million-device traces.  The only approximation versus an exact
sliding window is that events age out at bucket granularity
(``window / num_buckets``, 5-6 minutes for the default 24 h window).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .requirements import AtomSignature, sorted_atoms

#: Seconds in the default averaging window (24 hours, per the paper).
DEFAULT_WINDOW = 24 * 3600.0

#: Default number of time buckets the window is divided into.
DEFAULT_NUM_BUCKETS = 256


class SupplyEstimator:
    """Streaming sliding-window estimator of device arrival rates per atom.

    Parameters
    ----------
    window:
        Length of the trailing window, in seconds, over which arrival rates
        are averaged.  The paper uses 24 hours so that diurnal patterns are
        smoothed out.
    prior_rates:
        Optional mapping ``signature -> devices/second`` used before any
        check-ins have been observed (and blended with observations until the
        window has filled once).  Workload generators can seed this from the
        capacity distribution so that the very first scheduling decisions are
        already contention-aware.
    num_buckets:
        Number of time buckets the window is divided into.  More buckets
        track an exact sliding window more closely; fewer buckets use less
        memory.  Events leave the window at ``window / num_buckets``
        granularity.
    """

    def __init__(
        self,
        window: float = DEFAULT_WINDOW,
        prior_rates: Optional[Mapping[AtomSignature, float]] = None,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.window = float(window)
        self.num_buckets = int(num_buckets)
        self._bucket_width = self.window / self.num_buckets
        #: Per-atom ring of ``[bucket_index, count]`` pairs, oldest first.
        self._buckets: Dict[AtomSignature, Deque[List[int]]] = defaultdict(deque)
        #: Per-atom running count of check-ins inside the window.
        self._counts: Dict[AtomSignature, int] = defaultdict(int)
        self._prior: Dict[AtomSignature, float] = (
            {frozenset(k): float(v) for k, v in prior_rates.items()}
            if prior_rates
            else {}
        )
        self._first_event_time: Optional[float] = None
        self._last_event_time: Optional[float] = None
        self._total_checkins = 0
        #: Bumped whenever :meth:`observed_signatures` grows — consumers
        #: (the incremental plan-maintenance layer) cache per-group eligible
        #: atom sets against this version instead of re-deriving them on
        #: every plan refresh.
        self._signature_version = len(self._prior)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_checkin(self, signature: AtomSignature, now: float) -> None:
        """Record one device check-in with eligibility ``signature``.

        Amortised O(1): the check-in lands in the current time bucket, and
        buckets that aged out of the window are retired from the running
        count as a side effect.
        """
        sig = frozenset(signature)
        if self._last_event_time is not None and now < self._last_event_time:
            raise ValueError(
                f"check-ins must be recorded in time order "
                f"(got {now} after {self._last_event_time})"
            )
        bucket = int(now // self._bucket_width)
        ring = self._buckets.get(sig)
        if ring is None:
            ring = self._buckets[sig] = deque()
            if sig not in self._prior:
                # A signature never seen before: the observed set grew.
                self._signature_version += 1
        if ring and ring[-1][0] == bucket:
            ring[-1][1] += 1
        else:
            ring.append([bucket, 1])
        self._counts[sig] += 1
        if self._first_event_time is None:
            self._first_event_time = now
        self._last_event_time = now
        self._total_checkins += 1
        self._prune(sig, now)

    def record_checkins_batch(
        self,
        sig_ids: "np.ndarray",
        times: "np.ndarray",
        sig_table: Sequence[AtomSignature],
    ) -> None:
        """Record a time-ordered batch of check-ins as array operations.

        ``sig_ids[i]`` indexes ``sig_table`` to give event *i*'s signature;
        ``times`` must be non-decreasing and start no earlier than the last
        recorded event.  The resulting estimator state (rings, counts,
        versions, timestamps) is bit-identical to calling
        :meth:`record_checkin` once per event in order: bucket membership
        uses the same floor division, rings are per-signature so grouping by
        signature preserves each ring's append order, and pruning is a
        monotone left-trim — pruning once at each group's last timestamp
        retires exactly the buckets the per-event prunes would have.
        """
        n = len(times)
        if n == 0:
            return
        t0 = float(times[0])
        if self._last_event_time is not None and t0 < self._last_event_time:
            raise ValueError(
                f"check-ins must be recorded in time order "
                f"(got {t0} after {self._last_event_time})"
            )
        if n > 1 and bool(np.any(np.diff(times) < 0.0)):
            raise ValueError("batch timestamps must be non-decreasing")
        buckets = np.floor_divide(times, self._bucket_width).astype(np.int64)
        order = np.argsort(sig_ids, kind="stable")
        sorted_sids = np.asarray(sig_ids)[order]
        boundaries = np.nonzero(np.diff(sorted_sids))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [n]))
        for s, e in zip(starts, ends):
            sig = frozenset(sig_table[int(sorted_sids[s])])
            idx = order[s:e]  # stable sort: ascending ⇒ original event order
            ring = self._buckets.get(sig)
            if ring is None:
                ring = self._buckets[sig] = deque()
                if sig not in self._prior:
                    self._signature_version += 1
            grp = buckets[idx]
            uniq, counts = np.unique(grp, return_counts=True)
            i = 0
            if ring and len(uniq) and ring[-1][0] == int(uniq[0]):
                ring[-1][1] += int(counts[0])
                i = 1
            for j in range(i, len(uniq)):
                ring.append([int(uniq[j]), int(counts[j])])
            self._counts[sig] += int(e - s)
            self._prune(sig, float(times[int(idx[-1])]))
        if self._first_event_time is None:
            self._first_event_time = t0
        self._last_event_time = float(times[-1])
        self._total_checkins += n

    def _prune(self, sig: AtomSignature, now: float) -> None:
        """Retire buckets that lie entirely before ``now - window``."""
        horizon = now - self.window
        ring = self._buckets.get(sig)
        if not ring:
            return
        width = self._bucket_width
        while ring and (ring[0][0] + 1) * width <= horizon:
            self._counts[sig] -= ring.popleft()[1]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def observed_signatures(self) -> Tuple[AtomSignature, ...]:
        """Signatures seen so far (plus any seeded priors), in canonical
        order — hash order would leak ``PYTHONHASHSEED`` into downstream
        float accumulation and break run-level reproducibility."""
        sigs = set(self._buckets) | set(self._prior)
        return tuple(sorted_atoms(sigs))

    def _effective_span(self, now: float) -> float:
        """Length of the observation span to divide counts by."""
        if self._first_event_time is None:
            return self.window
        span = min(self.window, max(now - self._first_event_time, 1.0))
        return span

    def rate(self, signature: AtomSignature, now: float) -> float:
        """Estimated arrival rate (devices/second) for one atom at ``now``.

        Before the window has filled once, the empirical rate is blended with
        the prior (if any) proportionally to how much of the window has been
        observed, so that cold-start estimates degrade gracefully.
        """
        sig = frozenset(signature)
        self._prune(sig, now)
        span = self._effective_span(now)
        empirical = self._counts.get(sig, 0) / span
        prior = self._prior.get(sig)
        if prior is None:
            return empirical
        fill = min(1.0, span / self.window) if self._total_checkins else 0.0
        return fill * empirical + (1.0 - fill) * prior

    def rate_for_atoms(
        self, atoms: Iterable[AtomSignature], now: float
    ) -> float:
        """Total arrival rate across a set of atoms (a requirement's supply).

        Summed in canonical atom order so the floating-point result is
        independent of set iteration (and therefore hash) order.
        """
        return sum(
            self.rate(a, now) for a in sorted_atoms(set(map(frozenset, atoms)))
        )

    def rates(self, now: float) -> Dict[AtomSignature, float]:
        """Arrival-rate estimate for every known atom, in one pass.

        Float-identical to calling :meth:`rate` per signature: the
        observation span (and hence the prior-blend fill factor) depends
        only on ``now`` — never on the signature — so it is computed once
        and reused, and per-signature pruning is exactly the per-call
        prune.  This is the supply read the batched response rail triggers
        (a completed round re-opens demand and the next plan refresh
        queries every atom), so it avoids re-deriving the span per atom.
        """
        span = self._effective_span(now)
        fill = (
            min(1.0, span / self.window) if self._total_checkins else 0.0
        )
        counts = self._counts
        prior = self._prior
        out: Dict[AtomSignature, float] = {}
        for sig in self.observed_signatures():
            self._prune(sig, now)
            empirical = counts.get(sig, 0) / span
            p = prior.get(sig)
            if p is None:
                out[sig] = empirical
            else:
                out[sig] = fill * empirical + (1.0 - fill) * p
        return out

    def count_in_window(self, signature: AtomSignature, now: float) -> int:
        """Number of check-ins for ``signature`` inside the window.

        Exact up to bucket granularity: events in a partially-expired bucket
        are still counted until the whole bucket ages out.
        """
        sig = frozenset(signature)
        self._prune(sig, now)
        return self._counts.get(sig, 0)

    @property
    def total_checkins(self) -> int:
        """Total number of check-ins ever recorded (window-independent)."""
        return self._total_checkins

    @property
    def signature_version(self) -> int:
        """Monotonic version of the observed-signature *set*.

        Unchanged version guarantees :meth:`observed_signatures` (and hence
        the key set of :meth:`rates`) is unchanged — rate *values* still
        drift with time and new check-ins.
        """
        return self._signature_version


__all__ = ["DEFAULT_NUM_BUCKETS", "DEFAULT_WINDOW", "SupplyEstimator"]
