"""Baseline scheduling policies the paper compares against (§2.2, §5.1).

All production CL resource managers the paper surveys boil down to *random
device-to-job matching* in different forms:

* **Apple** (Paulik et al., 2021): client-driven — each device independently
  samples one job it is able to execute (:class:`ClientDrivenRandomPolicy`).
* **Meta** (Huba et al., 2022): centralised — the coordinator randomly
  matches each device with one eligible job
  (:class:`UniformRandomPolicy`).
* **Google** (Bonawitz et al., 2019): job-driven — each job samples from the
  available devices; from the device's point of view this weights jobs by
  their outstanding demand (:class:`JobDrivenRandomPolicy`).

The evaluation's "Random" baseline is the *optimized* variant
(:class:`RandomMatchingPolicy`): jobs are placed in a random but *fixed*
priority order so that devices concentrate on one job at a time, which
reduces round abortions under contention and makes for a stronger baseline —
exactly as described in §5.1.

In addition, the classical ordered policies used in the evaluation:

* :class:`FIFOPolicy` — earliest-arrived job first.
* :class:`SRSFPolicy` — smallest remaining service (total remaining demand)
  first.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .policy import BasePolicy, SeededRngMixin
from .types import DeviceProfile, JobSpec, ResourceRequest


class _OrderedPolicy(BasePolicy):
    """Shared machinery for policies that keep a priority order over jobs.

    Subclasses provide :meth:`job_priority`; at each check-in the device is
    offered to eligible open requests in ascending priority.
    """

    def job_priority(self, job_id: int, now: float) -> float:
        raise NotImplementedError

    def assign(
        self, device: DeviceProfile, now: float
    ) -> Optional[ResourceRequest]:
        candidates = self.eligible_open_requests(device)
        if not candidates:
            return None
        candidates.sort(key=lambda r: (self.job_priority(r.job_id, now), r.job_id))
        return candidates[0]


class FIFOPolicy(_OrderedPolicy):
    """First-in-first-out: devices go to the earliest-arrived eligible job."""

    name = "fifo"

    def job_priority(self, job_id: int, now: float) -> float:
        return self.job_arrival.get(job_id, float("inf"))


class SRSFPolicy(_OrderedPolicy):
    """Shortest Remaining Service First.

    The remaining service of a CL job is its outstanding device demand
    (devices still needed this round plus future rounds).  SRSF is a strong
    single-resource heuristic but, as the paper's toy example (Figure 3)
    shows, it ignores *which* resources a job needs and therefore wastes
    scarce devices on jobs that could use abundant ones.
    """

    name = "srsf"

    def job_priority(self, job_id: int, now: float) -> float:
        return float(self.remaining_job_demand(job_id))


class RandomMatchingPolicy(SeededRngMixin, _OrderedPolicy):
    """The paper's optimized Random baseline.

    Devices are offered to eligible jobs following a randomized job order
    rather than by independent per-device sampling: each job draws a fresh
    random priority whenever it opens a round request.  Compared with uniform
    per-device sampling this concentrates devices on one job at a time within
    a round, which reduces round abortions under contention and makes for the
    stronger baseline described in §5.1.
    """

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        super().__init__()
        self._init_rng(seed)
        self._priorities: dict = {}

    def on_job_arrival(self, job: JobSpec, now: float) -> None:
        super().on_job_arrival(job, now)
        self._priorities[job.job_id] = float(self._rng.random())

    def on_request_open(self, request: ResourceRequest, now: float) -> None:
        super().on_request_open(request, now)
        # Re-randomise the job's place in the order for every round request.
        self._priorities[request.job_id] = float(self._rng.random())

    def on_job_finished(self, job_id: int, now: float) -> None:
        super().on_job_finished(job_id, now)
        self._priorities.pop(job_id, None)

    def job_priority(self, job_id: int, now: float) -> float:
        return self._priorities.get(job_id, 1.0)


class UniformRandomPolicy(SeededRngMixin, BasePolicy):
    """Meta-style centralised random matching.

    Every checked-in device is matched uniformly at random with one of the
    jobs it is eligible for.  This scatters devices across jobs and is the
    weakest baseline under contention.
    """

    name = "uniform_random"

    def __init__(self, seed: Optional[int] = None) -> None:
        super().__init__()
        self._init_rng(seed)

    def assign(
        self, device: DeviceProfile, now: float
    ) -> Optional[ResourceRequest]:
        candidates = self.eligible_open_requests(device)
        if not candidates:
            return None
        idx = int(self._rng.integers(0, len(candidates)))
        return candidates[idx]


class ClientDrivenRandomPolicy(UniformRandomPolicy):
    """Apple-style client-driven matching.

    Each client independently samples from the list of jobs it can execute.
    Because our simulator centralises the decision, the behaviour is the same
    uniform choice as :class:`UniformRandomPolicy`; the class exists so that
    experiments can label the three production designs separately.
    """

    name = "client_driven_random"


class JobDrivenRandomPolicy(SeededRngMixin, BasePolicy):
    """Google-style job-driven matching.

    Each job independently samples from the available devices.  Jobs with a
    larger outstanding demand issue more sampling attempts, so from a
    device's perspective the probability of landing on a job is proportional
    to that job's remaining demand.
    """

    name = "job_driven_random"

    def __init__(self, seed: Optional[int] = None) -> None:
        super().__init__()
        self._init_rng(seed)

    def assign(
        self, device: DeviceProfile, now: float
    ) -> Optional[ResourceRequest]:
        candidates = self.eligible_open_requests(device)
        if not candidates:
            return None
        weights = np.array(
            [max(1, c.remaining_demand) for c in candidates], dtype=float
        )
        weights /= weights.sum()
        idx = int(self._rng.choice(len(candidates), p=weights))
        return candidates[idx]


def make_policy(name: str, seed: Optional[int] = None, **kwargs) -> BasePolicy:
    """Factory used by experiments and benchmarks.

    Recognised names: ``random``, ``uniform_random``, ``client_driven_random``,
    ``job_driven_random``, ``fifo``, ``srsf``, ``venn``, ``venn_wo_sched``,
    ``venn_wo_match``.
    """
    from .scheduler import VennScheduler  # local import avoids a cycle

    name = name.lower()
    if name == "random":
        return RandomMatchingPolicy(seed=seed)
    if name == "uniform_random":
        return UniformRandomPolicy(seed=seed)
    if name == "client_driven_random":
        return ClientDrivenRandomPolicy(seed=seed)
    if name == "job_driven_random":
        return JobDrivenRandomPolicy(seed=seed)
    if name == "fifo":
        return FIFOPolicy()
    if name == "srsf":
        return SRSFPolicy()
    if name == "venn":
        return VennScheduler(seed=seed, **kwargs)
    if name == "venn_wo_sched":
        return VennScheduler(seed=seed, enable_scheduling=False, **kwargs)
    if name == "venn_wo_match":
        return VennScheduler(seed=seed, enable_matching=False, **kwargs)
    raise ValueError(f"unknown policy name: {name!r}")


#: Names accepted by :func:`make_policy`, in report order.
POLICY_NAMES: List[str] = [
    "random",
    "uniform_random",
    "client_driven_random",
    "job_driven_random",
    "fifo",
    "srsf",
    "venn_wo_sched",
    "venn_wo_match",
    "venn",
]


__all__ = [
    "ClientDrivenRandomPolicy",
    "FIFOPolicy",
    "JobDrivenRandomPolicy",
    "POLICY_NAMES",
    "RandomMatchingPolicy",
    "SRSFPolicy",
    "UniformRandomPolicy",
    "make_policy",
]
