"""Venn's core: scheduling, matching, fairness, baselines and the exact ILP.

This subpackage contains the paper's primary contribution — the
contention-aware Intersection Resource Scheduling heuristic (Algorithm 1),
the resource-aware tier-based device matching (Algorithm 2), the fairness
knob, the dynamic supply estimator — together with the baseline policies the
evaluation compares against and the exact ILP formulation from Appendix B.
"""

from .atom_index import AtomIndex
from .baselines import (
    ClientDrivenRandomPolicy,
    FIFOPolicy,
    JobDrivenRandomPolicy,
    POLICY_NAMES,
    RandomMatchingPolicy,
    SRSFPolicy,
    UniformRandomPolicy,
    make_policy,
)
from .fairness import FairnessController
from .ilp import IRSInstance, IRSSolution, solve_irs_bruteforce, solve_irs_milp
from .irs import GroupAllocation, SchedulingPlan, build_plan
from .job_group import GroupJobEntry, JobGroup, JobGroupRegistry
from .matching import (
    JobMatchingProfile,
    TierDecision,
    TierMatcher,
    device_capacity_metric,
)
from .plan_delta import PlanDelta, PlanMaintainer, Trigger
from .profile import PlanMaintenanceProfile
from .policy import BasePolicy, SchedulingPolicy
from .requirements import (
    COMPUTE_RICH,
    DEFAULT_CATEGORIES,
    GENERAL,
    HIGH_PERFORMANCE,
    MEMORY_RICH,
    AtomSpace,
    EligibilityRequirement,
    signature_of,
)
from .scheduler import VennScheduler
from .supply import SupplyEstimator
from .types import (
    Assignment,
    DeviceProfile,
    JobSpec,
    JobState,
    RequestState,
    ResourceRequest,
)

__all__ = [
    "Assignment",
    "AtomIndex",
    "AtomSpace",
    "BasePolicy",
    "COMPUTE_RICH",
    "ClientDrivenRandomPolicy",
    "DEFAULT_CATEGORIES",
    "DeviceProfile",
    "EligibilityRequirement",
    "FIFOPolicy",
    "FairnessController",
    "GENERAL",
    "GroupAllocation",
    "GroupJobEntry",
    "HIGH_PERFORMANCE",
    "IRSInstance",
    "IRSSolution",
    "JobDrivenRandomPolicy",
    "JobGroup",
    "JobGroupRegistry",
    "JobMatchingProfile",
    "JobSpec",
    "JobState",
    "MEMORY_RICH",
    "PlanDelta",
    "PlanMaintainer",
    "PlanMaintenanceProfile",
    "POLICY_NAMES",
    "RandomMatchingPolicy",
    "RequestState",
    "ResourceRequest",
    "SRSFPolicy",
    "SchedulingPlan",
    "SchedulingPolicy",
    "SupplyEstimator",
    "TierDecision",
    "TierMatcher",
    "Trigger",
    "UniformRandomPolicy",
    "VennScheduler",
    "build_plan",
    "device_capacity_metric",
    "make_policy",
    "signature_of",
    "solve_irs_bruteforce",
    "solve_irs_milp",
]
