"""Core data types shared across the Venn reproduction.

The vocabulary follows the paper (Liu et al., MLSys 2025):

* A :class:`DeviceProfile` is an edge device with normalised hardware scores,
  a relative execution-speed factor, optional data-domain tags and a
  reliability (probability of successfully completing an assigned task).
* An :class:`EligibilityRequirement` (see :mod:`repro.core.requirements`)
  describes which devices a job may use.
* A :class:`JobSpec` is a CL job: an eligibility requirement, a per-round
  participant demand, a number of rounds and per-round deadline parameters.
* A :class:`ResourceRequest` is one round's resource demand submitted to the
  resource manager (step 0 in Figure 6 of the paper).

All objects are plain dataclasses so they can be constructed directly by
users of the library, serialised easily, and used as stable keys where
hashable.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional


class RequestState(enum.Enum):
    """Lifecycle of a single round's resource request."""

    #: Submitted to the resource manager, still acquiring devices.
    PENDING = "pending"
    #: All ``demand`` devices have been assigned; waiting for responses.
    COLLECTING = "collecting"
    #: Enough responses arrived before the deadline; the round succeeded.
    COMPLETED = "completed"
    #: The deadline passed before enough responses arrived.
    ABORTED = "aborted"
    #: The owning job was cancelled / removed.
    CANCELLED = "cancelled"


class JobState(enum.Enum):
    """Lifecycle of a CL job inside the simulator / resource manager."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    CANCELLED = "cancelled"


@dataclass(frozen=True, slots=True)
class DeviceProfile:
    """A single edge device.

    Parameters
    ----------
    device_id:
        Unique integer identifier.
    cpu_score:
        Normalised CPU capability in ``[0, 1]`` (Figure 2b / 8a of the paper).
    memory_score:
        Normalised memory capability in ``[0, 1]``.
    speed_factor:
        Multiplier applied to the base on-device computation time of a task.
        ``1.0`` is the population median; smaller is faster.  Derived from the
        hardware scores by the capacity sampler.
    data_domains:
        Data domains present on the device (e.g. ``{"keyboard", "emoji"}``).
        A job whose requirement names a domain can only use devices that hold
        that domain.
    reliability:
        Probability that the device completes an assigned task instead of
        dropping out mid-round (battery, connectivity, ...).
    """

    device_id: int
    cpu_score: float
    memory_score: float
    speed_factor: float = 1.0
    data_domains: frozenset = frozenset()
    reliability: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.cpu_score <= 1.0):
            raise ValueError(f"cpu_score must be in [0, 1], got {self.cpu_score}")
        if not (0.0 <= self.memory_score <= 1.0):
            raise ValueError(
                f"memory_score must be in [0, 1], got {self.memory_score}"
            )
        if self.speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {self.speed_factor}")
        if not (0.0 <= self.reliability <= 1.0):
            raise ValueError(f"reliability must be in [0, 1], got {self.reliability}")


@dataclass
class JobSpec:
    """Static description of a CL job submitted to the resource manager.

    Parameters
    ----------
    job_id:
        Unique integer identifier.
    requirement:
        The :class:`~repro.core.requirements.EligibilityRequirement` the job's
        devices must satisfy.
    demand_per_round:
        Number of participant devices requested per round (``D_i``).
    num_rounds:
        Number of training rounds the job runs before completing.
    arrival_time:
        Simulated time (seconds) at which the job arrives.
    round_deadline:
        Per-round deadline in seconds.  The paper uses 5-15 minutes depending
        on the round demand.
    min_report_fraction:
        Fraction of ``demand_per_round`` that must report back before the
        deadline for the round to count as successful (0.8 in the paper).
    base_task_duration:
        Median on-device computation time (seconds) of one round's task for a
        device with ``speed_factor == 1``.
    name:
        Optional human-readable name (e.g. ``"emoji-prediction"``).
    """

    job_id: int
    requirement: "object"
    demand_per_round: int
    num_rounds: int
    arrival_time: float = 0.0
    round_deadline: float = 600.0
    min_report_fraction: float = 0.8
    base_task_duration: float = 60.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.demand_per_round <= 0:
            raise ValueError("demand_per_round must be positive")
        if self.num_rounds <= 0:
            raise ValueError("num_rounds must be positive")
        if not (0.0 < self.min_report_fraction <= 1.0):
            raise ValueError("min_report_fraction must be in (0, 1]")
        if self.round_deadline <= 0:
            raise ValueError("round_deadline must be positive")
        if self.base_task_duration <= 0:
            raise ValueError("base_task_duration must be positive")
        if not self.name:
            self.name = f"job-{self.job_id}"

    @property
    def total_demand(self) -> int:
        """Total device-participations the job needs across all rounds."""
        return self.demand_per_round * self.num_rounds

    @property
    def min_reports(self) -> int:
        """Number of responses a round needs to be declared successful."""
        return max(1, math.ceil(self.min_report_fraction * self.demand_per_round))


@dataclass(slots=True)
class ResourceRequest:
    """One round's resource request (paper Figure 6, step 0).

    A request is opened when a job starts a round and closed either when it
    completes (enough responses) or aborts (deadline).  The resource manager
    only ever sees open requests.
    """

    request_id: int
    job_id: int
    demand: int
    submit_time: float
    deadline: float
    min_reports: int
    round_index: int = 0
    state: RequestState = RequestState.PENDING
    #: Device ids assigned so far (in assignment order).
    assigned: list = field(default_factory=list)
    #: ``device_id -> assignment time`` for O(1) membership tests and time
    #: lookups on the check-in/response hot paths (kept in sync by
    #: :meth:`record_assignment`).
    assigned_ids: dict = field(default_factory=dict)
    #: Assignment times corresponding to ``assigned``.
    assigned_times: list = field(default_factory=list)
    #: Device ids that reported back, with report times.
    responses: dict = field(default_factory=dict)
    #: Time at which the demand was fully acquired (end of scheduling delay).
    acquired_time: Optional[float] = None
    #: Time at which the request reached a terminal state.
    close_time: Optional[float] = None
    #: Scheduled device responses that have not fired yet.  Incremented by
    #: :meth:`record_assignment` (every assignment schedules exactly one
    #: response event, success or failure) and decremented by the engine's
    #: response handlers; a closed request with ``in_flight == 0`` can never
    #: be looked up again, so the engine evicts it from its request table —
    #: the fix for the unbounded ``Simulator._requests`` growth on
    #: multi-day runs.
    in_flight: int = 0
    #: Devices still needed to fully satisfy this request.  Maintained by
    #: :meth:`record_assignment` (always ``max(0, demand - len(assigned))``)
    #: instead of being recomputed per read: this is one of the hottest
    #: fields in the simulator (every candidate walked at every check-in
    #: reads it).
    remaining_demand: int = field(init=False)

    def __post_init__(self) -> None:
        self.remaining_demand = max(0, self.demand - len(self.assigned))

    @property
    def is_open(self) -> bool:
        state = self.state
        return state is RequestState.PENDING or state is RequestState.COLLECTING

    def is_assigned(self, device_id: int) -> bool:
        """O(1) test whether ``device_id`` is already assigned here."""
        return device_id in self.assigned_ids

    def assigned_time_of(self, device_id: int) -> Optional[float]:
        """O(1) lookup of when ``device_id`` was assigned, if it was."""
        return self.assigned_ids.get(device_id)

    def record_assignment(self, device_id: int, now: float) -> None:
        """Record that ``device_id`` was matched to this request at ``now``."""
        if not self.is_open:
            raise ValueError(f"cannot assign to a {self.state.value} request")
        if self.remaining_demand <= 0:
            raise ValueError("request demand already satisfied")
        if device_id in self.assigned_ids:
            raise ValueError(
                f"device {device_id} is already assigned to this request"
            )
        self.assigned.append(device_id)
        self.assigned_ids[device_id] = now
        self.assigned_times.append(now)
        self.in_flight += 1
        self.remaining_demand = max(0, self.demand - len(self.assigned))
        if self.remaining_demand == 0:
            self.state = RequestState.COLLECTING
            self.acquired_time = now

    def record_assignments_bulk(self, device_ids: list, now: float) -> None:
        """Bulk twin of :meth:`record_assignment` for a same-time cohort.

        State-identical to calling :meth:`record_assignment` once per id in
        order (the batched decision path commits whole cohorts at one
        timestamp).  The same invariants are enforced, just once per batch
        instead of once per device: the request must be open, the batch
        must fit the remaining demand, and no id may already be assigned
        (ids within the batch are unique by construction — one device
        checks in at most once per dispatch cohort).
        """
        if not self.is_open:
            raise ValueError(f"cannot assign to a {self.state.value} request")
        if len(device_ids) > self.remaining_demand:
            raise ValueError("request demand already satisfied")
        assigned_ids = self.assigned_ids
        for device_id in device_ids:
            if device_id in assigned_ids:
                raise ValueError(
                    f"device {device_id} is already assigned to this request"
                )
        self.assigned.extend(device_ids)
        for device_id in device_ids:
            assigned_ids[device_id] = now
        self.assigned_times.extend([now] * len(device_ids))
        self.in_flight += len(device_ids)
        self.remaining_demand = max(0, self.demand - len(self.assigned))
        if self.remaining_demand == 0:
            self.state = RequestState.COLLECTING
            self.acquired_time = now

    def record_response(self, device_id: int, now: float) -> None:
        """Record a successful device report at time ``now``."""
        if device_id not in self.assigned_ids:
            raise ValueError(f"device {device_id} was never assigned to this request")
        self.responses[device_id] = now

    def record_responses_bulk(self, device_ids: list, now: float) -> None:
        """Bulk twin of :meth:`record_response` for a same-time cohort.

        State-identical to calling :meth:`record_response` once per id in
        order: the ``responses`` dict gains the same keys in the same
        insertion order with the same timestamp, and the same invariant is
        enforced once per batch — every reporting device must have been
        assigned here (ids within a batch are unique by construction: a
        device has at most one in-flight response per request).
        """
        assigned_ids = self.assigned_ids
        for device_id in device_ids:
            if device_id not in assigned_ids:
                raise ValueError(
                    f"device {device_id} was never assigned to this request"
                )
        responses = self.responses
        for device_id in device_ids:
            responses[device_id] = now

    @property
    def scheduling_delay(self) -> Optional[float]:
        """Time from submission to full acquisition, if acquired."""
        if self.acquired_time is None:
            return None
        return self.acquired_time - self.submit_time

    @property
    def response_collection_time(self) -> Optional[float]:
        """Time from full acquisition to the closing response, if completed."""
        if self.acquired_time is None or self.close_time is None:
            return None
        if self.state is not RequestState.COMPLETED:
            return None
        return self.close_time - self.acquired_time

    @property
    def duration(self) -> Optional[float]:
        """End-to-end round duration (scheduling delay + collection time)."""
        if self.close_time is None:
            return None
        return self.close_time - self.submit_time


@dataclass
class Assignment:
    """A single device-to-request assignment decision made by a policy."""

    device_id: int
    job_id: int
    request_id: int
    time: float


__all__ = [
    "Assignment",
    "DeviceProfile",
    "JobSpec",
    "JobState",
    "RequestState",
    "ResourceRequest",
]
