"""Resource-aware tier-based device-to-job matching — Algorithm 2 (§4.3).

Response collection time is set by the *slowest* of a round's participants,
so handing a job a set of devices with similar (high) capability shortens the
round even if acquiring them takes slightly longer.  Venn therefore:

1. profiles, per job, the hardware capability and response time of past
   participants;
2. partitions the job's eligible devices into ``V`` capability tiers using
   quantile thresholds learnt from that profile;
3. estimates a speed-up factor ``g_v = t_v / t_0`` per tier (the ratio of the
   tier's 95th-percentile response time to the un-tiered 95th percentile);
4. for each served request picks a tier uniformly at random and restricts the
   job to that tier *only when doing so is predicted to lower its JCT*, i.e.
   when ``V + g_u * c_i < c_i + 1`` where ``c_i`` is the job's measured ratio
   of response-collection time to scheduling delay (Figure 7 of the paper).

Devices outside the chosen tier are not wasted: they flow to the next job in
the group's order, which the Venn scheduler handles at assignment time.

The random tier pick draws from the :class:`numpy.random.Generator` injected
at construction — the Venn scheduler passes its own, which in turn is either
its explicit seed or the simulation engine's single run generator (via
``bind_rng``), so one seed reproduces a run bit-for-bit.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from .types import DeviceProfile

#: Percentile used as the statistical tail of the response-time distribution,
#: excluding failures and extreme stragglers (per §4.3).
TAIL_PERCENTILE = 95.0


def device_capacity_metric(device: DeviceProfile) -> float:
    """Scalar capability score used to place a device into a tier.

    Faster devices (smaller ``speed_factor``) get a larger score; hardware
    scores break ties between devices with identical speed factors.  Any
    monotone-in-speed metric works; this one is cheap and deterministic.
    """
    return 1.0 / device.speed_factor + 1e-3 * (
        device.cpu_score + device.memory_score
    )


@dataclass(frozen=True)
class TierDecision:
    """Outcome of Algorithm 2 for one served request."""

    #: Whether tier-based matching is active for the request.
    use_tier: bool
    #: Index of the chosen tier (0 = slowest tier), when active.
    tier_index: Optional[int] = None
    #: Capability-metric bounds ``[low, high)`` of the chosen tier.
    low: float = -math.inf
    high: float = math.inf

    def accepts(self, device: DeviceProfile) -> bool:
        """True when the device may serve the request under this decision."""
        if not self.use_tier:
            return True
        metric = device_capacity_metric(device)
        return self.low <= metric < self.high


#: Decision used whenever tier-based matching is off (profiling rounds,
#: single-tier configurations, or when the JCT test says it would not help).
NO_TIER = TierDecision(use_tier=False)


class JobMatchingProfile:
    """Per-job profiling state feeding Algorithm 2.

    Records, over a sliding history of recent rounds, the capability metric
    and response time of every participant plus each round's scheduling delay
    and response-collection time.  From these it derives the tier thresholds,
    the per-tier speed-up factors ``g_v`` and the job's response-to-schedule
    ratio ``c_i``.
    """

    def __init__(self, num_tiers: int = 4, history: int = 2000) -> None:
        if num_tiers < 1:
            raise ValueError("num_tiers must be >= 1")
        if history < 10:
            raise ValueError("history must be >= 10 samples")
        self.num_tiers = int(num_tiers)
        self._capacities: Deque[float] = deque(maxlen=history)
        self._response_times: Deque[float] = deque(maxlen=history)
        self._sched_delays: Deque[float] = deque(maxlen=64)
        self._collect_times: Deque[float] = deque(maxlen=64)
        self._rounds_profiled = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_participation(
        self, device: DeviceProfile, response_time: float
    ) -> None:
        """Record one participant's capability and response latency."""
        if response_time < 0:
            raise ValueError("response_time must be non-negative")
        self._capacities.append(device_capacity_metric(device))
        self._response_times.append(float(response_time))

    def record_round(
        self, scheduling_delay: float, response_collection_time: float
    ) -> None:
        """Record a completed round's timing breakdown."""
        if scheduling_delay < 0 or response_collection_time < 0:
            raise ValueError("round timings must be non-negative")
        self._sched_delays.append(float(scheduling_delay))
        self._collect_times.append(float(response_collection_time))
        self._rounds_profiled += 1

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def rounds_profiled(self) -> int:
        return self._rounds_profiled

    @property
    def has_profile(self) -> bool:
        """Whether enough history exists to attempt tier-based matching."""
        return (
            self._rounds_profiled >= 1
            and len(self._capacities) >= max(4, self.num_tiers)
            and len(self._sched_delays) >= 1
        )

    def response_to_schedule_ratio(self) -> Optional[float]:
        """``c_i = t_response / t_schedule`` averaged over recent rounds."""
        if not self._sched_delays or not self._collect_times:
            return None
        sched = float(np.mean(self._sched_delays))
        collect = float(np.mean(self._collect_times))
        if sched <= 0:
            # Zero measured delay: devices were abundant, so the ratio is
            # effectively unbounded — return a large finite value.
            return math.inf if collect > 0 else 0.0
        return collect / sched

    def tier_thresholds(self) -> Optional[List[float]]:
        """Capability-metric quantile cut points defining the ``V`` tiers.

        Returns ``V - 1`` interior thresholds (ascending) or ``None`` when
        there is not enough history.  Tier ``v`` covers
        ``[thresholds[v-1], thresholds[v])`` with open ends at ±inf.
        """
        if not self.has_profile or self.num_tiers == 1:
            return [] if self.num_tiers == 1 and self.has_profile else None
        caps = np.asarray(self._capacities, dtype=float)
        qs = np.linspace(0.0, 1.0, self.num_tiers + 1)[1:-1]
        return [float(q) for q in np.quantile(caps, qs)]

    def tier_bounds(self, tier_index: int) -> Tuple[float, float]:
        """Capability bounds ``[low, high)`` for ``tier_index``."""
        thresholds = self.tier_thresholds()
        if thresholds is None:
            raise RuntimeError("profile not ready for tier bounds")
        edges = [-math.inf] + list(thresholds) + [math.inf]
        if not (0 <= tier_index < self.num_tiers):
            raise IndexError(f"tier_index {tier_index} out of range")
        return edges[tier_index], edges[tier_index + 1]

    def tier_speedups(self) -> Optional[List[float]]:
        """Per-tier speed-up factors ``g_v = t_v / t_0`` (``<= 1`` is good).

        ``t_0`` is the 95th-percentile response time over *all* profiled
        participants; ``t_v`` the 95th percentile inside tier ``v``.  Empty
        tiers inherit the global tail (factor 1.0).
        """
        if not self.has_profile:
            return None
        caps = np.asarray(self._capacities, dtype=float)
        resp = np.asarray(self._response_times, dtype=float)
        t0 = float(np.percentile(resp, TAIL_PERCENTILE))
        if t0 <= 0:
            return [1.0] * self.num_tiers
        thresholds = self.tier_thresholds() or []
        edges = [-math.inf] + list(thresholds) + [math.inf]
        speedups: List[float] = []
        for v in range(self.num_tiers):
            mask = (caps >= edges[v]) & (caps < edges[v + 1])
            if not mask.any():
                speedups.append(1.0)
                continue
            tv = float(np.percentile(resp[mask], TAIL_PERCENTILE))
            speedups.append(tv / t0)
        return speedups


class TierMatcher:
    """Algorithm 2: decide, per served request, whether to restrict the job
    to a randomly chosen device tier.

    One matcher instance serves one job.  The Venn scheduler calls
    :meth:`decide` the first time it tries to place a device on a request and
    caches the returned :class:`TierDecision` for the request's lifetime.
    """

    def __init__(
        self,
        num_tiers: int = 4,
        rng: Optional[np.random.Generator] = None,
        history: int = 2000,
    ) -> None:
        self.profile = JobMatchingProfile(num_tiers=num_tiers, history=history)
        self.num_tiers = int(num_tiers)
        self._rng = rng if rng is not None else np.random.default_rng()

    def decide(self) -> TierDecision:
        """Run the JCT test of Algorithm 2 (line 7) and pick a tier.

        Returns :data:`NO_TIER` when the job has no profile yet (first
        request: profile-only, per §4.3), when only one tier is configured,
        or when the predicted JCT with tiering is not smaller.
        """
        prof = self.profile
        if self.num_tiers <= 1 or not prof.has_profile:
            return NO_TIER
        ci = prof.response_to_schedule_ratio()
        speedups = prof.tier_speedups()
        if ci is None or speedups is None:
            return NO_TIER
        tier = int(self._rng.integers(0, self.num_tiers))
        gu = speedups[tier]
        # JCT with tiering ~ V * t_schedule + g_u * t_response versus the
        # un-tiered t_schedule + t_response; dividing by t_schedule gives the
        # test of Algorithm 2 line 7.
        if math.isinf(ci):
            beneficial = gu < 1.0
        else:
            beneficial = self.num_tiers + gu * ci < ci + 1.0
        if not beneficial:
            return NO_TIER
        low, high = prof.tier_bounds(tier)
        return TierDecision(use_tier=True, tier_index=tier, low=low, high=high)

    # Convenience pass-throughs -------------------------------------------------
    def record_participation(self, device: DeviceProfile, response_time: float) -> None:
        self.profile.record_participation(device, response_time)

    def record_round(
        self, scheduling_delay: float, response_collection_time: float
    ) -> None:
        self.profile.record_round(scheduling_delay, response_collection_time)


__all__ = [
    "JobMatchingProfile",
    "NO_TIER",
    "TAIL_PERCENTILE",
    "TierDecision",
    "TierMatcher",
    "device_capacity_metric",
]
