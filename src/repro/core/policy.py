"""Scheduling-policy interface shared by Venn and every baseline.

A policy is the component the simulator (or a real deployment) consults at
each device check-in: "this device just became available — which job's open
request should it serve?".  The interface mirrors the event structure of the
paper's Figure 6:

* jobs arrive and finish (``on_job_arrival`` / ``on_job_finished``),
* each round a job submits and later closes a resource request
  (``on_request_open`` / ``on_request_closed``),
* devices check in one at a time and the policy returns an assignment
  (``assign``),
* device responses are reported back (``on_response``) so that policies that
  profile device behaviour (Venn's tier-based matching) can learn from them.

:class:`BasePolicy` implements the bookkeeping every concrete policy needs —
job/requirement registries, the set of open requests and eligibility
filtering — so that concrete policies only implement the ordering /
matching decision itself.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional

import numpy as np

from .requirements import EligibilityRequirement
from .types import DeviceProfile, JobSpec, ResourceRequest


class SchedulingPolicy(abc.ABC):
    """Abstract device-to-job scheduling policy."""

    #: Human-readable policy name used in reports and benchmark tables.
    name: str = "abstract"

    @abc.abstractmethod
    def on_job_arrival(self, job: JobSpec, now: float) -> None:
        """A new CL job registered with the resource manager."""

    @abc.abstractmethod
    def on_job_finished(self, job_id: int, now: float) -> None:
        """A CL job completed its final round (or was cancelled)."""

    @abc.abstractmethod
    def on_request_open(self, request: ResourceRequest, now: float) -> None:
        """A job opened a new per-round resource request."""

    @abc.abstractmethod
    def on_request_closed(self, request: ResourceRequest, now: float) -> None:
        """A request reached a terminal state (completed or aborted)."""

    @abc.abstractmethod
    def assign(
        self, device: DeviceProfile, now: float
    ) -> Optional[ResourceRequest]:
        """Pick the open request this checked-in device should serve.

        Returns ``None`` when no eligible request wants the device (the
        device then stays idle in the pool).
        """

    def on_response(
        self, request: ResourceRequest, device: DeviceProfile, now: float
    ) -> None:
        """A device assigned to ``request`` reported back at ``now``.

        Optional hook; the default implementation ignores it.
        """

    def on_response_batch(
        self, request: ResourceRequest, devices, now: float
    ) -> None:
        """A same-time batch of devices assigned to ``request`` reported back.

        Called by the batched response path instead of per-event
        :meth:`on_response` when a same-timestamp run of responses is
        drained as one cohort.  ``devices`` holds the reporting devices'
        profiles in the exact order the per-event loop would have delivered
        them (response-sequence order within the request); the engine calls
        this once per touched request, in first-occurrence order across the
        cohort.  Implementations must leave the policy in *exactly* the
        state per-event :meth:`on_response` calls would have — the scalar
        path is the decision-hash oracle, and per-request grouping is only
        sound because response bookkeeping for different requests commutes
        (the batch contract; Venn's per-job matchers satisfy it).  The
        default delegates to the scalar hook per device, and skips the loop
        entirely for policies that never overrode it.
        """
        if type(self).on_response is SchedulingPolicy.on_response:
            return
        for device in devices:
            self.on_response(request, device, now)

    def on_device_checkin(self, device: DeviceProfile, now: float) -> None:
        """A device became available (called before :meth:`assign`).

        Optional hook used by policies that track supply (Venn).
        """

    def on_device_checkin_batch(
        self,
        device_ids: "np.ndarray",
        times: "np.ndarray",
        sig_ids: "np.ndarray",
        sig_table,
        profile_of,
    ) -> None:
        """A time-ordered batch of devices became available (vectorized path).

        Called by the vectorized engine instead of per-event
        :meth:`on_device_checkin` when a run of check-ins is folded in one
        kernel.  ``sig_ids[i]`` indexes ``sig_table`` (the engine's interned
        signature list) and ``profile_of(device_id)`` recovers the profile
        for policies that need it.  Implementations must leave the policy in
        *exactly* the state the per-event hook would have — the scalar path
        is the decision-hash oracle.  The default delegates to the scalar
        hook per event, and skips the loop entirely for policies that never
        overrode it.
        """
        if type(self).on_device_checkin is SchedulingPolicy.on_device_checkin:
            return
        for i in range(len(device_ids)):
            self.on_device_checkin(profile_of(int(device_ids[i])), float(times[i]))

    def assign_batch(self, devices, now: float, commit) -> None:
        """Batched twin of :meth:`assign` over a same-time device cohort.

        ``devices`` is the sequence of checked-in device profiles in the
        exact order the engine would have offered them one at a time, and
        ``commit(i, request)`` is the engine's bookkeeping callback: it
        records the proposal for ``devices[i]`` (validation, demand
        decrement, response scheduling) *before* the next device is
        decided, and returns ``False`` when the engine stops offering this
        cohort — demand emptied entirely (the per-device loop's break), or
        the commit narrowed the pending-requirement set and the engine
        must re-filter the remainder before offering more devices.  The
        contract mirrors the scalar path exactly:

        * decisions must be bit-identical to calling ``assign`` per device
          in order with the engine committing between calls (the scalar
          path is the decision-hash oracle);
        * every random draw must happen in the same order as the scalar
          walk would have drawn it;
        * after ``commit`` returns ``False`` the policy must stop
          immediately, without touching state or randomness for the
          unvisited remainder — the engine re-offers any devices that
          still matter in a follow-up call.

        The default implementation is the scalar fallback — it delegates
        to :meth:`assign` per device — so policies that never override it
        (the baselines) keep their behaviour under batch-dispatching
        engines.
        """
        assign = self.assign
        for i, device in enumerate(devices):
            request = assign(device, now)
            if request is not None and not commit(i, request):
                return

    def bind_rng(self, rng: "np.random.Generator") -> None:
        """Adopt the simulation's random generator (seed plumbing).

        The engine calls this once, before any event is processed, so that a
        single injected :class:`numpy.random.Generator` drives every random
        draw in a run.  Policies that were constructed with an explicit seed
        keep their own generator; policies without one adopt ``rng``.  The
        default implementation ignores it (deterministic policies).
        """

    def bind_signature_provider(
        self, provider, requirements: Iterable["EligibilityRequirement"]
    ) -> None:
        """Offer precomputed device eligibility signatures (optional).

        The sharded engine precomputes every device's signature with respect
        to the workload's full requirement set (one vectorised pass at shard
        build time) and offers them here: ``provider(device_id)`` returns
        the frozenset of requirement names of ``requirements`` the device
        satisfies.  Policies that compute signatures themselves (Venn) can
        derive their own — a restriction to the currently-live requirement
        set — from the provided ones instead of re-evaluating predicates
        per device; policies that never look at signatures ignore the call
        (the default).

        Implementations must treat the provider as an *optimisation only*:
        decisions must be bit-identical with and without it.
        """


class SeededRngMixin:
    """Seed-ownership protocol shared by every policy that draws randomness.

    A policy constructed with an explicit seed keeps its own generator; one
    constructed without adopts the simulation engine's single run generator
    when the engine calls :meth:`bind_rng`.
    """

    def _init_rng(self, seed: Optional[int]) -> None:
        self._rng = np.random.default_rng(seed)
        self._rng_owned = seed is not None

    def bind_rng(self, rng: np.random.Generator) -> None:
        if not self._rng_owned:
            self._rng = rng


class BasePolicy(SchedulingPolicy):
    """Common bookkeeping shared by all concrete policies.

    Tracks registered jobs, their requirements and currently-open requests,
    and provides eligibility filtering.  Subclasses decide the *order* in
    which eligible requests are considered.
    """

    name = "base"

    def __init__(self) -> None:
        self.jobs: Dict[int, JobSpec] = {}
        self.open_requests: Dict[int, ResourceRequest] = {}
        #: Arrival time per job id (used by age-sensitive policies).
        self.job_arrival: Dict[int, float] = {}
        #: Rounds completed per job id (used by SRSF-style policies).
        self.rounds_completed: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle hooks
    # ------------------------------------------------------------------ #
    def on_job_arrival(self, job: JobSpec, now: float) -> None:
        if job.job_id in self.jobs:
            raise ValueError(f"job {job.job_id} already registered")
        self.jobs[job.job_id] = job
        self.job_arrival[job.job_id] = now
        self.rounds_completed[job.job_id] = 0

    def on_job_finished(self, job_id: int, now: float) -> None:
        self.jobs.pop(job_id, None)
        self.open_requests.pop(job_id, None)
        self.job_arrival.pop(job_id, None)
        self.rounds_completed.pop(job_id, None)

    def on_request_open(self, request: ResourceRequest, now: float) -> None:
        if request.job_id not in self.jobs:
            raise KeyError(f"request references unknown job {request.job_id}")
        self.open_requests[request.job_id] = request

    def on_request_closed(self, request: ResourceRequest, now: float) -> None:
        current = self.open_requests.get(request.job_id)
        if current is not None and current.request_id == request.request_id:
            del self.open_requests[request.job_id]
        if request.state.value == "completed":
            self.rounds_completed[request.job_id] = (
                self.rounds_completed.get(request.job_id, 0) + 1
            )

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def requirement_of(self, job_id: int) -> EligibilityRequirement:
        return self.jobs[job_id].requirement

    def eligible_open_requests(
        self, device: DeviceProfile
    ) -> List[ResourceRequest]:
        """Open, unsatisfied requests whose job may use ``device``.

        Eligibility is evaluated once per *requirement* rather than once per
        job: jobs sharing a requirement are resource-homogeneous, so the
        per-check-in cost is O(#jobs + #distinct requirements) dictionary
        work instead of O(#jobs) predicate evaluations.
        """
        out: List[ResourceRequest] = []
        # Keyed by the (frozen, hashable) requirement object itself, so two
        # jobs whose requirements merely share a name never alias.
        eligible_memo: Dict[EligibilityRequirement, bool] = {}
        for job_id, request in self.open_requests.items():
            if request.remaining_demand <= 0:
                continue
            if request.is_assigned(device.device_id):
                # One device participates at most once per round request.
                continue
            job = self.jobs.get(job_id)
            if job is None:
                continue
            requirement = job.requirement
            ok = eligible_memo.get(requirement)
            if ok is None:
                ok = eligible_memo[requirement] = requirement.is_eligible(device)
            if ok:
                out.append(request)
        return out

    def remaining_job_demand(self, job_id: int) -> int:
        """Rough remaining demand of a job: current request + future rounds.

        Used by demand-sensitive orderings (SRSF and Venn's intra-group
        order).  The estimate is ``remaining devices this round + devices per
        round × remaining rounds``.
        """
        job = self.jobs[job_id]
        done = self.rounds_completed.get(job_id, 0)
        request = self.open_requests.get(job_id)
        this_round = request.remaining_demand if request is not None else 0
        rounds_in_flight = 1 if request is not None else 0
        future_rounds = max(0, job.num_rounds - done - rounds_in_flight)
        return this_round + future_rounds * job.demand_per_round

    def iter_requirements(self) -> Iterable[EligibilityRequirement]:
        """Distinct requirements across currently-registered jobs."""
        seen = {}
        for job in self.jobs.values():
            seen[job.requirement.name] = job.requirement
        return seen.values()


__all__ = ["BasePolicy", "SchedulingPolicy", "SeededRngMixin"]
