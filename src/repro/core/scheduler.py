"""The end-to-end Venn scheduling policy (paper §4).

:class:`VennScheduler` wires together the four pieces of the paper's design:

* the **supply estimator** (§4.4) that tracks eligible-device arrival rates
  per atom over a 24-hour window,
* **Algorithm 1** (Intersection Resource Scheduling, §4.2) which turns the
  current jobs + supply estimates into a :class:`~repro.core.irs.SchedulingPlan`
  (a fixed job order plus an atom-to-group allocation),
* **Algorithm 2** (tier-based device matching, §4.3) which, per served
  request, may restrict the head job to one capability tier when that is
  predicted to lower its JCT, and
* the **fairness controller** (§4.4) whose knob ε bounds starvation of large
  jobs.

The plan is recomputed on job/request arrival and completion — exactly the
trigger points named in the paper — and consulted at device check-in through
the plan's :class:`~repro.core.atom_index.AtomIndex`: the device's cached
atom signature resolves to a precomputed candidate tuple, so a check-in is
a dictionary lookup plus a walk over the (usually short) candidate prefix.
The pre-index linear scan is retained behind ``use_index=False`` for
benchmarks (``--legacy-scan``) and decision-equivalence tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from .fairness import FairnessController
from .irs import SchedulingPlan, build_plan
from .job_group import JobGroupRegistry
from .matching import NO_TIER, TierDecision, TierMatcher
from .policy import BasePolicy, SeededRngMixin
from .requirements import AtomSpace
from .supply import DEFAULT_WINDOW, SupplyEstimator
from .types import DeviceProfile, JobSpec, ResourceRequest


class VennScheduler(SeededRngMixin, BasePolicy):
    """Contention-aware scheduling + resource-aware matching (the paper's Venn).

    Parameters
    ----------
    num_tiers:
        Number of device capability tiers ``V`` used by Algorithm 2.  ``1``
        disables tier-based matching (the "Venn w/o matching" ablation).
    epsilon:
        Fairness knob ε of §4.4.  ``0`` disables starvation prevention.
    supply_window:
        Averaging window (seconds) of the supply estimator; 24 h by default.
    enable_scheduling:
        When ``False`` the IRS job order is replaced by FIFO while matching
        stays on (the "Venn w/o scheduling" ablation of Figure 11).
    enable_matching:
        When ``False`` Algorithm 2 never restricts a job to a tier.
    enable_reallocation:
        When ``False`` the inter-group reallocation phase of Algorithm 1
        (lines 10-23) is skipped and each group keeps only its initial,
        exclusive allocation.  Exposed for the design-choice ablation.
    demand_mode:
        Intra-group ordering metric (§4.2.1): ``"total"`` (default) orders by
        the job's total remaining demand across all future rounds, which the
        paper recommends when that information is available; ``"round"``
        orders by the current request's remaining demand only.
    solo_jct_estimator:
        Optional callable ``JobSpec -> seconds`` used by the fairness
        controller for the contention-free JCT ``sd_i``.
    seed:
        Seed of the RNG used for Algorithm 2's random tier choice.  When
        ``None``, the scheduler adopts the simulation's injected generator
        via :meth:`bind_rng`.
    use_index:
        When ``True`` (default) device check-ins are resolved through the
        plan's precomputed :class:`~repro.core.atom_index.AtomIndex` and a
        per-device signature cache.  ``False`` restores the pre-index linear
        scan (same decisions, strictly more work per check-in) for
        apples-to-apples benchmarking.
    """

    name = "venn"

    def __init__(
        self,
        num_tiers: int = 4,
        epsilon: float = 0.0,
        supply_window: float = DEFAULT_WINDOW,
        enable_scheduling: bool = True,
        enable_matching: bool = True,
        enable_reallocation: bool = True,
        demand_mode: str = "total",
        solo_jct_estimator: Optional[Callable[[JobSpec], float]] = None,
        seed: Optional[int] = None,
        use_index: bool = True,
    ) -> None:
        super().__init__()
        if num_tiers < 1:
            raise ValueError("num_tiers must be >= 1")
        if demand_mode not in ("total", "round"):
            raise ValueError("demand_mode must be 'total' or 'round'")
        self.num_tiers = int(num_tiers)
        self.enable_scheduling = bool(enable_scheduling)
        self.enable_matching = bool(enable_matching)
        self.enable_reallocation = bool(enable_reallocation)
        self.demand_mode = demand_mode
        self.use_index = bool(use_index)
        self.supply = SupplyEstimator(window=supply_window)
        self.fairness = FairnessController(
            epsilon=epsilon, solo_jct_estimator=solo_jct_estimator
        )
        self._init_rng(seed)
        self._atom_space: Optional[AtomSpace] = None
        #: device_id -> cached atom signature (valid for the current space).
        self._signature_cache: Dict[int, "frozenset"] = {}
        self._plan: SchedulingPlan = SchedulingPlan()
        self._plan_dirty = True
        self._matchers: Dict[int, TierMatcher] = {}
        #: Cached tier decision per open request id.
        self._tier_decisions: Dict[int, TierDecision] = {}
        #: Number of times the plan has been rebuilt (for overhead studies).
        self.plan_rebuilds = 0
        # Derive the ablation-aware display name.
        if not self.enable_scheduling and self.enable_matching:
            self.name = "venn_wo_sched"
        elif self.enable_scheduling and not self.enable_matching:
            self.name = "venn_wo_match"
        elif not self.enable_scheduling and not self.enable_matching:
            self.name = "fifo"

    # ------------------------------------------------------------------ #
    # Lifecycle hooks
    # ------------------------------------------------------------------ #
    def on_job_arrival(self, job: JobSpec, now: float) -> None:
        super().on_job_arrival(job, now)
        self.fairness.register_job(job, now)
        self._matchers[job.job_id] = TierMatcher(
            num_tiers=self.num_tiers,
            rng=self._rng,
        )
        self._atom_space = None  # requirements changed, rebuild lazily
        self._signature_cache.clear()
        self._plan_dirty = True

    def on_job_finished(self, job_id: int, now: float) -> None:
        super().on_job_finished(job_id, now)
        self.fairness.forget_job(job_id)
        self._matchers.pop(job_id, None)
        self._atom_space = None
        self._signature_cache.clear()
        self._plan_dirty = True

    def on_request_open(self, request: ResourceRequest, now: float) -> None:
        super().on_request_open(request, now)
        self._plan_dirty = True

    def on_request_closed(self, request: ResourceRequest, now: float) -> None:
        super().on_request_closed(request, now)
        self._tier_decisions.pop(request.request_id, None)
        matcher = self._matchers.get(request.job_id)
        if (
            matcher is not None
            and request.scheduling_delay is not None
            and request.response_collection_time is not None
        ):
            matcher.record_round(
                request.scheduling_delay, request.response_collection_time
            )
        self._plan_dirty = True

    def on_device_checkin(self, device: DeviceProfile, now: float) -> None:
        self.supply.record_checkin(self._signature_for(device), now)

    def on_response(
        self, request: ResourceRequest, device: DeviceProfile, now: float
    ) -> None:
        matcher = self._matchers.get(request.job_id)
        if matcher is None:
            return
        assigned_at = request.assigned_time_of(device.device_id)
        if assigned_at is None:
            return
        matcher.record_participation(device, max(0.0, now - assigned_at))

    # ------------------------------------------------------------------ #
    # Plan construction
    # ------------------------------------------------------------------ #
    def _ensure_atom_space(self) -> AtomSpace:
        if self._atom_space is None:
            requirements = list(self.iter_requirements())
            if not requirements:
                # An empty space is still valid; it only knows the empty atom.
                self._atom_space = AtomSpace([])
            else:
                self._atom_space = AtomSpace(requirements)
            # Re-observe signatures known to the supply estimator so that the
            # new space keeps atoms contributed by live devices.
            for sig in self.supply.observed_signatures():
                known = {
                    name for name in sig if name in self._atom_space.requirements
                }
                self._atom_space.observe_signature(frozenset(known))
        return self._atom_space

    def _signature_for(self, device: DeviceProfile):
        """Atom signature of ``device``, cached per device id.

        Device profiles are immutable and the cache is cleared whenever the
        requirement set (and therefore the atom space) changes, so cached
        signatures are always exact.  The legacy scan path bypasses the
        cache to reproduce the pre-index per-check-in cost.
        """
        space = self._ensure_atom_space()
        if not self.use_index:
            return space.signature(device)
        sig = self._signature_cache.get(device.device_id)
        if sig is None:
            sig = space.signature(device)
            self._signature_cache[device.device_id] = sig
        return sig

    def _intra_group_demand(self, job_id: int) -> float:
        """Demand metric for the intra-group ordering (§4.2.1).

        ``"total"`` mode uses the job's remaining demand over all rounds;
        ``"round"`` mode uses only the open request's remaining demand.
        """
        if self.demand_mode == "total":
            return float(self.remaining_job_demand(job_id))
        request = self.open_requests.get(job_id)
        if request is not None and request.is_open:
            return float(request.remaining_demand)
        return float(self.jobs[job_id].demand_per_round)

    def rebuild_plan(self, now: float) -> SchedulingPlan:
        """Recompute the scheduling plan (Algorithm 1).  Exposed for tests
        and for the scheduler-overhead benchmark (Figure 10)."""
        space = self._ensure_atom_space()
        num_active = max(1, len(self.jobs))
        open_jobs = [
            job_id
            for job_id, req in self.open_requests.items()
            if req.is_open and req.remaining_demand > 0
        ]
        remaining: Dict[int, float] = {}
        adjusted: Dict[int, float] = {}
        for job_id in self.jobs:
            raw = self._intra_group_demand(job_id)
            remaining[job_id] = raw
            if self.enable_scheduling:
                adjusted[job_id] = self.fairness.adjusted_demand(
                    job_id, raw, now, num_active
                )
            else:
                # FIFO ablation: order by arrival time instead of demand.
                adjusted[job_id] = self.job_arrival.get(job_id, 0.0)
        registry = JobGroupRegistry.from_jobs(
            self.jobs, remaining, adjusted, open_jobs=open_jobs
        )
        queue_lengths: Dict[str, float] = {}
        for group in registry.groups():
            waiting = [
                e.job_id for e in group.entries.values() if e.has_open_request
            ]
            queue_lengths[group.key] = self.fairness.adjusted_queue_length(
                waiting, float(len(waiting)), now, num_active
            )
        self._plan = build_plan(
            registry.groups(),
            space,
            self.supply.rates(now),
            queue_lengths,
            reallocate=self.enable_reallocation,
        )
        self._plan_dirty = False
        self.plan_rebuilds += 1
        return self._plan

    @property
    def plan(self) -> SchedulingPlan:
        """The current scheduling plan (may be stale if marked dirty)."""
        return self._plan

    # ------------------------------------------------------------------ #
    # Assignment
    # ------------------------------------------------------------------ #
    def _tier_decision_for(self, request: ResourceRequest) -> TierDecision:
        decision = self._tier_decisions.get(request.request_id)
        if decision is not None:
            return decision
        if not self.enable_matching or self.num_tiers <= 1:
            decision = NO_TIER
        else:
            matcher = self._matchers.get(request.job_id)
            decision = matcher.decide() if matcher is not None else NO_TIER
        self._tier_decisions[request.request_id] = decision
        return decision

    def assign(
        self, device: DeviceProfile, now: float
    ) -> Optional[ResourceRequest]:
        if not self.open_requests:
            return None
        if self._plan_dirty:
            self.rebuild_plan(now)
        signature = self._signature_for(device)
        if self.use_index:
            # Indexed fast path: the precomputed candidate tuple only lists
            # groups contained in the signature, so every candidate job is
            # eligible by construction and no per-job requirement re-check
            # is needed.
            candidates = self._plan.index().candidates(signature)
        else:
            candidates = self._plan.ordered_jobs_for(signature)
        fallback: Optional[ResourceRequest] = None
        device_id = device.device_id
        for _group_key, job_id in candidates:
            request = self.open_requests.get(job_id)
            if request is None or not request.is_open or request.remaining_demand <= 0:
                continue
            if request.is_assigned(device_id):
                # One device participates at most once per round request.
                continue
            if not self.use_index:
                job = self.jobs.get(job_id)
                if job is None or not job.requirement.is_eligible(device):
                    continue
            decision = self._tier_decision_for(request)
            if decision.accepts(device):
                return request
            if fallback is None:
                # Remember the first tier-restricted request so the device is
                # not wasted when no later job in the order can use it.
                fallback = request
        return fallback


__all__ = ["VennScheduler"]
