"""The end-to-end Venn scheduling policy (paper §4).

:class:`VennScheduler` wires together the four pieces of the paper's design:

* the **supply estimator** (§4.4) that tracks eligible-device arrival rates
  per atom over a 24-hour window,
* **Algorithm 1** (Intersection Resource Scheduling, §4.2) which turns the
  current jobs + supply estimates into a :class:`~repro.core.irs.SchedulingPlan`
  (a fixed job order plus an atom-to-group allocation),
* **Algorithm 2** (tier-based device matching, §4.3) which, per served
  request, may restrict the head job to one capability tier when that is
  predicted to lower its JCT, and
* the **fairness controller** (§4.4) whose knob ε bounds starvation of large
  jobs.

The plan is invalidated on job/request arrival and completion — exactly the
trigger points named in the paper — and consulted at device check-in through
the plan's :class:`~repro.core.atom_index.AtomIndex`: the device's cached
atom signature resolves to a precomputed candidate tuple, so a check-in is
a dictionary lookup plus a walk over the (usually short) candidate prefix.
The pre-index linear scan is retained behind ``use_index=False`` for
benchmarks (``--legacy-scan``) and decision-equivalence tests.

How an invalidated plan is brought up to date is governed by the
``plan_maintenance`` knob: ``"incremental"`` (default) classifies every
trigger (:class:`~repro.core.plan_delta.Trigger`) and serves
single-group triggers by mutating the existing plan in place through a
:class:`~repro.core.plan_delta.PlanMaintainer` — re-sorting only the dirty
group, re-running allocation through the exact ``build_plan`` phase code,
and patching the live index; ``"full"`` preserves the paper-literal
from-scratch :meth:`VennScheduler.rebuild_plan` on every trigger and serves
as the oracle for equivalence tests.  Requirement-set changes and active
fairness (ε > 0) always fall back to the oracle.  Both modes make
bit-identical scheduling decisions (with the default
``supply_drift_tolerance=0.0``); the per-run counters live in
``VennScheduler.plan_profile``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterator, Optional

import numpy as np

from .fairness import FairnessController
from .irs import SchedulingPlan, build_plan
from .job_group import JobGroupRegistry
from .matching import NO_TIER, TierDecision, TierMatcher
from .plan_delta import PLAN_MAINTENANCE_MODES, PlanMaintainer, Trigger
from .policy import BasePolicy, SeededRngMixin
from .profile import PlanMaintenanceProfile
from .requirements import AtomSpace
from .supply import DEFAULT_WINDOW, SupplyEstimator
from .types import DeviceProfile, JobSpec, ResourceRequest


class VennScheduler(SeededRngMixin, BasePolicy):
    """Contention-aware scheduling + resource-aware matching (the paper's Venn).

    Parameters
    ----------
    num_tiers:
        Number of device capability tiers ``V`` used by Algorithm 2.  ``1``
        disables tier-based matching (the "Venn w/o matching" ablation).
    epsilon:
        Fairness knob ε of §4.4.  ``0`` disables starvation prevention.
    supply_window:
        Averaging window (seconds) of the supply estimator; 24 h by default.
    enable_scheduling:
        When ``False`` the IRS job order is replaced by FIFO while matching
        stays on (the "Venn w/o scheduling" ablation of Figure 11).
    enable_matching:
        When ``False`` Algorithm 2 never restricts a job to a tier.
    enable_reallocation:
        When ``False`` the inter-group reallocation phase of Algorithm 1
        (lines 10-23) is skipped and each group keeps only its initial,
        exclusive allocation.  Exposed for the design-choice ablation.
    demand_mode:
        Intra-group ordering metric (§4.2.1): ``"total"`` (default) orders by
        the job's total remaining demand across all future rounds, which the
        paper recommends when that information is available; ``"round"``
        orders by the current request's remaining demand only.
    solo_jct_estimator:
        Optional callable ``JobSpec -> seconds`` used by the fairness
        controller for the contention-free JCT ``sd_i``.
    seed:
        Seed of the RNG used for Algorithm 2's random tier choice.  When
        ``None``, the scheduler adopts the simulation's injected generator
        via :meth:`bind_rng`.
    use_index:
        When ``True`` (default) device check-ins are resolved through the
        plan's precomputed :class:`~repro.core.atom_index.AtomIndex` and a
        per-device signature cache.  ``False`` restores the pre-index linear
        scan (same decisions, strictly more work per check-in) for
        apples-to-apples benchmarking.
    plan_maintenance:
        ``"incremental"`` (default) serves plan-invalidating triggers with
        in-place deltas through :class:`~repro.core.plan_delta.PlanMaintainer`
        whenever that is provably decision-equivalent, falling back to the
        full :meth:`rebuild_plan` oracle on requirement-set changes and
        active fairness.  ``"full"`` rebuilds from scratch on every trigger
        (the paper-literal behaviour, kept as the equivalence oracle).
    supply_drift_tolerance:
        Maximum relative drift of any group's supply rate for which an
        incremental update may *skip* re-running the allocation phases when
        nothing else changed.  The default ``0.0`` keeps incremental mode
        bit-identical to the oracle; larger values trade exact supply
        bookkeeping for fewer allocation re-runs.
    """

    name = "venn"

    def __init__(
        self,
        num_tiers: int = 4,
        epsilon: float = 0.0,
        supply_window: float = DEFAULT_WINDOW,
        enable_scheduling: bool = True,
        enable_matching: bool = True,
        enable_reallocation: bool = True,
        demand_mode: str = "total",
        solo_jct_estimator: Optional[Callable[[JobSpec], float]] = None,
        seed: Optional[int] = None,
        use_index: bool = True,
        plan_maintenance: str = "incremental",
        supply_drift_tolerance: float = 0.0,
    ) -> None:
        super().__init__()
        if num_tiers < 1:
            raise ValueError("num_tiers must be >= 1")
        if demand_mode not in ("total", "round"):
            raise ValueError("demand_mode must be 'total' or 'round'")
        if plan_maintenance not in PLAN_MAINTENANCE_MODES:
            raise ValueError(
                f"plan_maintenance must be one of {PLAN_MAINTENANCE_MODES}"
            )
        self.num_tiers = int(num_tiers)
        self.enable_scheduling = bool(enable_scheduling)
        self.enable_matching = bool(enable_matching)
        self.enable_reallocation = bool(enable_reallocation)
        self.demand_mode = demand_mode
        self.use_index = bool(use_index)
        self.plan_maintenance = plan_maintenance
        self.supply = SupplyEstimator(window=supply_window)
        self.fairness = FairnessController(
            epsilon=epsilon, solo_jct_estimator=solo_jct_estimator
        )
        self._init_rng(seed)
        self._atom_space: Optional[AtomSpace] = None
        #: device_id -> cached atom signature (valid for the current space).
        self._signature_cache: Dict[int, "frozenset"] = {}
        #: Optional engine-precomputed signatures (sharded engine): a
        #: callable ``device_id -> full signature`` over ``_provider_reqs``.
        self._sig_provider: Optional[Callable[[int], frozenset]] = None
        self._provider_reqs: Optional[Dict[str, object]] = None
        #: Whether the provider is usable for the *current* atom space (its
        #: requirement objects match the live ones name-for-name).
        self._provider_ok = False
        #: full signature -> restricted live signature, per atom space.
        self._restrict_memo: Dict[frozenset, frozenset] = {}
        self._plan: SchedulingPlan = SchedulingPlan()
        self._plan_dirty = True
        #: Monotonic version of the decision surface: bumped whenever the
        #: plan is brought up to date (full rebuild or incremental apply).
        #: The sharded engine stamps this onto the assignment batches it
        #: sends to device shards, so a (future, process-resident) shard can
        #: tell which plan generation produced its work.
        self.plan_version = 0
        self._matchers: Dict[int, TierMatcher] = {}
        #: Cached tier decision per open request id.
        self._tier_decisions: Dict[int, TierDecision] = {}
        #: Number of times the plan has been rebuilt (for overhead studies).
        self.plan_rebuilds = 0
        #: Per-run plan-maintenance counters + wall time (see
        #: :class:`~repro.core.profile.PlanMaintenanceProfile`).
        self.plan_profile = PlanMaintenanceProfile()
        self._maintainer = PlanMaintainer(
            supply_drift_tolerance=supply_drift_tolerance
        )
        #: Jobs whose ordering inputs may have changed since the last plan
        #: refresh.  Every demand change flows through a lifecycle trigger
        #: or through :meth:`assign` returning a request (the engine then
        #: records the assignment), so refreshing only these jobs is exact
        #: — and O(changed) instead of O(all jobs) per refresh.
        self._demand_dirty: set = set()
        #: signature -> pruned live-candidate entries for the *current*
        #: decision surface, valid for exactly one ``(plan_version,
        #: index.epoch)`` generation (see :meth:`_live_candidates`).
        self._live_memo: Dict = {}
        self._live_memo_key = (-1, -1)
        #: Cached :meth:`plan_snapshot` payload + the generation it
        #: serialises (``(plan_version, plan_dirty)``).
        self._snapshot_cache: Optional[Dict[str, object]] = None
        self._snapshot_key = (-1, True)
        #: When ``True`` the batched decision path accumulates a per-phase
        #: wall-time breakdown into :attr:`decision_profile` (candidate
        #: lookup / admission walk / commit bookkeeping).  Off by default:
        #: the clock reads are per device, so profiling is opt-in
        #: (``bench_scalability.py --decision-profile``).
        self.profile_decisions = False
        self.decision_profile: Dict[str, float] = {
            "candidate_lookup_s": 0.0,
            "admission_s": 0.0,
            "bookkeeping_s": 0.0,
            "batch_devices": 0,
            "batch_proposals": 0,
        }
        # Derive the ablation-aware display name.
        if not self.enable_scheduling and self.enable_matching:
            self.name = "venn_wo_sched"
        elif self.enable_scheduling and not self.enable_matching:
            self.name = "venn_wo_match"
        elif not self.enable_scheduling and not self.enable_matching:
            self.name = "fifo"

    # ------------------------------------------------------------------ #
    # Lifecycle hooks (each one classifies its plan-invalidation trigger)
    # ------------------------------------------------------------------ #
    @property
    def _incremental_enabled(self) -> bool:
        """Whether triggers may be served by the in-place delta layer.

        Active fairness (ε > 0) makes every job's adjusted demand a
        function of *now*, so no group is ever clean and the full oracle is
        the only correct refresh.
        """
        return (
            self.plan_maintenance == "incremental"
            and self.fairness.epsilon == 0.0
        )

    def _requirement_shared(self, job_id: int, requirement) -> bool:
        """True when another live job carries an identical requirement."""
        for other_id, other in self.jobs.items():
            if other_id != job_id and other.requirement == requirement:
                return True
        return False

    def on_job_arrival(self, job: JobSpec, now: float) -> None:
        super().on_job_arrival(job, now)
        self.fairness.register_job(job, now)
        self._matchers[job.job_id] = TierMatcher(
            num_tiers=self.num_tiers,
            rng=self._rng,
        )
        if self._incremental_enabled and self._requirement_shared(
            job.job_id, job.requirement
        ):
            # Known requirement: the atom space — and with it every cached
            # device signature — is unchanged; only this group is dirty.
            self.plan_profile.record_trigger(Trigger.JOB_ARRIVAL)
            self._maintainer.delta.mark_group(job.requirement.name)
            self._demand_dirty.add(job.job_id)
        else:
            if self._incremental_enabled:
                self.plan_profile.record_trigger(
                    Trigger.JOB_ARRIVAL_NEW_REQUIREMENT
                )
                self._maintainer.delta.mark_full()
            self._atom_space = None  # requirement set changed, rebuild lazily
            self._signature_cache.clear()
        self._plan_dirty = True

    def on_job_finished(self, job_id: int, now: float) -> None:
        job = self.jobs.get(job_id)
        super().on_job_finished(job_id, now)
        self.fairness.forget_job(job_id)
        self._matchers.pop(job_id, None)
        if (
            self._incremental_enabled
            and job is not None
            and self._requirement_shared(job_id, job.requirement)
        ):
            # Other jobs keep the requirement alive: the group survives and
            # the atom space is unchanged.
            self.plan_profile.record_trigger(Trigger.JOB_DEPARTURE)
            self._maintainer.delta.mark_removed(job_id, job.requirement.name)
            self._demand_dirty.discard(job_id)
        else:
            if self._incremental_enabled:
                self.plan_profile.record_trigger(
                    Trigger.JOB_DEPARTURE_LAST_IN_GROUP
                )
                self._maintainer.delta.mark_full()
            self._atom_space = None
            self._signature_cache.clear()
        self._plan_dirty = True

    def on_request_open(self, request: ResourceRequest, now: float) -> None:
        super().on_request_open(request, now)
        if self._incremental_enabled:
            job = self.jobs.get(request.job_id)
            if job is not None:
                self.plan_profile.record_trigger(Trigger.REQUEST_ARRIVAL)
                self._maintainer.delta.mark_group(job.requirement.name)
                self._demand_dirty.add(request.job_id)
        self._plan_dirty = True

    def on_request_closed(self, request: ResourceRequest, now: float) -> None:
        super().on_request_closed(request, now)
        self._tier_decisions.pop(request.request_id, None)
        matcher = self._matchers.get(request.job_id)
        if (
            matcher is not None
            and request.scheduling_delay is not None
            and request.response_collection_time is not None
        ):
            matcher.record_round(
                request.scheduling_delay, request.response_collection_time
            )
        if self._incremental_enabled:
            job = self.jobs.get(request.job_id)
            if job is not None:
                self.plan_profile.record_trigger(Trigger.REQUEST_COMPLETION)
                self._maintainer.delta.mark_group(job.requirement.name)
                self._demand_dirty.add(request.job_id)
        self._plan_dirty = True

    def on_device_checkin(self, device: DeviceProfile, now: float) -> None:
        self.supply.record_checkin(self._signature_for(device), now)

    def on_device_checkin_batch(
        self, device_ids, times, sig_ids, sig_table, profile_of
    ) -> None:
        """Record a batch of check-ins into the supply estimator (vectorized).

        ``sig_table`` holds the engine's interned *full* signatures — the
        same values the bound signature provider returns — so each unique
        full signature in the batch restricts to the live requirement set
        through ``_restrict_memo`` exactly as :meth:`_signature_for` would,
        observing new restricted signatures in first-occurrence (event)
        order.  Supply rings then update through
        :meth:`SupplyEstimator.record_checkins_batch`, which is
        state-identical to per-event recording.  Without a usable provider
        (legacy scan, requirement mismatch) the scalar hook runs per event.
        """
        space = self._ensure_atom_space()
        if not (self.use_index and self._provider_ok):
            for i in range(len(device_ids)):
                self.on_device_checkin(
                    profile_of(int(device_ids[i])), float(times[i])
                )
            return
        uniq, first = np.unique(sig_ids, return_index=True)
        remap = np.zeros(int(uniq[-1]) + 1, dtype=np.int64) if len(uniq) else None
        restricted: list = []
        for j in np.argsort(first, kind="stable"):
            sid = int(uniq[j])
            full = sig_table[sid]
            sig = self._restrict_memo.get(full)
            if sig is None:
                names = space.requirement_names
                sig = frozenset(n for n in full if n in names)
                space.observe_signature(sig)
                self._restrict_memo[full] = sig
            remap[sid] = len(restricted)
            restricted.append(sig)
        if restricted:
            self.supply.record_checkins_batch(remap[sig_ids], times, restricted)

    def on_response(
        self, request: ResourceRequest, device: DeviceProfile, now: float
    ) -> None:
        matcher = self._matchers.get(request.job_id)
        if matcher is None:
            return
        assigned_at = request.assigned_time_of(device.device_id)
        if assigned_at is None:
            return
        matcher.record_participation(device, max(0.0, now - assigned_at))

    def on_response_batch(self, request, devices, now: float) -> None:
        """Record a response cohort into the job's matching profile.

        One matcher lookup per request instead of per response; the
        participations land in the matcher's history deques in the exact
        order the per-event hook would have appended them (``devices`` is
        in response order), so the resulting profile state — and every
        tier decision derived from it — is bit-identical to the scalar
        path.  Per-job matchers are disjoint objects, which is what makes
        the engine's per-request grouping across a cohort sound.
        """
        matcher = self._matchers.get(request.job_id)
        if matcher is None:
            return
        record = matcher.record_participation
        assigned_ids = request.assigned_ids
        for device in devices:
            assigned_at = assigned_ids.get(device.device_id)
            if assigned_at is None:
                continue
            record(device, max(0.0, now - assigned_at))

    # ------------------------------------------------------------------ #
    # Plan construction
    # ------------------------------------------------------------------ #
    def bind_signature_provider(self, provider, requirements) -> None:
        """Accept engine-precomputed full signatures (see the base class).

        The provider is only *used* while its requirement objects match the
        live ones name-for-name (checked on every atom-space rebuild): a
        signature over the full workload requirement set restricts exactly
        to the live set by name, so ``provider``-derived signatures are
        bit-identical to locally computed ones — the property the
        sharded-engine identity tests pin.  Ambiguous names (two distinct
        requirement objects sharing a name) disable the provider entirely.
        """
        reqs = list(requirements)
        by_name: Optional[Dict[str, object]] = {}
        for r in reqs:
            existing = by_name.get(r.name)
            if existing is not None and existing != r:
                by_name = None  # ambiguous name: never trust restrictions
                break
            by_name[r.name] = r
        self._sig_provider = provider
        self._provider_reqs = by_name
        # Force re-evaluation of provider compatibility for the next space.
        self._provider_ok = False
        self._restrict_memo = {}

    def _ensure_atom_space(self) -> AtomSpace:
        if self._atom_space is None:
            requirements = list(self.iter_requirements())
            if not requirements:
                # An empty space is still valid; it only knows the empty atom.
                self._atom_space = AtomSpace([])
            else:
                self._atom_space = AtomSpace(requirements)
            # Re-observe signatures known to the supply estimator so that the
            # new space keeps atoms contributed by live devices.
            for sig in self.supply.observed_signatures():
                known = {
                    name for name in sig if name in self._atom_space.requirements
                }
                self._atom_space.observe_signature(frozenset(known))
            # A provider signature restricts correctly iff every live
            # requirement *is* the provider's requirement of that name.
            self._restrict_memo = {}
            self._provider_ok = (
                self._sig_provider is not None
                and self._provider_reqs is not None
                and all(
                    self._provider_reqs.get(name) == req
                    for name, req in self._atom_space._requirements.items()
                )
            )
        return self._atom_space

    def _signature_for(self, device: DeviceProfile):
        """Atom signature of ``device``, cached per device id.

        Device profiles are immutable and the cache is cleared whenever the
        requirement set (and therefore the atom space) changes, so cached
        signatures are always exact.  The legacy scan path bypasses the
        cache to reproduce the pre-index per-check-in cost.
        """
        if not self.use_index:
            return self._ensure_atom_space().signature(device)
        # Cache first: the cache is cleared together with any atom-space
        # invalidation, so a hit is always valid for the current space and
        # skips the space liveness check entirely.
        sig = self._signature_cache.get(device.device_id)
        if sig is None:
            space = self._ensure_atom_space()
            if self._provider_ok:
                # Engine-precomputed full signature, restricted by name to
                # the live requirement set (exact; see
                # :meth:`bind_signature_provider`).  The restriction is
                # memoised per distinct full signature, so after a
                # requirement-set change re-deriving a million cached
                # device signatures costs two dictionary hits each instead
                # of a predicate walk.
                full = self._sig_provider(device.device_id)
                sig = self._restrict_memo.get(full)
                if sig is None:
                    names = space.requirement_names
                    sig = frozenset(n for n in full if n in names)
                    space.observe_signature(sig)
                    self._restrict_memo[full] = sig
            else:
                sig = space.signature(device)
            self._signature_cache[device.device_id] = sig
        return sig

    def _intra_group_demand(self, job_id: int) -> float:
        """Demand metric for the intra-group ordering (§4.2.1).

        ``"total"`` mode uses the job's remaining demand over all rounds;
        ``"round"`` mode uses only the open request's remaining demand.
        """
        if self.demand_mode == "total":
            return float(self.remaining_job_demand(job_id))
        request = self.open_requests.get(job_id)
        if request is not None and request.is_open:
            return float(request.remaining_demand)
        return float(self.jobs[job_id].demand_per_round)

    def rebuild_plan(self, now: float) -> SchedulingPlan:
        """Recompute the scheduling plan from scratch (Algorithm 1).

        This is the oracle path: incremental maintenance must produce plans
        equal to this one at every decision point.  Exposed for tests and
        for the scheduler-overhead benchmark (Figure 10)."""
        t0 = time.perf_counter()
        space = self._ensure_atom_space()
        num_active = max(1, len(self.jobs))
        open_jobs = [
            job_id
            for job_id, req in self.open_requests.items()
            if req.is_open and req.remaining_demand > 0
        ]
        remaining: Dict[int, float] = {}
        adjusted: Dict[int, float] = {}
        for job_id in self.jobs:
            raw = self._intra_group_demand(job_id)
            remaining[job_id] = raw
            if self.enable_scheduling:
                adjusted[job_id] = self.fairness.adjusted_demand(
                    job_id, raw, now, num_active
                )
            else:
                # FIFO ablation: order by arrival time instead of demand.
                adjusted[job_id] = self.job_arrival.get(job_id, 0.0)
        registry = JobGroupRegistry.from_jobs(
            self.jobs, remaining, adjusted, open_jobs=open_jobs
        )
        queue_lengths: Dict[str, float] = {}
        for group in registry.groups():
            waiting = [
                e.job_id for e in group.entries.values() if e.has_open_request
            ]
            queue_lengths[group.key] = self.fairness.adjusted_queue_length(
                waiting, float(len(waiting)), now, num_active
            )
        rates = self.supply.rates(now)
        self._plan = build_plan(
            registry.groups(),
            space,
            rates,
            queue_lengths,
            reallocate=self.enable_reallocation,
        )
        if self._incremental_enabled:
            # Snapshot the fresh state so later triggers can be served by
            # in-place deltas against this plan.
            self._maintainer.adopt(
                self._plan,
                registry,
                space,
                rates,
                self.supply.signature_version,
            )
        else:
            self._maintainer.reset()
        self._demand_dirty.clear()  # the fresh snapshot covers every job
        self._plan_dirty = False
        self.plan_rebuilds += 1
        self.plan_version += 1
        self.plan_profile.full_rebuilds += 1
        self.plan_profile.full_rebuild_time_s += time.perf_counter() - t0
        return self._plan

    def _job_states(self) -> Iterator:
        """Ordering inputs of the jobs marked demand-dirty since the last
        refresh (jobs untouched by any trigger or assignment are unchanged
        by construction, so they are not re-derived).

        Only valid at ε == 0 (enforced by ``_incremental_enabled``), where
        the oracle's fairness adjustment is the identity: adjusted demand
        is the raw remaining demand, or the arrival time under the FIFO
        ablation."""
        for job_id in self._demand_dirty:
            job = self.jobs.get(job_id)
            if job is None:
                continue  # departed; handled via the delta's removed set
            raw = self._intra_group_demand(job_id)
            if self.enable_scheduling:
                adjusted = float(raw)
            else:
                adjusted = self.job_arrival.get(job_id, 0.0)
            request = self.open_requests.get(job_id)
            has_open = (
                request is not None
                and request.is_open
                and request.remaining_demand > 0
            )
            yield job_id, job.requirement, raw, adjusted, has_open

    def refresh_plan(self, now: float) -> SchedulingPlan:
        """Bring the plan up to date using the configured maintenance mode.

        No-op when the plan is clean.  Chooses between the in-place delta
        path and the full oracle according to the accumulated
        :class:`~repro.core.plan_delta.PlanDelta` classification."""
        if not self._plan_dirty:
            return self._plan
        maintainer = self._maintainer
        if not self._incremental_enabled:
            if self.plan_maintenance == "incremental":
                # Incremental was requested but fairness is active.
                self.plan_profile.record_trigger(Trigger.FAIRNESS_ACTIVE)
            return self.rebuild_plan(now)
        if (
            maintainer.delta.needs_full
            or not maintainer.adopted
            or maintainer.plan is not self._plan
        ):
            if not maintainer.adopted:
                self.plan_profile.record_trigger(Trigger.FORCED_FULL)
            return self.rebuild_plan(now)
        t0 = time.perf_counter()
        plan = maintainer.apply(
            job_states=self._job_states(),
            rates=self.supply.rates(now),
            space=self._ensure_atom_space(),
            supply_version=self.supply.signature_version,
            reallocate=self.enable_reallocation,
            profile=self.plan_profile,
        )
        self._demand_dirty.clear()
        self._plan_dirty = False
        self.plan_version += 1
        self.plan_profile.incremental_updates += 1
        self.plan_profile.incremental_time_s += time.perf_counter() - t0
        return plan

    @property
    def plan(self) -> SchedulingPlan:
        """The current scheduling plan (may be stale if marked dirty)."""
        return self._plan

    def plan_snapshot(self) -> Dict[str, object]:
        """Broadcastable summary of the current decision surface.

        The sharded engine attaches :attr:`plan_version` to the assignment
        batches it sends device shards; this snapshot is the matching
        payload a process-resident shard would receive on a version bump
        (and what tests/tools use to compare plans across engines without
        reaching into internals).

        The payload is cached per ``(plan_version, dirty)`` generation: the
        plan is only ever mutated inside :meth:`refresh_plan` /
        :meth:`rebuild_plan`, which bump :attr:`plan_version`, so an
        unchanged generation serialises to an unchanged snapshot and
        repeated broadcasts of the same plan reuse one payload.  Callers
        must treat the returned dict as read-only.
        """
        key = (self.plan_version, self._plan_dirty)
        cached = self._snapshot_cache
        if cached is not None and self._snapshot_key == key:
            return cached
        plan = self._plan
        snapshot: Dict[str, object] = {
            "version": self.plan_version,
            "dirty": self._plan_dirty,
            "group_order": list(plan.group_order),
            "job_order": {k: list(v) for k, v in sorted(plan.job_order.items())},
        }
        self._snapshot_cache = snapshot
        self._snapshot_key = key
        return snapshot

    # ------------------------------------------------------------------ #
    # Assignment
    # ------------------------------------------------------------------ #
    def _tier_decision_for(self, request: ResourceRequest) -> TierDecision:
        decision = self._tier_decisions.get(request.request_id)
        if decision is not None:
            return decision
        if not self.enable_matching or self.num_tiers <= 1:
            decision = NO_TIER
        else:
            matcher = self._matchers.get(request.job_id)
            decision = matcher.decide() if matcher is not None else NO_TIER
        self._tier_decisions[request.request_id] = decision
        return decision

    def _live_candidates(self, signature) -> list:
        """Pruned candidate entries for ``signature`` on the current plan.

        The :class:`~repro.core.atom_index.AtomIndex` candidate tuple is a
        *static* flattening of the plan — it still lists jobs whose request
        closed or whose demand is already satisfied, and the scalar walk
        re-discovers that per check-in.  This memo resolves each signature
        once per ``(plan_version, index.epoch)`` generation to the entries
        that can still matter: ``(job_id, request)`` for candidates whose
        request is open with unmet demand at resolution time.

        Pruning is exact for the whole generation: demand never *rises*
        and a closed request never reopens without a lifecycle trigger,
        every lifecycle trigger marks the plan dirty, and every consult
        refreshes a dirty plan (bumping ``plan_version``) before touching
        the memo — so a pruned candidate is one the scalar walk would have
        skipped at every remaining consult of this generation.  Entries
        that die *mid-generation* (demand satisfied by a commit) stay in
        the list and are re-checked per device, exactly like the scalar
        walk.  Tier decisions resolve through :meth:`_tier_decision_for`
        at the same walk positions as the scalar path, so the matcher's
        rng draw order is untouched.
        """
        index = self._plan._index
        if index is None:
            index = self._plan.index()
            self.plan_profile.index_rebuilds += 1
        key = (self.plan_version, index.epoch)
        if key != self._live_memo_key:
            self._live_memo_key = key
            self._live_memo = {}
        memo = self._live_memo
        live = memo.get(signature)
        if live is None:
            open_requests = self.open_requests
            live = []
            for _group_key, job_id in index.candidates(signature):
                request = open_requests.get(job_id)
                if (
                    request is not None
                    and request.is_open
                    and request.remaining_demand > 0
                ):
                    live.append((job_id, request))
            memo[signature] = live
        return live

    def _match_device(self, device: DeviceProfile, live: list):
        """Walk pruned live candidates exactly like the scalar oracle walk:
        first open request with unmet demand that the device is not already
        serving and whose tier accepts it wins; the first tier-restricted
        request is remembered as the fallback."""
        fallback: Optional[ResourceRequest] = None
        fallback_job = -1
        device_id = device.device_id
        for job_id, request in live:
            if request.remaining_demand <= 0 or not request.is_open:
                continue
            if device_id in request.assigned_ids:
                # One device participates at most once per round request.
                continue
            decision = self._tier_decision_for(request)
            if decision is NO_TIER or decision.accepts(device):
                # The engine records the assignment right after this return,
                # changing the job's remaining demand: mark it so the next
                # incremental refresh re-derives exactly this job's inputs.
                self._demand_dirty.add(job_id)
                return request
            if fallback is None:
                # Remember the first tier-restricted request so the device is
                # not wasted when no later job in the order can use it.
                fallback = request
                fallback_job = job_id
        if fallback is not None:
            self._demand_dirty.add(fallback_job)
        return fallback

    def assign(
        self, device: DeviceProfile, now: float
    ) -> Optional[ResourceRequest]:
        if not self.open_requests:
            return None
        if self._plan_dirty:
            self.refresh_plan(now)
        signature = self._signature_for(device)
        if self.use_index:
            # Indexed fast path: the precomputed candidate tuple only lists
            # groups contained in the signature, so every candidate job is
            # eligible by construction and no per-job requirement re-check
            # is needed; the per-generation memo additionally drops
            # candidates that are provably dead for the current plan.
            return self._match_device(device, self._live_candidates(signature))
        candidates = self._plan.ordered_jobs_for(signature)
        fallback: Optional[ResourceRequest] = None
        device_id = device.device_id
        for _group_key, job_id in candidates:
            request = self.open_requests.get(job_id)
            if request is None or not request.is_open or request.remaining_demand <= 0:
                continue
            if request.is_assigned(device_id):
                # One device participates at most once per round request.
                continue
            job = self.jobs.get(job_id)
            if job is None or not job.requirement.is_eligible(device):
                continue
            decision = self._tier_decision_for(request)
            if decision.accepts(device):
                self._demand_dirty.add(job_id)
                return request
            if fallback is None:
                fallback = request
        if fallback is not None:
            self._demand_dirty.add(fallback.job_id)
        return fallback

    def assign_batch(self, devices, now: float, commit) -> None:
        """Batched decision path: one plan refresh and one signature →
        candidate resolution per *interned signature*, not per device.

        Decision-identical to the scalar oracle by construction: devices
        are walked in offer order over the same (memoised, pruned)
        candidate entries the scalar :meth:`assign` walk would visit, tier
        decisions resolve lazily at the same walk positions (identical rng
        draw order), and ``commit`` performs the engine's demand
        bookkeeping between consecutive devices exactly like the per-event
        loop.  The plan refresh can only trigger before the first device —
        assignments never dirty the plan mid-cohort — so hoisting it out
        of the loop is exact.
        """
        if not self.open_requests:
            return
        if self._plan_dirty:
            self.refresh_plan(now)
        if not self.use_index:
            # Legacy-scan mode keeps the per-device oracle walk (the scan
            # path exists for apples-to-apples benchmarking only).
            for i, device in enumerate(devices):
                request = self.assign(device, now)
                if request is not None and not commit(i, request):
                    return
            return
        if self.profile_decisions:
            return self._assign_batch_profiled(devices, commit)
        signature_for = self._signature_for
        live_for = self._live_candidates
        match = self._match_device
        for i, device in enumerate(devices):
            request = match(device, live_for(signature_for(device)))
            if request is not None and not commit(i, request):
                return

    def assign_batch_bulk(self, devices, now: float):
        """Ledger-mode batched decisions: resolve a cohort prefix at once.

        Returns ``(consumed, proposals)`` where ``proposals`` is
        ``[(i, request), ...]`` — the proposal for ``devices[i]`` for
        every consulted device that matched — and ``consumed`` is how
        many devices were consulted, without any engine bookkeeping
        between decisions.  Demand coupling (an early device's assignment
        consuming demand a later device would have competed for) is
        replayed through a cohort-local ledger: each probe reads
        ``remaining_demand`` minus the proposals already made in this
        cohort, which is exactly the value the scalar oracle would observe
        after the engine committed those proposals.  Every other input the
        scalar walk reads (``is_open``, ``assigned_ids``, tier decisions)
        cannot change mid-cohort, and tier resolution still happens
        lazily at the same walk positions (identical rng draw order), so
        the proposal sequence is bit-identical to consult-commit-consult.

        The walk stops as soon as a proposal zeroes a request's ledger
        demand: the per-event loop removes the job from the pending pool
        at that commit, which can narrow the pending-requirement set and
        drop whole signatures from the remainder of the sweep.  Stopping
        there and letting the caller commit, re-filter and resume from
        ``devices[consumed:]`` reproduces the scalar sweep's per-consult
        narrowing check exactly — and is what keeps a sweep from walking
        thousands of no-longer-eligible devices after its last fillable
        request closes.

        The caller must commit every returned proposal at ``now`` before
        the next consult (see the engine's ``_commit_cohort_vec``).  Only
        the indexed path supports ledger mode; callers fall back to
        :meth:`assign_batch` otherwise.

        Signatures whose entire candidate list shows zero ledger demand
        are marked dead for the rest of the cohort: ledger demand is
        monotone non-increasing and ``is_open`` static within a call, so
        a later same-signature device could only repeat the fruitless
        walk — no rng draws, no proposals — and skipping it outright is
        decision-identical while turning a demand-exhausted stretch of
        the cohort from O(devices x candidates) into two dict probes
        each.
        """
        proposals: list = []
        if not self.open_requests:
            return 0, proposals
        if self._plan_dirty:
            self.refresh_plan(now)
        signature_for = self._signature_for
        live_for = self._live_candidates
        tier_for = self._tier_decision_for
        demand_dirty = self._demand_dirty
        #: request_id -> demand remaining after this cohort's proposals.
        avail: Dict[int, int] = {}
        avail_get = avail.get
        #: Signatures proven demand-dead for the rest of this cohort.
        dead: set = set()
        for i, device in enumerate(devices):
            signature = signature_for(device)
            if signature in dead:
                continue
            live = live_for(signature)
            if not live:
                dead.add(signature)
                continue
            device_id = device.device_id
            fallback = None
            fallback_job = -1
            fallback_rid = -1
            any_live = False
            for job_id, request in live:
                rid = request.request_id
                d = avail_get(rid)
                if d is None:
                    d = request.remaining_demand
                if d <= 0 or not request.is_open:
                    continue
                any_live = True
                if device_id in request.assigned_ids:
                    continue
                decision = tier_for(request)
                if decision is NO_TIER or decision.accepts(device):
                    avail[rid] = d - 1
                    demand_dirty.add(job_id)
                    proposals.append((i, request))
                    if d == 1:
                        return i + 1, proposals
                    break
                if fallback is None:
                    fallback = request
                    fallback_job = job_id
                    fallback_rid = rid
            else:
                if fallback is not None:
                    d = avail_get(fallback_rid, fallback.remaining_demand) - 1
                    avail[fallback_rid] = d
                    demand_dirty.add(fallback_job)
                    proposals.append((i, fallback))
                    if d == 0:
                        return i + 1, proposals
                elif not any_live:
                    dead.add(signature)
        return len(devices), proposals

    def _assign_batch_profiled(self, devices, commit) -> None:
        """Instrumented twin of the batched walk (same decisions, plus a
        per-phase wall-time breakdown into :attr:`decision_profile`)."""
        profile = self.decision_profile
        clock = time.perf_counter
        for i, device in enumerate(devices):
            t0 = clock()
            live = self._live_candidates(self._signature_for(device))
            t1 = clock()
            request = self._match_device(device, live)
            t2 = clock()
            profile["candidate_lookup_s"] += t1 - t0
            profile["admission_s"] += t2 - t1
            profile["batch_devices"] += 1
            if request is not None:
                profile["batch_proposals"] += 1
                more = commit(i, request)
                profile["bookkeeping_s"] += clock() - t2
                if not more:
                    return


__all__ = ["VennScheduler"]
