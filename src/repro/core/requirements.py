"""Device eligibility requirements and the eligibility-atom abstraction.

A CL job states *which* devices it can use (minimum hardware capacity,
required data domain, ...).  Different jobs' eligible sets may overlap,
contain, or be disjoint from each other — the Intersection Resource
Scheduling (IRS) problem of the paper is about allocating devices across job
groups with exactly these relationships.

To reason about those relationships without enumerating devices, the library
works with *eligibility atoms*: an atom is the set of requirements a device
satisfies (its *signature*).  Every requirement's eligible set is then a
union of atoms, and set algebra between requirements reduces to set algebra
over small frozensets of requirement names.  This is what keeps Algorithm 1
independent of the number of devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from .types import DeviceProfile

#: An atom signature: the (frozen) set of requirement names a device satisfies.
AtomSignature = FrozenSet[str]


@dataclass(frozen=True)
class EligibilityRequirement:
    """A job's device requirement.

    A device is eligible when its normalised CPU and memory scores are at
    least ``min_cpu`` / ``min_memory`` and, when ``data_domain`` is set, the
    device holds that data domain.

    The four categories used throughout the paper's evaluation (Figure 8a)
    are exposed as :data:`GENERAL`, :data:`COMPUTE_RICH`, :data:`MEMORY_RICH`
    and :data:`HIGH_PERFORMANCE`.
    """

    name: str
    min_cpu: float = 0.0
    min_memory: float = 0.0
    data_domain: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("requirement name must be non-empty")
        if not (0.0 <= self.min_cpu <= 1.0):
            raise ValueError(f"min_cpu must be in [0, 1], got {self.min_cpu}")
        if not (0.0 <= self.min_memory <= 1.0):
            raise ValueError(f"min_memory must be in [0, 1], got {self.min_memory}")

    def is_eligible(self, device: DeviceProfile) -> bool:
        """Return True when ``device`` satisfies this requirement."""
        if device.cpu_score < self.min_cpu:
            return False
        if device.memory_score < self.min_memory:
            return False
        if self.data_domain is not None and self.data_domain not in device.data_domains:
            return False
        return True

    def subsumes(self, other: "EligibilityRequirement") -> bool:
        """True when every device eligible for ``other`` is eligible here.

        In other words this requirement's eligible set is a superset of
        ``other``'s (a weaker requirement subsumes a stricter one).
        """
        if self.min_cpu > other.min_cpu:
            return False
        if self.min_memory > other.min_memory:
            return False
        if self.data_domain is not None and self.data_domain != other.data_domain:
            return False
        return True

    def intersects(self, other: "EligibilityRequirement") -> bool:
        """True when some device could satisfy both requirements.

        Threshold-style requirements always share their top corner unless the
        data domains conflict, so the only source of disjointness is the data
        domain.
        """
        if (
            self.data_domain is not None
            and other.data_domain is not None
            and self.data_domain != other.data_domain
        ):
            return False
        return True


#: The default requirement categories from Figure 8a of the paper.  The 0.5
#: cut-offs stratify the normalised AI-Benchmark-style scores into four
#: regions: General (everything), Compute-Rich, Memory-Rich and
#: High-Performance (the intersection of the previous two).
GENERAL = EligibilityRequirement("general", min_cpu=0.0, min_memory=0.0)
COMPUTE_RICH = EligibilityRequirement("compute_rich", min_cpu=0.5, min_memory=0.0)
MEMORY_RICH = EligibilityRequirement("memory_rich", min_cpu=0.0, min_memory=0.5)
HIGH_PERFORMANCE = EligibilityRequirement(
    "high_performance", min_cpu=0.5, min_memory=0.5
)

#: Categories in the order used by the evaluation tables.
DEFAULT_CATEGORIES: Sequence[EligibilityRequirement] = (
    GENERAL,
    COMPUTE_RICH,
    MEMORY_RICH,
    HIGH_PERFORMANCE,
)


def signature_of(
    device: DeviceProfile, requirements: Iterable[EligibilityRequirement]
) -> AtomSignature:
    """Compute the atom signature of ``device`` w.r.t. ``requirements``."""
    return frozenset(r.name for r in requirements if r.is_eligible(device))


def atom_sort_key(signature: AtomSignature) -> tuple:
    """Canonical ordering key for atom signatures.

    Frozensets iterate in hash order, which varies with ``PYTHONHASHSEED``
    between interpreter invocations.  Anywhere a *collection of signatures*
    is iterated to accumulate floats or build ordered output must sort by
    this key first, or two runs of the same seed can diverge bit-for-bit
    (float addition is not associative).  Sorting by (size, sorted names)
    keeps the order stable and cheap to reason about.
    """
    return (len(signature), tuple(sorted(signature)))


def sorted_atoms(signatures: Iterable[AtomSignature]) -> list:
    """Signatures in canonical :func:`atom_sort_key` order."""
    return sorted(signatures, key=atom_sort_key)


class AtomSpace:
    """The set of eligibility atoms induced by a collection of requirements.

    The atom space answers two questions that Algorithm 1 needs:

    * which atoms make up a requirement's eligible set, and
    * how requirements relate (intersect / contain) via those atoms.

    It is built from the requirement definitions alone (no devices needed) by
    enumerating the corner points of the threshold grid, optionally augmented
    with the signatures actually observed from checked-in devices (useful
    when devices carry data domains the grid cannot anticipate).
    """

    def __init__(self, requirements: Iterable[EligibilityRequirement]):
        reqs = list(requirements)
        names = [r.name for r in reqs]
        if len(set(names)) != len(names):
            raise ValueError("requirement names must be unique")
        self._requirements: Dict[str, EligibilityRequirement] = {
            r.name: r for r in reqs
        }
        self._atoms: set = set()
        self._enumerate_grid_atoms()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _enumerate_grid_atoms(self) -> None:
        """Enumerate signatures reachable on the threshold grid.

        We take representative CPU / memory scores on each side of every
        threshold and every relevant data-domain combination, compute the
        signature of each representative, and keep the distinct results.
        """
        reqs = list(self._requirements.values())
        cpu_cuts = sorted({r.min_cpu for r in reqs} | {0.0})
        mem_cuts = sorted({r.min_memory for r in reqs} | {0.0})
        domains = sorted({r.data_domain for r in reqs if r.data_domain is not None})

        cpu_points = _representative_points(cpu_cuts)
        mem_points = _representative_points(mem_cuts)
        # Domain combinations: none, each single domain and all domains.  This
        # covers every distinct signature because domain predicates are
        # independent "has domain d" checks.
        domain_sets: List[frozenset] = [frozenset()]
        domain_sets.extend(frozenset({d}) for d in domains)
        if len(domains) > 1:
            domain_sets.append(frozenset(domains))

        for cpu in cpu_points:
            for mem in mem_points:
                for doms in domain_sets:
                    dev = DeviceProfile(
                        device_id=-1,
                        cpu_score=cpu,
                        memory_score=mem,
                        data_domains=doms,
                    )
                    self._atoms.add(signature_of(dev, reqs))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def requirements(self) -> Mapping[str, EligibilityRequirement]:
        return dict(self._requirements)

    @property
    def requirement_names(self):
        """The requirement-name set (a live view; cheap, no copy)."""
        return self._requirements.keys()

    @property
    def atoms(self) -> FrozenSet[AtomSignature]:
        """All known atom signatures (including the empty signature)."""
        return frozenset(self._atoms)

    def observe_signature(self, signature: AtomSignature) -> None:
        """Register a signature seen on a live device check-in."""
        unknown = set(signature) - set(self._requirements)
        if unknown:
            raise KeyError(f"signature references unknown requirements: {unknown}")
        self._atoms.add(frozenset(signature))

    def signature(self, device: DeviceProfile) -> AtomSignature:
        """Signature of a device under this space's requirements."""
        sig = signature_of(device, self._requirements.values())
        self._atoms.add(sig)
        return sig

    def eligible_atoms(self, requirement_name: str) -> FrozenSet[AtomSignature]:
        """Atoms making up the eligible set of ``requirement_name``."""
        if requirement_name not in self._requirements:
            raise KeyError(f"unknown requirement: {requirement_name}")
        return frozenset(
            a for a in self._atoms if requirement_name in a
        )

    def shared_atoms(self, name_a: str, name_b: str) -> FrozenSet[AtomSignature]:
        """Atoms eligible for both requirements (their intersection)."""
        return self.eligible_atoms(name_a) & self.eligible_atoms(name_b)

    def contains(self, outer: str, inner: str) -> bool:
        """True when ``outer``'s eligible set contains ``inner``'s."""
        return self.eligible_atoms(inner) <= self.eligible_atoms(outer)


def _representative_points(cuts: Sequence[float]) -> List[float]:
    """Representative scores covering every interval induced by ``cuts``.

    For thresholds ``[0, 0.5]`` this yields a point below 0.5 and a point at
    or above 0.5 so that both sides of the cut are represented.
    """
    cuts = sorted(set(cuts))
    points: List[float] = []
    for i, c in enumerate(cuts):
        upper = cuts[i + 1] if i + 1 < len(cuts) else 1.0
        # A point in [c, upper): satisfied exactly by thresholds <= c.
        points.append(min(1.0, (c + upper) / 2.0 if upper > c else c))
    if not points:
        points = [0.0]
    return points


__all__ = [
    "AtomSignature",
    "AtomSpace",
    "COMPUTE_RICH",
    "DEFAULT_CATEGORIES",
    "EligibilityRequirement",
    "GENERAL",
    "HIGH_PERFORMANCE",
    "MEMORY_RICH",
    "atom_sort_key",
    "signature_of",
    "sorted_atoms",
]
