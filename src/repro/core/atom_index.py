"""Precomputed device-signature -> candidate-job index over a scheduling plan.

The paper's headline complexity claim — ``max(O(m log m), O(n^2))`` for
Algorithm 1 with O(1)-ish work per device check-in — rests on the check-in
path *consulting* the precomputed plan rather than re-deriving anything.
The seed implementation still flattened the plan's per-atom group preference
into a ``(group, job)`` candidate list on every call of
:meth:`SchedulingPlan.ordered_jobs_for`, i.e. O(#groups × #jobs) list
construction per check-in.

:class:`AtomIndex` materialises that flattening exactly once per plan:

* for every eligibility atom the plan knows about, the ordered tuple of
  ``(group_key, job_id)`` candidates is precomputed at index-build time;
* signatures the plan has never seen (devices with data domains the atom
  space could not anticipate) are resolved through the same fallback rule as
  the legacy scan — "every group whose requirement name is in the signature,
  scarcest first" — and then memoised, so each unknown signature pays the
  fallback cost once per plan instead of once per check-in.

An index is immutable and tied to the plan it was built from; the scheduler
drops it together with the plan on rebuild (job/request arrival and
completion), which is exactly the invalidation discipline the paper
describes for the plan itself.

A crucial guarantee the index preserves: every candidate group key it yields
for a signature is *contained in* that signature, so a device is eligible
for every candidate job by construction and the check-in path may skip the
per-job requirement re-check.  Property-based tests
(``tests/core/test_irs_properties.py``) assert both this containment and
decision-equality with the legacy linear scan on randomised plans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from .requirements import AtomSignature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .irs import SchedulingPlan

#: A flattened candidate list: ``(group_key, job_id)`` in plan order.
CandidateList = Tuple[Tuple[str, int], ...]


class AtomIndex:
    """Immutable signature -> ordered candidate-job index for one plan."""

    __slots__ = ("_known", "_fallback_cache", "_group_jobs", "_group_order")

    def __init__(self, plan: "SchedulingPlan") -> None:
        #: Per-group candidate tuples, flattened once.
        self._group_jobs: Dict[str, CandidateList] = {
            key: tuple((key, job_id) for job_id in jobs)
            for key, jobs in plan.job_order.items()
        }
        self._group_order: Tuple[str, ...] = tuple(plan.group_order)
        #: Precomputed candidates for every atom the plan anticipated.
        self._known: Dict[AtomSignature, CandidateList] = {
            atom: self._flatten(pref)
            for atom, pref in plan.atom_preferences.items()
        }
        #: Memo for signatures outside the anticipated atom space.
        self._fallback_cache: Dict[AtomSignature, CandidateList] = {}

    def _flatten(self, group_keys: List[str]) -> CandidateList:
        out: List[Tuple[str, int]] = []
        for key in group_keys:
            out.extend(self._group_jobs.get(key, ()))
        return tuple(out)

    def candidates(self, signature: AtomSignature) -> CandidateList:
        """Ordered ``(group_key, job_id)`` candidates for ``signature``.

        O(1) for known atoms; unknown signatures are resolved with the legacy
        fallback rule and memoised for the lifetime of the plan.
        """
        sig = frozenset(signature)
        hit = self._known.get(sig)
        if hit is not None:
            return hit
        hit = self._fallback_cache.get(sig)
        if hit is None:
            hit = self._flatten([k for k in self._group_order if k in sig])
            self._fallback_cache[sig] = hit
        return hit

    @property
    def num_known_atoms(self) -> int:
        return len(self._known)


__all__ = ["AtomIndex", "CandidateList"]
