"""Precomputed device-signature -> candidate-job index over a scheduling plan.

The paper's headline complexity claim — ``max(O(m log m), O(n^2))`` for
Algorithm 1 with O(1)-ish work per device check-in — rests on the check-in
path *consulting* the precomputed plan rather than re-deriving anything.
The seed implementation still flattened the plan's per-atom group preference
into a ``(group, job)`` candidate list on every call of
:meth:`SchedulingPlan.ordered_jobs_for`, i.e. O(#groups × #jobs) list
construction per check-in.

:class:`AtomIndex` materialises that flattening exactly once per plan:

* for every eligibility atom the plan knows about, the ordered tuple of
  ``(group_key, job_id)`` candidates is precomputed at index-build time;
* signatures the plan has never seen (devices with data domains the atom
  space could not anticipate) are resolved through the same fallback rule as
  the legacy scan — "every group whose requirement name is in the signature,
  scarcest first" — and then memoised, so each unknown signature pays the
  fallback cost once per plan instead of once per check-in.

An index is tied to the plan it was built from.  A *full* plan rebuild
replaces the plan object and the index dies with it — the invalidation
discipline the paper describes for the plan itself.  Under incremental plan
maintenance (:mod:`repro.core.plan_delta`) the plan is mutated in place
instead, and the index is **epoch-versioned**: :meth:`AtomIndex.patch`
re-flattens only the signatures whose candidate tuples actually changed
(dirty groups' job tuples, atoms whose preference list moved) and bumps
``epoch``, so a trigger that touches one group re-flattens a handful of
atoms instead of rebuilding the whole index.

``epoch`` is also a published invalidation key: the scheduler's live-
candidate memo (the batched decision path's
``(plan_version, epoch) -> candidates`` cache,
:meth:`repro.core.scheduler.VennScheduler._live_candidates`) relies on
every content-changing :meth:`patch` bumping it.  A patch that mutated
candidates without bumping ``epoch`` would serve stale candidate lists to
whole signature cohorts, so the bump is part of the method's contract,
not an implementation detail.

A crucial guarantee the index preserves: every candidate group key it yields
for a signature is *contained in* that signature, so a device is eligible
for every candidate job by construction and the check-in path may skip the
per-job requirement re-check.  Property-based tests
(``tests/core/test_irs_properties.py``) assert both this containment and
decision-equality with the legacy linear scan on randomised plans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple

from .requirements import AtomSignature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .irs import SchedulingPlan

#: A flattened candidate list: ``(group_key, job_id)`` in plan order.
CandidateList = Tuple[Tuple[str, int], ...]


class AtomIndex:
    """Signature -> ordered candidate-job index for one scheduling plan.

    Immutable from the check-in path's point of view; mutated only through
    :meth:`patch` by the incremental plan-maintenance layer.
    """

    __slots__ = (
        "_known",
        "_fallback_cache",
        "_group_jobs",
        "_group_order",
        "epoch",
    )

    def __init__(self, plan: "SchedulingPlan") -> None:
        #: Patch generation: 0 for a freshly built index, +1 per patch.
        self.epoch: int = 0
        #: Per-group candidate tuples, flattened once.
        self._group_jobs: Dict[str, CandidateList] = {
            key: tuple((key, job_id) for job_id in jobs)
            for key, jobs in plan.job_order.items()
        }
        self._group_order: Tuple[str, ...] = tuple(plan.group_order)
        #: Precomputed candidates for every atom the plan anticipated.
        self._known: Dict[AtomSignature, CandidateList] = {
            atom: self._flatten(pref)
            for atom, pref in plan.atom_preferences.items()
        }
        #: Memo for signatures outside the anticipated atom space.
        self._fallback_cache: Dict[AtomSignature, CandidateList] = {}

    def _flatten(self, group_keys: List[str]) -> CandidateList:
        out: List[Tuple[str, int]] = []
        for key in group_keys:
            out.extend(self._group_jobs.get(key, ()))
        return tuple(out)

    def candidates(self, signature: AtomSignature) -> CandidateList:
        """Ordered ``(group_key, job_id)`` candidates for ``signature``.

        O(1) for known atoms; unknown signatures are resolved with the legacy
        fallback rule and memoised for the lifetime of the plan.
        """
        sig = frozenset(signature)
        hit = self._known.get(sig)
        if hit is not None:
            return hit
        hit = self._fallback_cache.get(sig)
        if hit is None:
            hit = self._flatten([k for k in self._group_order if k in sig])
            self._fallback_cache[sig] = hit
        return hit

    def patch(
        self,
        plan: "SchedulingPlan",
        dirty_groups: Iterable[str],
        changed_atoms: Iterable[AtomSignature],
        group_order_changed: bool,
    ) -> int:
        """Bring the index up to date with an in-place plan mutation.

        ``dirty_groups`` are the groups whose ``plan.job_order`` entry
        changed (their per-group candidate tuples are re-flattened);
        ``changed_atoms`` are the signatures whose candidate tuples are
        stale — either because their preference list changed or because the
        list contains a dirty group.  The memoised fallback resolutions are
        dropped when their inputs (group order / any group's job tuple)
        changed; precomputed entries for unaffected atoms are untouched.
        Returns the number of atom signatures re-flattened.
        """
        dirty = tuple(dirty_groups)
        for key in dirty:
            self._group_jobs[key] = tuple(
                (key, job_id) for job_id in plan.job_order.get(key, ())
            )
        if group_order_changed:
            self._group_order = tuple(plan.group_order)
        patched = 0
        for atom in changed_atoms:
            pref = plan.atom_preferences.get(atom)
            if pref is None:
                # Atoms never leave the plan under incremental maintenance;
                # tolerate it anyway so a patch can only shrink knowledge,
                # never serve stale candidates.
                self._known.pop(atom, None)
            else:
                self._known[atom] = self._flatten(pref)
            patched += 1
        if (dirty or group_order_changed) and self._fallback_cache:
            self._fallback_cache.clear()
        self.epoch += 1
        return patched

    @property
    def num_known_atoms(self) -> int:
        return len(self._known)


__all__ = ["AtomIndex", "CandidateList"]
