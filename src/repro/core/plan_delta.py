"""Incremental scheduling-plan maintenance (dirty sets + in-place deltas).

The paper recomputes the :class:`~repro.core.irs.SchedulingPlan` on every
job/request arrival and completion.  A from-scratch ``build_plan`` run
re-freezes every atom-rate key, re-derives every group's eligible-atom set,
re-sorts every group's job queue, re-runs allocation for all groups and
throws away the lazily built :class:`~repro.core.atom_index.AtomIndex` —
``O(m log m)`` + ``O(n^2)`` + index-rebuild work for triggers that almost
always touch a *single* job in a *single* group.  At 100k devices the
committed scalability baseline records thousands of such rebuilds per
simulated day, and they dominate the event loop once check-ins are O(1).

This module makes the plan pay only for what changed:

* :class:`Trigger` / :class:`PlanDelta` — the dirty-set layer.  Every
  scheduler lifecycle hook classifies its trigger (request arrival,
  request completion, job arrival/departure, ...) and records which job
  groups it touched, instead of a single boolean dirty flag.
* :class:`PlanMaintainer` — consumes the accumulated delta at the next
  ``assign`` and mutates the existing plan in place:

  - per-job ordering inputs (remaining demand, fairness-adjusted demand,
    open-request flag) are re-derived only for jobs the scheduler marked
    *demand-dirty* — every demand change flows through a lifecycle trigger
    or an ``assign`` return, so the refresh is O(changed jobs) — and only
    groups whose ordering inputs actually changed are re-sorted (§4.2.1 is
    ``O(m_g log m_g)`` per dirty group, not global);
  - per-group eligible-atom sets are cached and refreshed only when the
    supply estimator's observed-signature set or the atom space grew
    (tracked by cheap version counters, not set comparisons);
  - phases 2+3 of Algorithm 1 re-run through *exactly* the code
    ``build_plan`` uses (:func:`~repro.core.irs._phase23_allocate`), so the
    refreshed allocation is bit-identical to a from-scratch rebuild — and
    they are skipped entirely when no group state changed and the supply
    estimates did not drift beyond ``supply_drift_tolerance``;
  - the live :class:`~repro.core.atom_index.AtomIndex` is patched
    epoch-by-epoch (:meth:`AtomIndex.patch`) for just the signatures whose
    candidate tuples changed, instead of dying with the plan.

Full ``build_plan`` remains the **oracle**: requirement-set changes (a job
arriving with a new requirement, the last job of a requirement leaving) and
active fairness (ε > 0 makes every job's adjusted demand a function of
*now*, so nothing is clean) fall back to it, and the scheduler's
``plan_maintenance="full"`` knob forces it for every trigger.  With the
default ``supply_drift_tolerance=0.0`` the incremental plan is *equal* to
the oracle's at every decision point — pinned by property-based tests
driving random trigger sequences through both modes
(``tests/core/test_plan_delta.py``) and by the golden fixtures.  A non-zero
tolerance additionally skips allocation re-runs while group supply rates
stay within the tolerance, trading exact rate bookkeeping for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .irs import (
    GroupAllocation,
    SchedulingPlan,
    _atom_preferences,
    _normalized_rates,
    _phase23_allocate,
    _rate_sum,
)
from .job_group import GroupJobEntry, JobGroup, JobGroupRegistry
from .requirements import (
    AtomSignature,
    AtomSpace,
    EligibilityRequirement,
    atom_sort_key,
    sorted_atoms,
)

#: Valid values of the scheduler's ``plan_maintenance`` knob.
PLAN_MAINTENANCE_MODES: Tuple[str, ...] = ("incremental", "full")


class Trigger:
    """Classification of the events that invalidate the scheduling plan.

    String constants (not an enum) so they serialise directly into profile
    snapshots and benchmark artifacts.
    """

    #: A job arrived whose requirement is already live — its group exists.
    JOB_ARRIVAL = "job_arrival"
    #: A job arrived with a requirement the plan has never seen: the atom
    #: space changes, so a full rebuild is required.
    JOB_ARRIVAL_NEW_REQUIREMENT = "job_arrival_new_requirement"
    #: A job left but other jobs still share its requirement.
    JOB_DEPARTURE = "job_departure"
    #: The last job of a requirement left: the atom space shrinks, full
    #: rebuild required.
    JOB_DEPARTURE_LAST_IN_GROUP = "job_departure_last_in_group"
    #: A job opened a new per-round resource request.
    REQUEST_ARRIVAL = "request_arrival"
    #: A request reached a terminal state (completed or aborted).
    REQUEST_COMPLETION = "request_completion"
    #: An update where no job/group ordering input changed — only the
    #: supply estimates drifted (recorded at update time).
    SUPPLY_DRIFT = "supply_drift"
    #: Fairness ε > 0 makes adjusted demands time-dependent for every job;
    #: incremental maintenance falls back to the full oracle.
    FAIRNESS_ACTIVE = "fairness_active"
    #: ``plan_maintenance="full"`` or no plan adopted yet.
    FORCED_FULL = "forced_full"


@dataclass
class PlanDelta:
    """Accumulated dirty state between plan refreshes."""

    #: The atom space / group set changed — only a full rebuild is safe.
    needs_full: bool = False
    #: Group keys whose queue composition or ordering inputs were touched
    #: by a trigger since the last refresh.
    dirty_groups: Set[str] = field(default_factory=set)
    #: Jobs that departed (their entries must leave their group).
    removed_jobs: Dict[int, str] = field(default_factory=dict)

    def mark_full(self) -> None:
        self.needs_full = True

    def mark_group(self, key: str) -> None:
        self.dirty_groups.add(key)

    def mark_removed(self, job_id: int, key: str) -> None:
        self.removed_jobs[job_id] = key
        self.dirty_groups.add(key)

    def clear(self) -> None:
        self.needs_full = False
        self.dirty_groups.clear()
        self.removed_jobs.clear()


#: One job's refreshed ordering inputs:
#: ``(job_id, requirement, remaining, adjusted, has_open_request)``.
JobState = Tuple[int, EligibilityRequirement, float, float, bool]


def _atoms_listing(
    prefs: Mapping[AtomSignature, List[str]], groups: Set[str]
) -> List[AtomSignature]:
    """Atoms whose preference list mentions any of ``groups``.

    These are exactly the atoms whose flattened candidate tuples go stale
    when those groups' job orders change — the single definition of
    "touched by a dirty group" shared by every allocation branch of
    :meth:`PlanMaintainer.apply`.
    """
    if not groups:
        return []
    return [
        atom
        for atom, pref in prefs.items()
        if any(key in groups for key in pref)
    ]


class PlanMaintainer:
    """Applies accumulated :class:`PlanDelta` state to a live plan.

    The maintainer adopts the scheduler's state after every full rebuild
    (:meth:`adopt`) and from then on serves triggers via :meth:`apply`,
    mutating the adopted plan and patching its index in place.  It owns the
    persistent group registry between rebuilds, so no per-trigger object
    churn happens for clean groups.
    """

    def __init__(self, supply_drift_tolerance: float = 0.0) -> None:
        if supply_drift_tolerance < 0:
            raise ValueError("supply_drift_tolerance must be non-negative")
        self.supply_drift_tolerance = float(supply_drift_tolerance)
        self.delta = PlanDelta()
        self._plan: Optional[SchedulingPlan] = None
        self._groups: Dict[str, JobGroup] = {}
        self._job_group: Dict[int, str] = {}
        #: Per-group eligible atoms (frozen + canonically sorted).
        self._eligible: Dict[str, FrozenSet[AtomSignature]] = {}
        self._sorted_eligible: Dict[str, List[AtomSignature]] = {}
        #: All plan atoms (rates ∪ eligible sets) in canonical order.
        self._atoms_sorted: List[AtomSignature] = []
        #: Version stamps the cached eligible sets are valid for.
        self._supply_version: int = -1
        self._space_atom_count: int = -1
        #: Group supply rates at the last phase-2/3 run (drift reference).
        self._alloc_supply: Dict[str, float] = {}
        #: Exact per-atom rates the last phase-2/3 run consumed: at
        #: tolerance 0 an allocation skip requires these to be unchanged
        #: (group *sums* matching is not enough — phases 2/3 also consume
        #: per-atom rates).
        self._last_rates: Dict[AtomSignature, float] = {}

    # ------------------------------------------------------------------ #
    # Adoption after a full rebuild
    # ------------------------------------------------------------------ #
    @property
    def plan(self) -> Optional[SchedulingPlan]:
        return self._plan

    @property
    def adopted(self) -> bool:
        return self._plan is not None

    def reset(self) -> None:
        """Drop adopted state (the next refresh must be a full rebuild)."""
        self._plan = None
        self._groups = {}
        self._job_group = {}
        self._eligible = {}
        self._sorted_eligible = {}
        self._atoms_sorted = []
        self._supply_version = -1
        self._space_atom_count = -1
        self._alloc_supply = {}
        self._last_rates = {}
        self.delta.clear()

    def adopt(
        self,
        plan: SchedulingPlan,
        registry: JobGroupRegistry,
        space: AtomSpace,
        rates: Mapping[AtomSignature, float],
        supply_version: int,
    ) -> None:
        """Snapshot the state of a just-completed full rebuild.

        The registry's live :class:`~repro.core.job_group.JobGroup` objects
        are taken over (and mutated in place by later :meth:`apply` calls);
        eligible-atom sets are derived with the same formula ``build_plan``
        used, keyed to the supply/space versions current at build time.
        """
        self._plan = plan
        self._groups = {g.key: g for g in registry.groups()}
        self._job_group = {
            job_id: key
            for key, group in self._groups.items()
            for job_id in group.entries
        }
        self._refresh_eligible(space, rates)
        self._supply_version = supply_version
        self._space_atom_count = len(space.atoms)
        self._alloc_supply = {
            key: alloc.supply_rate for key, alloc in plan.allocations.items()
        }
        self._last_rates = dict(_normalized_rates(rates))
        self.delta.clear()

    def _refresh_eligible(
        self, space: AtomSpace, rates: Mapping[AtomSignature, float]
    ) -> None:
        """Re-derive per-group eligible atoms (build_plan's formula)."""
        self._eligible = {}
        self._sorted_eligible = {}
        union: Set[AtomSignature] = set(rates)
        for key in self._groups:
            atoms = set(space.eligible_atoms(key)) | {
                sig for sig in rates if key in sig
            }
            self._eligible[key] = frozenset(atoms)
            self._sorted_eligible[key] = sorted_atoms(atoms)
            union |= atoms
        self._atoms_sorted = sorted(union, key=atom_sort_key)

    # ------------------------------------------------------------------ #
    # Incremental application
    # ------------------------------------------------------------------ #
    def apply(
        self,
        job_states: Iterable[JobState],
        rates: Mapping[AtomSignature, float],
        space: AtomSpace,
        supply_version: int,
        reallocate: bool,
        profile=None,
    ) -> SchedulingPlan:
        """Serve the accumulated delta by updating the plan in place.

        Preconditions (enforced by the scheduler's trigger classification):
        a plan has been adopted, the requirement set is unchanged since the
        last full rebuild, adjusted demands are time-independent (fairness
        ε == 0), and ``job_states`` covers every job whose ordering inputs
        may have changed since the last refresh (the scheduler's
        demand-dirty set).  Returns the (mutated) plan.
        """
        plan = self._plan
        if plan is None:
            raise RuntimeError("apply() before any full rebuild was adopted")
        rates = _normalized_rates(rates)
        delta = self.delta
        dirty: Set[str] = set(delta.dirty_groups)

        # ---- Departed jobs leave their group ---------------------------- #
        for job_id, key in delta.removed_jobs.items():
            mapped = self._job_group.pop(job_id, None)
            group = self._groups.get(mapped if mapped is not None else key)
            if group is not None:
                group.entries.pop(job_id, None)
            dirty.add(key)

        # ---- Refresh the dirty jobs' ordering inputs -------------------- #
        # ``job_states`` carries only jobs the scheduler marked demand-dirty
        # since the last refresh: every demand change flows through a
        # lifecycle trigger or through ``assign`` returning a request (the
        # engine then records the assignment), so unmarked jobs are
        # unchanged by construction and this loop is O(changed), not
        # O(all jobs).  Only groups whose inputs actually changed get
        # re-sorted below.
        for job_id, requirement, remaining, adjusted, has_open in job_states:
            key = requirement.name
            group = self._groups.get(key)
            if group is None:
                raise RuntimeError(
                    f"job {job_id} references group {key!r} unknown to the "
                    "maintainer; requirement changes must force a full rebuild"
                )
            entry = group.entries.get(job_id)
            if entry is None:
                group.entries[job_id] = GroupJobEntry(
                    job_id=job_id,
                    remaining_demand=float(remaining),
                    adjusted_demand=float(adjusted),
                    has_open_request=has_open,
                )
                self._job_group[job_id] = key
                dirty.add(key)
                continue
            if (
                entry.adjusted_demand != adjusted
                or entry.has_open_request != has_open
            ):
                dirty.add(key)
            entry.remaining_demand = float(remaining)
            entry.adjusted_demand = float(adjusted)
            entry.has_open_request = has_open

        # ---- Re-sort only the dirty groups (§4.2.1) --------------------- #
        for key in dirty:
            plan.job_order[key] = [
                e.job_id for e in self._groups[key].ordered_jobs()
            ]
        if profile is not None:
            profile.groups_resorted += len(dirty)

        # ---- Refresh eligible atoms only when the atom universe grew ---- #
        atoms_changed = (
            supply_version != self._supply_version
            or len(space.atoms) != self._space_atom_count
        )
        if atoms_changed:
            self._refresh_eligible(space, rates)
            self._supply_version = supply_version
            self._space_atom_count = len(space.atoms)

        # ---- Supply-drift classification / allocation re-run ------------ #
        new_supply = {
            key: _rate_sum(rates, self._sorted_eligible[key])
            for key in self._groups
        }
        old_allocations = plan.allocations
        queue_changed = any(
            float(group.queue_length) != old_allocations[key].queue_length
            for key, group in self._groups.items()
        )
        if not dirty and profile is not None:
            profile.record_trigger(Trigger.SUPPLY_DRIFT)
            profile.supply_only_refreshes += 1

        if self.supply_drift_tolerance == 0.0:
            # Exact mode: a skip is only sound when the allocation phases
            # would consume identical inputs, i.e. every atom rate is
            # unchanged since the last re-run.
            drift_ok = rates == self._last_rates
        else:
            drift_ok = self._within_tolerance(new_supply)

        group_order_changed = False
        if not atoms_changed and not queue_changed and drift_ok:
            # Everything Algorithm 1's allocation phases consume is
            # unchanged up to tolerated supply drift: keep the current
            # group order, ownership and preference lists.  With the
            # default tolerance 0.0 this branch is taken only when the
            # drift is exactly zero, so the kept allocation is the one the
            # oracle would recompute, bit for bit.  Dirty groups' job
            # orders were still re-sorted above and are patched below.
            if profile is not None:
                profile.allocation_skips += 1
            prefs = plan.atom_preferences
            changed_atoms: List[AtomSignature] = _atoms_listing(prefs, dirty)
        else:
            allocations: Dict[str, GroupAllocation] = {
                key: GroupAllocation(
                    key=key,
                    supply_rate=new_supply[key],
                    queue_length=float(group.queue_length),
                )
                for key, group in self._groups.items()
            }
            group_order = _phase23_allocate(
                allocations, self._eligible, rates, reallocate
            )
            if profile is not None:
                profile.allocation_reruns += 1
            self._alloc_supply = new_supply
            self._last_rates = dict(rates)

            # ---- Diff decision-relevant output ---------------------------- #
            group_order_changed = group_order != plan.group_order
            ownership_unchanged = (
                not atoms_changed
                and not group_order_changed
                and all(
                    allocations[key].allocated_atoms
                    == old_allocations[key].allocated_atoms
                    for key in allocations
                )
            )
            if ownership_unchanged:
                # Same owners over the same atom universe in the same
                # order: the preference lists are unchanged verbatim, so
                # skip their re-materialisation — only the dirty groups'
                # candidate tuples can be stale.
                prefs = plan.atom_preferences
                changed_atoms = _atoms_listing(prefs, dirty)
            else:
                prefs = _atom_preferences(
                    self._atoms_sorted, group_order, self._eligible, allocations
                )
                old_prefs = plan.atom_preferences
                stale = set(_atoms_listing(prefs, dirty))
                changed_atoms = [
                    atom
                    for atom, pref in prefs.items()
                    if atom in stale or pref != old_prefs.get(atom)
                ]
            plan.group_order = group_order
            plan.atom_preferences = prefs
            plan.allocations = allocations

        index = plan._index
        if index is not None and (
            changed_atoms or dirty or group_order_changed
        ):
            patched = index.patch(
                plan,
                dirty_groups=dirty,
                changed_atoms=changed_atoms,
                group_order_changed=group_order_changed,
            )
            if profile is not None:
                profile.index_patches += 1
                profile.index_atoms_patched += patched

        delta.clear()
        return plan

    def _within_tolerance(self, new_supply: Mapping[str, float]) -> bool:
        """Max relative group-supply drift since the last allocation run."""
        tol = self.supply_drift_tolerance
        for key, rate in new_supply.items():
            old = self._alloc_supply.get(key)
            if old is None:
                return False
            denom = max(abs(old), 1e-12)
            if abs(rate - old) / denom > tol:
                return False
        return True


__all__ = [
    "PLAN_MAINTENANCE_MODES",
    "PlanDelta",
    "PlanMaintainer",
    "Trigger",
]
