"""Starvation prevention / fairness knob ε (paper §4.4).

Venn's smallest-demand-first ordering can starve large jobs.  To bound the
damage, Venn guarantees that a job's scheduling latency is no worse than
*fair sharing*, defined as ``T_i = M * sd_i`` where ``M`` is the number of
simultaneous jobs and ``sd_i`` the job's JCT without contention.  It then
scales

* each job's demand        ``d'_i = d_i * (t_i / T_i) ** ε`` and
* each group's queue length ``q'_j = q_j * (Σ T_i / Σ t_i) ** ε``

where ``t_i`` is the time the job has spent in the system so far.  Jobs (and
groups) that have consumed only a small fraction of their fair-share time get
their effective demand shrunk — i.e. they are *boosted* — while jobs already
past their fair share lose priority.  ``ε = 0`` disables the knob (pure
Algorithm 1); ``ε → ∞`` yields maximum fairness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from .types import JobSpec

#: Ratios are clipped to this range before exponentiation so that extreme
#: ε values cannot overflow or zero-out demands entirely.
_RATIO_MIN = 1e-3
_RATIO_MAX = 1e3


@dataclass
class FairnessRecord:
    """Per-job fairness state."""

    job_id: int
    arrival_time: float
    #: Estimated JCT without contention (``sd_i``).
    solo_jct: float


def default_solo_jct_estimator(job: JobSpec) -> float:
    """Crude contention-free JCT estimate used when none is supplied.

    Without contention the scheduling delay is negligible, so the solo JCT is
    approximately ``num_rounds × (task duration × straggler factor)``.  The
    straggler factor accounts for waiting on the round's tail response; 2× the
    median task duration is a reasonable default for log-normal latencies.
    """
    return job.num_rounds * job.base_task_duration * 2.0


class FairnessController:
    """Tracks fair-share targets and produces adjusted demands / queue lengths.

    Parameters
    ----------
    epsilon:
        The fairness knob ``ε >= 0``.  ``0`` disables all adjustment.
    solo_jct_estimator:
        Callable mapping a :class:`~repro.core.types.JobSpec` to its estimated
        contention-free JCT ``sd_i``.  Defaults to
        :func:`default_solo_jct_estimator`.
    """

    def __init__(
        self,
        epsilon: float = 0.0,
        solo_jct_estimator: Optional[Callable[[JobSpec], float]] = None,
    ) -> None:
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.epsilon = float(epsilon)
        self._estimator = solo_jct_estimator or default_solo_jct_estimator
        self._records: Dict[int, FairnessRecord] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register_job(
        self, job: JobSpec, now: float, solo_jct: Optional[float] = None
    ) -> None:
        """Start tracking ``job`` (idempotent refresh of the estimate)."""
        sd = float(solo_jct) if solo_jct is not None else float(self._estimator(job))
        if sd <= 0:
            raise ValueError("solo JCT estimate must be positive")
        self._records[job.job_id] = FairnessRecord(
            job_id=job.job_id, arrival_time=now, solo_jct=sd
        )

    def forget_job(self, job_id: int) -> None:
        self._records.pop(job_id, None)

    def is_tracked(self, job_id: int) -> bool:
        return job_id in self._records

    # ------------------------------------------------------------------ #
    # Fair-share quantities
    # ------------------------------------------------------------------ #
    def fair_share_jct(self, job_id: int, num_active_jobs: int) -> float:
        """``T_i = M * sd_i`` for the job."""
        record = self._records[job_id]
        return max(1, num_active_jobs) * record.solo_jct

    def elapsed(self, job_id: int, now: float) -> float:
        """``t_i``: time the job has spent in the system so far."""
        record = self._records[job_id]
        return max(0.0, now - record.arrival_time)

    def _ratio_power(self, ratio: float) -> float:
        ratio = min(max(ratio, _RATIO_MIN), _RATIO_MAX)
        return math.pow(ratio, self.epsilon)

    # ------------------------------------------------------------------ #
    # Adjustments used by the scheduler
    # ------------------------------------------------------------------ #
    def adjusted_demand(
        self, job_id: int, raw_demand: float, now: float, num_active_jobs: int
    ) -> float:
        """``d'_i = d_i * (t_i / T_i) ** ε`` (raw demand when ε == 0)."""
        if self.epsilon == 0.0 or job_id not in self._records:
            return float(raw_demand)
        t_i = self.elapsed(job_id, now)
        T_i = self.fair_share_jct(job_id, num_active_jobs)
        if t_i <= 0:
            # A job that just arrived has consumed none of its fair share; use
            # the minimum ratio so that it gets the strongest boost available.
            return float(raw_demand) * self._ratio_power(_RATIO_MIN)
        return float(raw_demand) * self._ratio_power(t_i / T_i)

    def adjusted_queue_length(
        self,
        job_ids: Iterable[int],
        raw_queue_length: float,
        now: float,
        num_active_jobs: int,
    ) -> float:
        """``q'_j = q_j * (Σ T_i / Σ t_i) ** ε`` over the group's jobs."""
        if self.epsilon == 0.0:
            return float(raw_queue_length)
        tracked = [j for j in job_ids if j in self._records]
        if not tracked:
            return float(raw_queue_length)
        total_T = sum(self.fair_share_jct(j, num_active_jobs) for j in tracked)
        total_t = sum(self.elapsed(j, now) for j in tracked)
        if total_t <= 0:
            return float(raw_queue_length) * self._ratio_power(_RATIO_MAX)
        return float(raw_queue_length) * self._ratio_power(total_T / total_t)

    def meets_fair_share(self, job_id: int, jct: float, num_active_jobs: int) -> bool:
        """Whether a finished job's JCT met its fair-share target ``T_i``."""
        return jct <= self.fair_share_jct(job_id, num_active_jobs)


__all__ = [
    "FairnessController",
    "FairnessRecord",
    "default_solo_jct_estimator",
]
