"""Intersection Resource Scheduling (IRS) — Algorithm 1 of the paper.

Given

* the set of *resource-homogeneous job groups* (jobs bucketed by eligibility
  requirement, :mod:`repro.core.job_group`),
* the eligibility-atom space relating those requirements
  (:mod:`repro.core.requirements`), and
* the estimated device-arrival rate of every atom
  (:mod:`repro.core.supply`),

this module produces a :class:`SchedulingPlan`: a fixed job scheduling order
plus an assignment of eligibility atoms to job groups (the ``S'_j`` sets of
Algorithm 1).  At device check-in time the plan is consulted to find the
first job in the order that may use the device — no per-device optimisation
is needed, which is what gives Venn its ``max(O(m log m), O(n^2))``
complexity.

The three phases of Algorithm 1 map to the three private helpers:

1. *intra-group ordering* — jobs inside a group sorted by ascending
   (fairness-adjusted) remaining demand (§4.2.1);
2. *initial allocation* — groups sorted by ascending eligible supply take
   exclusive ownership of their eligible atoms, scarcest group first
   (lines 5-9);
3. *reallocation of intersected resources* — resource-rich groups may claim
   atoms they share with scarcer groups when their (queue length / allocated
   supply) ratio is higher **and** the move lowers the summed
   queue-length/supply ratio of the two groups involved, i.e. when doing so
   lowers the average scheduling delay (lines 10-23, justified in
   Appendix D).  Atoms only ever move from the donor to the claimant, so the
   atom-to-group assignment remains a partition throughout.

Check-in fast path
------------------

At device check-in time the plan is consulted through its
:class:`~repro.core.atom_index.AtomIndex` (:meth:`SchedulingPlan.index`):
the index maps a device's :data:`~repro.core.requirements.AtomSignature`
straight to the precomputed, ordered tuple of ``(group, job)`` candidates,
so a check-in costs a dictionary lookup plus a walk over candidates instead
of re-flattening group preference lists.  The index is built lazily once per
plan; a full rebuild replaces the plan (and with it the index), while the
incremental maintenance layer (:mod:`repro.core.plan_delta`) mutates the
plan in place and patches the live index epoch-by-epoch.
:meth:`SchedulingPlan.ordered_jobs_for` retains the original linear
flattening and serves as the reference ("legacy scan") implementation for
benchmarks and equivalence tests.

Incremental maintenance
-----------------------

The three phases are exposed as module-level helpers
(:func:`_phase23_allocate`, :func:`_atom_preferences`, :func:`_rate_sum`)
so that :class:`~repro.core.plan_delta.PlanMaintainer` re-runs *exactly*
the same float operations as a from-scratch :func:`build_plan` when it
refreshes the inter-group allocation — the property-based
incremental-vs-full equivalence tests rely on the two paths sharing this
code, not merely approximating each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from .atom_index import AtomIndex
from .job_group import JobGroup
from .requirements import AtomSignature, AtomSpace, atom_sort_key, sorted_atoms

#: Guard for divisions by (near-)zero supply rates.
_EPS = 1e-12


def _rate_sum(
    rates: Mapping[AtomSignature, float], atoms_in_order: Sequence[AtomSignature]
) -> float:
    """Sum atom rates over ``atoms_in_order``.

    Float addition is not associative, so callers must pass atoms in the
    canonical :func:`~repro.core.requirements.atom_sort_key` order (summing
    in set/hash order would make supply rates — and through them scheduling
    decisions — depend on ``PYTHONHASHSEED``).
    """
    return sum(rates.get(a, 0.0) for a in atoms_in_order)


def _normalized_rates(
    atom_rates: Mapping[AtomSignature, float],
) -> Mapping[AtomSignature, float]:
    """Atom rates with frozenset keys and non-negative float values.

    The supply estimator already hands over a dict of frozenset keys and
    non-negative floats, so the common case is a pure pass-through — the
    seed implementation re-wrapped every key in ``frozenset(...)`` and
    re-built the whole mapping on *every* rebuild, pure per-rebuild waste.
    Non-conforming mappings (tests or external callers using other set
    types or negative/int rates) are normalised as before.
    """
    for sig, rate in atom_rates.items():
        if type(sig) is not frozenset or type(rate) is not float or rate < 0.0:
            return {
                frozenset(s): max(0.0, float(r)) for s, r in atom_rates.items()
            }
    return atom_rates


def _effective_rate(alloc: "GroupAllocation") -> float:
    """Denominator of a group's queue/supply ratio.

    A group whose exclusive allocation was reallocated away is still served
    from its full eligible supply as leftovers (it stays in every atom's
    preference list), so its ratio falls back to the eligible supply rate.
    """
    return (
        alloc.allocated_rate if alloc.allocated_rate > _EPS else alloc.supply_rate
    )


@dataclass
class GroupAllocation:
    """Per-group outcome of Algorithm 1."""

    #: Requirement name identifying the group.
    key: str
    #: Estimated total eligible supply rate ``|S_j|`` (devices / second).
    supply_rate: float
    #: Atoms allocated to the group (``S'_j``).
    allocated_atoms: Set[AtomSignature] = field(default_factory=set)
    #: Supply rate of the allocated atoms (``|S'_j|``).
    allocated_rate: float = 0.0
    #: (Fairness-adjusted) queue length ``m'_j`` used in the ratio test.
    queue_length: float = 0.0


@dataclass
class SchedulingPlan:
    """The output of Algorithm 1, consumed at every device check-in.

    Attributes
    ----------
    group_order:
        Group keys sorted scarcest-supply first.  Used as the global
        tie-break when a device is eligible for several groups beyond the
        atom owner.
    job_order:
        Per-group ordered job ids (ascending adjusted demand).
    atom_preferences:
        For every known atom, the ordered list of group keys that devices of
        this atom should be offered to (owner group first, then the remaining
        eligible groups scarcest first).
    allocations:
        Per-group :class:`GroupAllocation` diagnostics.
    """

    group_order: List[str] = field(default_factory=list)
    job_order: Dict[str, List[int]] = field(default_factory=dict)
    atom_preferences: Dict[AtomSignature, List[str]] = field(default_factory=dict)
    allocations: Dict[str, GroupAllocation] = field(default_factory=dict)
    #: Lazily-built check-in index (see :meth:`index`); never compared.
    _index: Optional[AtomIndex] = field(
        default=None, repr=False, compare=False
    )

    def index(self) -> AtomIndex:
        """The signature -> candidate-job index for this plan.

        Built lazily on first use and cached; a full rebuild produces a
        fresh plan object, so the cache is invalidated together with the
        plan.  The only sanctioned mutation of an indexed plan is the
        incremental maintenance layer (:mod:`repro.core.plan_delta`), which
        patches the cached index in lock-step with the plan.
        """
        if self._index is None:
            self._index = AtomIndex(self)
        return self._index

    def preference_for(self, signature: AtomSignature) -> List[str]:
        """Ordered group keys a device with ``signature`` should be offered to.

        Unknown signatures (never anticipated by the atom space) fall back to
        "every group whose requirement name is in the signature, scarcest
        first", which is always safe because a signature literally lists the
        requirements the device satisfies.
        """
        sig = frozenset(signature)
        pref = self.atom_preferences.get(sig)
        if pref is not None:
            return pref
        return [key for key in self.group_order if key in sig]

    def ordered_jobs_for(self, signature: AtomSignature) -> List[Tuple[str, int]]:
        """Flattened (group, job) preference list for a device signature."""
        out: List[Tuple[str, int]] = []
        for key in self.preference_for(signature):
            for job_id in self.job_order.get(key, ()):  # pragma: no branch
                out.append((key, job_id))
        return out


def build_plan(
    groups: Sequence[JobGroup],
    atom_space: AtomSpace,
    atom_rates: Mapping[AtomSignature, float],
    queue_lengths: Optional[Mapping[str, float]] = None,
    reallocate: bool = True,
) -> SchedulingPlan:
    """Run Algorithm 1 and return the resulting :class:`SchedulingPlan`.

    Parameters
    ----------
    groups:
        The resource-homogeneous job groups with their waiting jobs.
    atom_space:
        Atom space covering (at least) the requirements of ``groups``.
    atom_rates:
        Estimated arrival rate per atom signature, from the supply
        estimator.  Atoms missing from the mapping are treated as rate 0 but
        still allocated (a device of that kind may well check in later).
    queue_lengths:
        Optional fairness-adjusted queue length per group key; defaults to
        the raw number of waiting jobs in each group.
    reallocate:
        Whether to run the inter-group reallocation phase (lines 10-23).
        Disabling it keeps the initial, exclusive scarcest-first allocation
        and is exposed for the design-choice ablation.
    """
    plan = SchedulingPlan()
    if not groups:
        return plan

    rates = _normalized_rates(atom_rates)

    # ---- Phase 1: intra-group ordering (§4.2.1) ----------------------- #
    allocations: Dict[str, GroupAllocation] = {}
    eligible_atoms: Dict[str, FrozenSet[AtomSignature]] = {}
    for group in groups:
        key = group.key
        atoms = set(atom_space.eligible_atoms(key)) | {
            sig for sig in rates if key in sig
        }
        eligible_atoms[key] = frozenset(atoms)
        supply = _rate_sum(rates, sorted_atoms(atoms))
        qlen = (
            float(queue_lengths[key])
            if queue_lengths is not None and key in queue_lengths
            else float(group.queue_length)
        )
        allocations[key] = GroupAllocation(
            key=key, supply_rate=supply, queue_length=qlen
        )
        plan.job_order[key] = [e.job_id for e in group.ordered_jobs()]

    # ---- Phases 2+3: allocation + reallocation ------------------------- #
    plan.group_order = _phase23_allocate(
        allocations, eligible_atoms, rates, reallocate
    )
    plan.allocations = allocations

    # ---- Materialise per-atom preference lists ------------------------- #
    all_atoms: Set[AtomSignature] = set(rates) | set().union(
        *eligible_atoms.values()
    )
    # Canonical order keeps ``atom_preferences`` insertion (and hence any
    # iteration over it) independent of hash order.
    plan.atom_preferences = _atom_preferences(
        sorted(all_atoms, key=atom_sort_key),
        plan.group_order,
        eligible_atoms,
        allocations,
    )

    return plan


def _phase23_allocate(
    allocations: Dict[str, GroupAllocation],
    eligible_atoms: Mapping[str, FrozenSet[AtomSignature]],
    rates: Mapping[AtomSignature, float],
    reallocate: bool,
) -> List[str]:
    """Phases 2 and 3 of Algorithm 1 over fresh ``allocations``.

    Mutates each group's ``allocated_atoms`` / ``allocated_rate`` in place
    (``supply_rate`` and ``queue_length`` must already be set) and returns
    the scarcest-supply-first group order.  Shared verbatim between
    :func:`build_plan` and the incremental maintenance layer so both paths
    perform bit-identical float operations.
    """
    # Scarcest-supply-first global order (ties broken by name for
    # determinism).
    group_order = sorted(
        allocations, key=lambda k: (allocations[k].supply_rate, k)
    )

    # ---- Phase 2: initial allocation (lines 5-9) ----------------------- #
    unclaimed: Set[AtomSignature] = set()
    for atoms in eligible_atoms.values():
        unclaimed |= set(atoms)
    for key in group_order:  # ascending supply == scarcest first
        claim = unclaimed & eligible_atoms[key]
        alloc = allocations[key]
        alloc.allocated_atoms = set(claim)
        alloc.allocated_rate = _rate_sum(rates, sorted_atoms(claim))
        unclaimed -= claim

    # ---- Phase 3: reallocation of intersected resources (lines 10-23) -- #
    descending = sorted(
        allocations, key=lambda k: (-allocations[k].supply_rate, k)
    )
    if not reallocate:
        descending = []
    for j_key in descending:
        alloc_j = allocations[j_key]
        if not alloc_j.allocated_atoms:
            # Line 12: only groups that still own some resources get to pull
            # intersected resources from scarcer groups.
            continue
        # Candidate donor groups: scarcer supply and overlapping eligibility,
        # visited from the most abundant of the scarcer groups downwards.
        donors = [
            k_key
            for k_key in descending
            if allocations[k_key].supply_rate < alloc_j.supply_rate
            and (eligible_atoms[k_key] & eligible_atoms[j_key])
        ]
        for k_key in donors:
            alloc_k = allocations[k_key]
            ratio_j = alloc_j.queue_length / max(_effective_rate(alloc_j), _EPS)
            ratio_k = alloc_k.queue_length / max(_effective_rate(alloc_k), _EPS)
            if ratio_j > ratio_k:
                # The intersected resources S_j ∩ S'_k: only atoms the donor
                # actually owns may move, so the allocation stays a partition.
                shared = eligible_atoms[j_key] & alloc_k.allocated_atoms
                if not shared:
                    continue
                shared_rate = _rate_sum(rates, sorted_atoms(shared))
                rate_j_after = alloc_j.allocated_rate + shared_rate
                rate_k_after = alloc_k.allocated_rate - shared_rate
                after_j = alloc_j.queue_length / max(
                    rate_j_after if rate_j_after > _EPS else alloc_j.supply_rate,
                    _EPS,
                )
                after_k = alloc_k.queue_length / max(
                    rate_k_after if rate_k_after > _EPS else alloc_k.supply_rate,
                    _EPS,
                )
                if after_j + after_k > ratio_j + ratio_k:
                    # Appendix D: commit the transfer only when it lowers the
                    # summed queue/supply ratio (i.e. the average scheduling
                    # delay) of the two groups involved.  Both sides of the
                    # comparison use the same effective-rate convention as
                    # :func:`_effective_rate`, so the global objective is
                    # monotonically non-increasing across transfers.
                    continue
                alloc_j.allocated_atoms |= shared
                alloc_k.allocated_atoms -= shared
                alloc_j.allocated_rate += shared_rate
                alloc_k.allocated_rate = max(0.0, rate_k_after)
            else:
                # Line 19: if this group still needs more resources it should
                # take them from more abundant groups first, so stop here.
                break

    return group_order


def _atom_preferences(
    atoms_in_order: Sequence[AtomSignature],
    group_order: Sequence[str],
    eligible_atoms: Mapping[str, FrozenSet[AtomSignature]],
    allocations: Mapping[str, GroupAllocation],
) -> Dict[AtomSignature, List[str]]:
    """Per-atom ordered group preference lists (owner first, then the rest).

    ``atoms_in_order`` must already be in canonical
    :func:`~repro.core.requirements.atom_sort_key` order so the resulting
    dict's insertion order is hash-independent.
    """
    prefs: Dict[AtomSignature, List[str]] = {}
    for atom in atoms_in_order:
        eligible_groups = [k for k in group_order if atom in eligible_atoms[k]]
        if not eligible_groups:
            continue
        owners = [
            k for k in eligible_groups if atom in allocations[k].allocated_atoms
        ]
        rest = [k for k in eligible_groups if k not in owners]
        prefs[atom] = owners + rest
    return prefs


__all__ = ["GroupAllocation", "SchedulingPlan", "build_plan"]
