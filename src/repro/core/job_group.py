"""Resource-homogeneous job groups (paper §4.2).

Venn first buckets jobs by their eligibility requirement: all jobs asking for
the same kind of device form one *job group* ``G_j`` and compete for the
same eligible device set ``S_j``.  Scheduling then happens at two
granularities:

* *intra-group*: jobs inside a group are ordered by (fairness-adjusted)
  remaining demand, smallest first (§4.2.1);
* *inter-group*: groups are ordered and intersected resources reallocated by
  Algorithm 1 (§4.2.2), implemented in :mod:`repro.core.irs`.

This module provides the bookkeeping for the groups themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from .requirements import EligibilityRequirement


@dataclass
class GroupJobEntry:
    """One job's standing inside its group's queue."""

    job_id: int
    #: Remaining demand used for intra-group ordering (devices still needed).
    remaining_demand: float
    #: Fairness-adjusted demand (equals ``remaining_demand`` when ε == 0).
    adjusted_demand: float
    #: Whether the job currently has an open, unsatisfied request.
    has_open_request: bool = True


@dataclass
class JobGroup:
    """All jobs that share one eligibility requirement."""

    requirement: EligibilityRequirement
    entries: Dict[int, GroupJobEntry] = field(default_factory=dict)
    #: Fairness-adjusted queue length (defaults to the raw queue length).
    adjusted_queue_length: float = 0.0

    @property
    def key(self) -> str:
        return self.requirement.name

    @property
    def queue_length(self) -> int:
        """Number of jobs in the group with open, unsatisfied requests."""
        return sum(1 for e in self.entries.values() if e.has_open_request)

    @property
    def total_remaining_demand(self) -> float:
        return sum(
            e.remaining_demand for e in self.entries.values() if e.has_open_request
        )

    def ordered_jobs(self) -> List[GroupJobEntry]:
        """Jobs with open requests, smallest adjusted demand first (§4.2.1).

        Ties are broken by job id so the order is deterministic.
        """
        waiting = [e for e in self.entries.values() if e.has_open_request]
        return sorted(waiting, key=lambda e: (e.adjusted_demand, e.job_id))

    def head(self) -> Optional[GroupJobEntry]:
        """The highest-priority waiting job of the group (``G_j[0]``)."""
        ordered = self.ordered_jobs()
        return ordered[0] if ordered else None


class JobGroupRegistry:
    """Maintains the mapping requirement -> :class:`JobGroup`.

    The registry is rebuilt cheaply from a policy's job table whenever the
    scheduling plan is recomputed (on request arrival / completion), which is
    how the paper describes Algorithm 1 being invoked.
    """

    def __init__(self) -> None:
        self._groups: Dict[str, JobGroup] = {}

    def clear(self) -> None:
        self._groups.clear()

    def upsert_job(
        self,
        job_id: int,
        requirement: EligibilityRequirement,
        remaining_demand: float,
        adjusted_demand: Optional[float] = None,
        has_open_request: bool = True,
    ) -> None:
        """Insert or refresh a job's entry in its group."""
        if remaining_demand < 0:
            raise ValueError("remaining_demand must be non-negative")
        group = self._groups.get(requirement.name)
        if group is None:
            group = JobGroup(requirement=requirement)
            self._groups[requirement.name] = group
        elif group.requirement != requirement:
            raise ValueError(
                f"requirement name {requirement.name!r} reused with a "
                "different definition"
            )
        group.entries[job_id] = GroupJobEntry(
            job_id=job_id,
            remaining_demand=float(remaining_demand),
            adjusted_demand=float(
                adjusted_demand if adjusted_demand is not None else remaining_demand
            ),
            has_open_request=has_open_request,
        )

    def remove_job(self, job_id: int) -> None:
        empty: List[str] = []
        for key, group in self._groups.items():
            group.entries.pop(job_id, None)
            if not group.entries:
                empty.append(key)
        for key in empty:
            del self._groups[key]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def groups(self) -> List[JobGroup]:
        return list(self._groups.values())

    def group(self, key: str) -> JobGroup:
        return self._groups[key]

    def __contains__(self, key: str) -> bool:
        return key in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def group_of_job(self, job_id: int) -> Optional[JobGroup]:
        for group in self._groups.values():
            if job_id in group.entries:
                return group
        return None

    @staticmethod
    def from_jobs(
        jobs: Mapping[int, "object"],
        remaining_demand: Mapping[int, float],
        adjusted_demand: Optional[Mapping[int, float]] = None,
        open_jobs: Optional[Iterable[int]] = None,
    ) -> "JobGroupRegistry":
        """Build a registry snapshot from a policy's job table.

        Parameters
        ----------
        jobs:
            ``job_id -> JobSpec`` mapping.
        remaining_demand:
            ``job_id -> remaining demand`` (devices).
        adjusted_demand:
            Optional fairness-adjusted demands.
        open_jobs:
            Job ids that currently have an open request; defaults to all.
        """
        registry = JobGroupRegistry()
        open_set = set(open_jobs) if open_jobs is not None else set(jobs)
        for job_id, job in jobs.items():
            registry.upsert_job(
                job_id=job_id,
                requirement=job.requirement,
                remaining_demand=remaining_demand.get(job_id, 0.0),
                adjusted_demand=(
                    adjusted_demand.get(job_id) if adjusted_demand else None
                ),
                has_open_request=job_id in open_set,
            )
        return registry


__all__ = ["GroupJobEntry", "JobGroup", "JobGroupRegistry"]
