"""Tests for the exact ILP formulation of IRS (Appendix B)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ilp import IRSInstance, solve_irs_bruteforce, solve_irs_milp


def simple_instance() -> IRSInstance:
    """Three devices, two jobs; job 1 only eligible for the last device."""
    return IRSInstance.build(
        arrival_times=[1.0, 2.0, 3.0],
        eligibility=[[True, False], [True, False], [True, True]],
        demands=[2, 1],
    )


class TestIRSInstance:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            IRSInstance.build([1.0], [[True], [False]], [1])
        with pytest.raises(ValueError):
            IRSInstance.build([1.0, 2.0], [[True], [False, True]], [1])

    def test_demands_must_be_positive(self):
        with pytest.raises(ValueError):
            IRSInstance.build([1.0], [[True]], [0])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            IRSInstance.build([-1.0], [[True]], [1])

    def test_feasibility_check(self):
        inst = simple_instance()
        assert inst.is_feasible_assignment({0: 0, 1: 0, 2: 1})
        assert not inst.is_feasible_assignment({0: 0, 1: 1, 2: 0})  # ineligible
        assert not inst.is_feasible_assignment({0: 0, 2: 1})  # demand unmet

    def test_average_delay(self):
        inst = simple_instance()
        delay = inst.average_delay({0: 0, 1: 0, 2: 1})
        assert delay == pytest.approx((2.0 + 3.0) / 2)


class TestMILPSolver:
    def test_simple_instance_optimal(self):
        solution = solve_irs_milp(simple_instance())
        assert solution.optimal
        # Job 0 takes the first two devices, job 1 must take the third.
        assert solution.average_delay == pytest.approx(2.5)
        assert simple_instance().is_feasible_assignment(solution.assignment)

    def test_infeasible_instance_rejected(self):
        inst = IRSInstance.build(
            arrival_times=[1.0, 2.0],
            eligibility=[[True, False], [True, False]],
            demands=[1, 1],
        )
        with pytest.raises(ValueError):
            solve_irs_milp(inst)

    def test_matches_bruteforce_on_toy(self):
        inst = simple_instance()
        milp = solve_irs_milp(inst)
        brute = solve_irs_bruteforce(inst)
        assert milp.average_delay == pytest.approx(brute.average_delay)

    def test_scarce_resource_instance(self):
        """Scarce-eligible devices must be saved for the constrained job."""
        # Devices arrive 1..6; odd devices are eligible for both jobs, even
        # devices only for job 0.  Job 1 needs 2 scarce devices.
        arrivals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        elig = [[True, i % 2 == 0] for i in range(6)]
        inst = IRSInstance.build(arrivals, elig, demands=[2, 2])
        solution = solve_irs_milp(inst)
        # Optimal: job 0 takes devices at t=2,4 (even), job 1 takes t=1,3.
        assert solution.average_delay == pytest.approx((4.0 + 3.0) / 2)

    def test_brute_force_limits_size(self):
        big = IRSInstance.build(
            arrival_times=list(np.arange(1.0, 14.0)),
            eligibility=[[True]] * 13,
            demands=[13],
        )
        with pytest.raises(ValueError):
            solve_irs_bruteforce(big)


class TestMILPAgainstBruteforceProperty:
    @given(
        n_devices=st.integers(min_value=3, max_value=7),
        n_jobs=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_milp_equals_bruteforce(self, n_devices, n_jobs, seed):
        """Property: on random small feasible instances, the MILP and the
        exhaustive search find the same optimal average delay."""
        rng = np.random.default_rng(seed)
        arrivals = sorted(float(t) for t in rng.uniform(0.0, 10.0, size=n_devices))
        elig = rng.random((n_devices, n_jobs)) < 0.7
        # Ensure feasibility: each job gets at least one exclusive device and
        # demand 1..2 bounded by its eligible count.
        demands = []
        for j in range(n_jobs):
            if not elig[:, j].any():
                elig[rng.integers(0, n_devices), j] = True
        # Keep total demand <= devices to leave room for the per-device limit.
        for j in range(n_jobs):
            demands.append(1)
        if sum(demands) > n_devices:
            return
        inst = IRSInstance.build(arrivals, elig.tolist(), demands)
        try:
            brute = solve_irs_bruteforce(inst)
        except ValueError:
            return  # infeasible combination; nothing to compare
        milp = solve_irs_milp(inst)
        assert milp.average_delay == pytest.approx(brute.average_delay, rel=1e-6)
