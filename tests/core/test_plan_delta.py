"""Incremental-vs-full plan-maintenance equivalence and delta-layer units.

The headline guarantee of the incremental maintenance subsystem
(``repro/core/plan_delta.py``) is that, with the default
``supply_drift_tolerance=0.0``, a scheduler running
``plan_maintenance="incremental"`` makes **bit-identical** scheduling
decisions to the from-scratch ``build_plan`` oracle at every decision
point.  The property tests here drive *random trigger sequences* — job
arrivals across overlapping/disjoint requirement pools, device check-ins,
assignments, round completions and aborts, job departures — through a twin
pair of schedulers (one per mode) and after **every** operation assert

* equal plans: group order, per-group job order, atom preference lists and
  the full allocation state including exact float supply rates, and
* equal check-in behaviour: the patched ``AtomIndex`` yields the same
  candidate tuples as the oracle's freshly built one, for known atoms and
  fallback signatures alike, and stays consistent with the legacy linear
  flatten of its own (mutated) plan.

Unit tests cover the pieces: trigger classification counters, in-place
index patching (same index object across epochs), the supply-drift
tolerance knob, and the estimator's signature version.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan_delta import PlanMaintainer, Trigger
from repro.core.requirements import (
    DEFAULT_CATEGORIES,
    EligibilityRequirement,
    GENERAL,
)
from repro.core.scheduler import VennScheduler
from repro.core.types import (
    DeviceProfile,
    JobSpec,
    RequestState,
    ResourceRequest,
)

#: Requirement pool mixing the four paper categories with two data-domain
#: requirements, so overlapping, contained and disjoint eligible sets all
#: occur in the random scenarios.
POOL = list(DEFAULT_CATEGORIES) + [
    EligibilityRequirement("kb_mid", min_cpu=0.3, data_domain="keyboard"),
    EligibilityRequirement("emoji_any", data_domain="emoji"),
]


def pool_device(device_id: int) -> DeviceProfile:
    """Deterministic device profile per id (ids repeat across operations,
    so the profile must be a pure function of the id)."""
    rng = np.random.default_rng(1_000_003 + device_id)
    domains = []
    if rng.random() < 0.4:
        domains.append("keyboard")
    if rng.random() < 0.3:
        domains.append("emoji")
    return DeviceProfile(
        device_id=device_id,
        cpu_score=float(rng.random()),
        memory_score=float(rng.random()),
        data_domains=frozenset(domains),
    )


class TwinHarness:
    """Drives one trigger sequence through both maintenance modes."""

    def __init__(self, seed: int, tolerance: float = 0.0) -> None:
        self.full = VennScheduler(num_tiers=1, plan_maintenance="full")
        self.inc = VennScheduler(
            num_tiers=1,
            plan_maintenance="incremental",
            supply_drift_tolerance=tolerance,
        )
        self.schedulers = (self.full, self.inc)
        self.rng = np.random.default_rng(seed)
        self.now = 0.0
        self.next_job_id = 0
        self.next_request_id = 0
        #: job_id -> (spec, rounds_left, (request_full, request_inc) | None)
        self.jobs = {}

    # ---- operations -------------------------------------------------- #
    def tick(self) -> None:
        self.now += float(self.rng.random() * 60.0) + 1.0

    def _open_request(self, job_id: int) -> None:
        spec, rounds_left, _ = self.jobs[job_id]
        self.next_request_id += 1
        pair = []
        for sched in self.schedulers:
            request = ResourceRequest(
                request_id=self.next_request_id,
                job_id=job_id,
                demand=spec.demand_per_round,
                submit_time=self.now,
                deadline=self.now + 50_000.0,
                min_reports=spec.min_reports,
            )
            sched.on_request_open(request, self.now)
            pair.append(request)
        self.jobs[job_id] = (spec, rounds_left, tuple(pair))

    def arrive(self, req_idx: int, demand: int, rounds: int) -> None:
        self.next_job_id += 1
        spec = JobSpec(
            job_id=self.next_job_id,
            requirement=POOL[req_idx % len(POOL)],
            demand_per_round=demand,
            num_rounds=rounds,
            arrival_time=self.now,
            round_deadline=50_000.0,
        )
        self.jobs[spec.job_id] = (spec, rounds, None)
        for sched in self.schedulers:
            sched.on_job_arrival(spec, self.now)
        self._open_request(spec.job_id)

    def checkin(self, device_id: int) -> None:
        device = pool_device(device_id)
        for sched in self.schedulers:
            sched.on_device_checkin(device, self.now)

    def assign(self, device_id: int) -> None:
        device = pool_device(device_id)
        got_full = self.full.assign(device, self.now)
        got_inc = self.inc.assign(device, self.now)
        assert (got_full is None) == (got_inc is None), (
            f"assign divergence for device {device_id}: "
            f"full={got_full} incremental={got_inc}"
        )
        if got_full is None:
            return
        assert got_full.job_id == got_inc.job_id
        assert got_full.request_id == got_inc.request_id
        # Mimic the engine: a returned request receives the assignment.
        got_full.record_assignment(device_id, self.now)
        got_inc.record_assignment(device_id, self.now)

    def close(self, completed: bool, pick: int) -> None:
        open_jobs = sorted(
            job_id for job_id, (_, _, pair) in self.jobs.items()
            if pair is not None
        )
        if not open_jobs:
            return
        job_id = open_jobs[pick % len(open_jobs)]
        spec, rounds_left, pair = self.jobs[job_id]
        for request in pair:
            request.state = (
                RequestState.COMPLETED if completed else RequestState.ABORTED
            )
            request.close_time = self.now
        self.full.on_request_closed(pair[0], self.now)
        self.inc.on_request_closed(pair[1], self.now)
        self.jobs[job_id] = (spec, rounds_left, None)
        if completed:
            rounds_left -= 1
            self.jobs[job_id] = (spec, rounds_left, None)
            if rounds_left <= 0:
                del self.jobs[job_id]
                for sched in self.schedulers:
                    sched.on_job_finished(job_id, self.now)
                return
        # Next round (or retry of the aborted one).
        self._open_request(job_id)

    # ---- equivalence assertions -------------------------------------- #
    def assert_equivalent(self) -> None:
        plan_full = self.full.refresh_plan(self.now)
        plan_inc = self.inc.refresh_plan(self.now)
        assert plan_full.group_order == plan_inc.group_order
        assert plan_full.job_order == plan_inc.job_order
        assert plan_full.atom_preferences == plan_inc.atom_preferences
        assert set(plan_full.allocations) == set(plan_inc.allocations)
        for key, alloc_full in plan_full.allocations.items():
            alloc_inc = plan_inc.allocations[key]
            assert alloc_full.allocated_atoms == alloc_inc.allocated_atoms
            assert alloc_full.supply_rate == alloc_inc.supply_rate
            assert alloc_full.allocated_rate == alloc_inc.allocated_rate
            assert alloc_full.queue_length == alloc_inc.queue_length
        index_full = plan_full.index()
        index_inc = plan_inc.index()
        probes = list(plan_full.atom_preferences)
        names = sorted({g for g in plan_full.job_order})
        probes.append(frozenset(names))  # fallback-path probe
        probes.append(frozenset(names[: len(names) // 2]))
        for sig in probes:
            assert index_full.candidates(sig) == index_inc.candidates(sig), (
                f"index divergence for {sorted(sig)}"
            )
            # The patched index must also stay consistent with the legacy
            # flatten of its own (mutated) plan.
            assert index_inc.candidates(sig) == tuple(
                plan_inc.ordered_jobs_for(sig)
            )


OPERATION = st.one_of(
    st.tuples(
        st.just("arrive"),
        st.integers(min_value=0, max_value=len(POOL) - 1),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=3),
    ),
    st.tuples(st.just("checkin"), st.integers(min_value=0, max_value=120)),
    st.tuples(st.just("assign"), st.integers(min_value=0, max_value=120)),
    st.tuples(
        st.just("close"),
        st.booleans(),
        st.integers(min_value=0, max_value=10),
    ),
)


class TestIncrementalEquivalence:
    @given(
        ops=st.lists(OPERATION, min_size=4, max_size=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_trigger_sequences_match_oracle(self, ops, seed):
        """After every operation of a random trigger sequence, the
        incrementally maintained plan equals the full-rebuild oracle's —
        including exact float supply rates — and both indexes agree."""
        harness = TwinHarness(seed)
        # Always start with one job so assign/close have a target early.
        harness.arrive(0, 10, 2)
        harness.assert_equivalent()
        for op in ops:
            harness.tick()
            if op[0] == "arrive":
                harness.arrive(op[1], op[2], op[3])
            elif op[0] == "checkin":
                harness.checkin(op[1])
            elif op[0] == "assign":
                harness.assign(op[1])
            elif op[0] == "close":
                harness.close(op[1], op[2])
            harness.assert_equivalent()

    @given(
        ops=st.lists(OPERATION, min_size=4, max_size=25),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_fifo_ablation_matches_oracle(self, ops, seed):
        """The FIFO ablation (enable_scheduling=False) orders by arrival
        time; the incremental path must reproduce it exactly too."""
        harness = TwinHarness(seed)
        harness.full = VennScheduler(
            num_tiers=1, plan_maintenance="full", enable_scheduling=False
        )
        harness.inc = VennScheduler(
            num_tiers=1,
            plan_maintenance="incremental",
            enable_scheduling=False,
        )
        harness.schedulers = (harness.full, harness.inc)
        harness.arrive(1, 8, 2)
        for op in ops:
            harness.tick()
            if op[0] == "arrive":
                harness.arrive(op[1], op[2], op[3])
            elif op[0] == "checkin":
                harness.checkin(op[1])
            elif op[0] == "assign":
                harness.assign(op[1])
            elif op[0] == "close":
                harness.close(op[1], op[2])
            harness.assert_equivalent()


class TestTriggerClassification:
    def _request(self, job, request_id):
        return ResourceRequest(
            request_id=request_id,
            job_id=job.job_id,
            demand=job.demand_per_round,
            submit_time=0.0,
            deadline=10_000.0,
            min_reports=job.min_reports,
        )

    def test_known_requirement_arrival_is_incremental(self):
        sched = VennScheduler(num_tiers=1)
        job1 = JobSpec(1, GENERAL, demand_per_round=4, num_rounds=1)
        job2 = JobSpec(2, GENERAL, demand_per_round=6, num_rounds=1)
        sched.on_job_arrival(job1, 0.0)
        sched.on_request_open(self._request(job1, 1), 0.0)
        sched.refresh_plan(1.0)
        rebuilds = sched.plan_rebuilds
        sched.on_job_arrival(job2, 2.0)
        sched.on_request_open(self._request(job2, 2), 2.0)
        sched.refresh_plan(3.0)
        assert sched.plan_rebuilds == rebuilds  # served incrementally
        assert sched.plan_profile.incremental_updates == 1
        assert sched.plan_profile.triggers[Trigger.JOB_ARRIVAL] == 1

    def test_new_requirement_arrival_forces_full_rebuild(self):
        sched = VennScheduler(num_tiers=1)
        job1 = JobSpec(1, GENERAL, demand_per_round=4, num_rounds=1)
        job2 = JobSpec(
            2, POOL[1], demand_per_round=6, num_rounds=1
        )  # compute_rich: new requirement
        sched.on_job_arrival(job1, 0.0)
        sched.on_request_open(self._request(job1, 1), 0.0)
        sched.refresh_plan(1.0)
        rebuilds = sched.plan_rebuilds
        sched.on_job_arrival(job2, 2.0)
        sched.refresh_plan(3.0)
        assert sched.plan_rebuilds == rebuilds + 1
        # Two new-requirement arrivals: job1's (first ever) and job2's.
        assert (
            sched.plan_profile.triggers[Trigger.JOB_ARRIVAL_NEW_REQUIREMENT]
            == 2
        )

    def test_last_departure_forces_full_rebuild(self):
        sched = VennScheduler(num_tiers=1)
        job1 = JobSpec(1, GENERAL, demand_per_round=4, num_rounds=1)
        job2 = JobSpec(2, POOL[1], demand_per_round=6, num_rounds=1)
        for job in (job1, job2):
            sched.on_job_arrival(job, 0.0)
        sched.refresh_plan(1.0)
        rebuilds = sched.plan_rebuilds
        sched.on_job_finished(2, 2.0)  # last compute_rich job
        sched.refresh_plan(3.0)
        assert sched.plan_rebuilds == rebuilds + 1
        assert (
            sched.plan_profile.triggers[Trigger.JOB_DEPARTURE_LAST_IN_GROUP]
            == 1
        )

    def test_fairness_active_falls_back_to_oracle(self):
        sched = VennScheduler(num_tiers=1, epsilon=0.5)
        job = JobSpec(1, GENERAL, demand_per_round=4, num_rounds=1)
        sched.on_job_arrival(job, 0.0)
        sched.on_request_open(self._request(job, 1), 0.0)
        sched.refresh_plan(1.0)
        sched.on_request_closed(self._request(job, 1), 2.0)
        sched.refresh_plan(3.0)
        assert sched.plan_profile.incremental_updates == 0
        assert sched.plan_profile.triggers[Trigger.FAIRNESS_ACTIVE] >= 1

    def test_full_mode_never_updates_incrementally(self):
        sched = VennScheduler(num_tiers=1, plan_maintenance="full")
        job1 = JobSpec(1, GENERAL, demand_per_round=4, num_rounds=1)
        job2 = JobSpec(2, GENERAL, demand_per_round=6, num_rounds=1)
        sched.on_job_arrival(job1, 0.0)
        sched.refresh_plan(1.0)
        sched.on_job_arrival(job2, 2.0)
        sched.refresh_plan(3.0)
        assert sched.plan_profile.incremental_updates == 0
        assert sched.plan_profile.full_rebuilds == 2

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            VennScheduler(plan_maintenance="sometimes")
        with pytest.raises(ValueError):
            PlanMaintainer(supply_drift_tolerance=-0.1)


class TestIndexPatching:
    def test_index_patched_in_place_across_updates(self):
        """Incremental refreshes keep the same plan and index objects,
        bumping the index epoch instead of rebuilding it."""
        sched = VennScheduler(num_tiers=1)
        job1 = JobSpec(1, GENERAL, demand_per_round=4, num_rounds=2)
        job2 = JobSpec(2, GENERAL, demand_per_round=6, num_rounds=2)
        sched.on_job_arrival(job1, 0.0)
        sched.on_request_open(
            ResourceRequest(1, 1, 4, 0.0, 10_000.0, 1), 0.0
        )
        device = pool_device(1)
        sched.on_device_checkin(device, 1.0)
        sched.assign(device, 1.0)  # forces plan build + index build
        plan_before = sched.plan
        index_before = plan_before.index()
        epoch_before = index_before.epoch
        # Same-requirement arrival: incremental path must patch, not drop.
        sched.on_job_arrival(job2, 2.0)
        sched.on_request_open(
            ResourceRequest(2, 2, 6, 2.0, 10_000.0, 1), 2.0
        )
        sched.assign(pool_device(2), 3.0)
        assert sched.plan is plan_before
        assert sched.plan.index() is index_before
        assert index_before.epoch > epoch_before
        assert sched.plan_profile.index_patches >= 1
        assert sched.plan_profile.index_atoms_patched >= 1
        # The patched candidates must include the new job.
        jobs_listed = {
            job_id
            for _, job_id in index_before.candidates(frozenset({"general"}))
        }
        assert jobs_listed == {1, 2}


class TestSupplyDriftTolerance:
    def _drive(self, tolerance: float):
        sched = VennScheduler(
            num_tiers=1, supply_drift_tolerance=tolerance
        )
        job = JobSpec(1, GENERAL, demand_per_round=50, num_rounds=5)
        sched.on_job_arrival(job, 0.0)
        request = ResourceRequest(1, 1, 50, 0.0, 1e9, 1)
        sched.on_request_open(request, 0.0)
        sched.refresh_plan(0.5)
        now = 1.0
        # Alternating check-ins (supply drift) and no-op request churn:
        # close the untouched request and reopen it with the same demand,
        # so queue lengths and job order stay fixed while rates drift.
        # The irregular time steps make the drift genuinely non-zero
        # (evenly spaced check-ins would keep count/span constant).
        for i in range(2, 12):
            sched.on_device_checkin(pool_device(i), now)
            request.state = RequestState.ABORTED
            sched.on_request_closed(request, now)
            request = ResourceRequest(i, 1, 50, now, 1e9, 1)
            sched.on_request_open(request, now)
            now += 100.0 + 13.0 * i
            sched.refresh_plan(now)
        return sched

    def test_zero_tolerance_always_reruns_allocation(self):
        sched = self._drive(0.0)
        assert sched.plan_profile.allocation_skips == 0
        assert sched.plan_profile.allocation_reruns >= 10

    def test_zero_tolerance_skips_only_at_exact_zero_drift(self):
        """Evenly spaced check-ins keep count/span — and hence every atom
        rate — exactly constant; the tolerance-0 skip may then keep the
        allocation because the oracle would recompute the very same one."""
        sched = VennScheduler(num_tiers=1, supply_drift_tolerance=0.0)
        job = JobSpec(1, GENERAL, demand_per_round=50, num_rounds=5)
        sched.on_job_arrival(job, 0.0)
        request = ResourceRequest(1, 1, 50, 0.0, 1e9, 1)
        sched.on_request_open(request, 0.0)
        sched.refresh_plan(0.5)
        now = 1.0
        for i in range(2, 8):
            sched.on_device_checkin(pool_device(i), now)
            request.state = RequestState.ABORTED
            sched.on_request_closed(request, now)
            request = ResourceRequest(i, 1, 50, now, 1e9, 1)
            sched.on_request_open(request, now)
            now += 100.0  # constant cadence -> rate == count/span constant
            sched.refresh_plan(now)
        assert sched.plan_profile.allocation_skips >= 1
        assert sched.plan.group_order == ["general"]

    def test_loose_tolerance_skips_allocation_reruns(self):
        sched = self._drive(1e9)
        assert sched.plan_profile.allocation_skips >= 1
        # Skipping must never corrupt the plan's decision surface.
        plan = sched.plan
        assert plan.group_order == ["general"]
        assert plan.job_order["general"] == [1]
