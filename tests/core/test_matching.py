"""Unit and property tests for Algorithm 2 (tier-based device matching)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    NO_TIER,
    JobMatchingProfile,
    TierDecision,
    TierMatcher,
    device_capacity_metric,
)
from tests.conftest import make_device


def populate_profile(
    profile: JobMatchingProfile,
    speeds,
    response_scale: float = 10.0,
    rounds=((100.0, 50.0),),
) -> None:
    """Fill a profile with participants whose response time tracks speed."""
    for i, s in enumerate(speeds):
        device = make_device(device_id=i, speed=s)
        profile.record_participation(device, response_time=response_scale * s)
    for sched, resp in rounds:
        profile.record_round(sched, resp)


class TestDeviceCapacityMetric:
    def test_faster_device_has_higher_metric(self):
        fast = make_device(speed=0.5)
        slow = make_device(speed=4.0)
        assert device_capacity_metric(fast) > device_capacity_metric(slow)

    @given(
        s1=st.floats(min_value=0.1, max_value=10.0),
        s2=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_metric_monotone_in_speed(self, s1, s2):
        d1 = make_device(device_id=1, speed=s1)
        d2 = make_device(device_id=2, speed=s2)
        if s1 < s2:
            assert device_capacity_metric(d1) > device_capacity_metric(d2)


class TestTierDecision:
    def test_no_tier_accepts_everything(self):
        assert NO_TIER.accepts(make_device(speed=100.0))

    def test_bounds_enforced(self):
        decision = TierDecision(use_tier=True, tier_index=1, low=0.5, high=1.5)
        assert decision.accepts(make_device(speed=1.0))  # metric ~1.0
        assert not decision.accepts(make_device(speed=10.0))  # metric ~0.1


class TestJobMatchingProfile:
    def test_requires_valid_configuration(self):
        with pytest.raises(ValueError):
            JobMatchingProfile(num_tiers=0)
        with pytest.raises(ValueError):
            JobMatchingProfile(history=1)

    def test_no_profile_until_rounds_recorded(self):
        profile = JobMatchingProfile(num_tiers=4)
        assert not profile.has_profile
        assert profile.tier_thresholds() is None
        assert profile.tier_speedups() is None

    def test_negative_inputs_rejected(self):
        profile = JobMatchingProfile()
        with pytest.raises(ValueError):
            profile.record_participation(make_device(), response_time=-1.0)
        with pytest.raises(ValueError):
            profile.record_round(-1.0, 5.0)

    def test_thresholds_are_sorted_quantiles(self):
        profile = JobMatchingProfile(num_tiers=4)
        populate_profile(profile, speeds=np.linspace(0.5, 5.0, 40))
        thresholds = profile.tier_thresholds()
        assert thresholds is not None
        assert len(thresholds) == 3
        assert thresholds == sorted(thresholds)

    def test_single_tier_has_no_thresholds(self):
        profile = JobMatchingProfile(num_tiers=1)
        populate_profile(profile, speeds=np.linspace(0.5, 5.0, 20))
        assert profile.tier_thresholds() == []

    def test_speedups_favor_fast_tier(self):
        profile = JobMatchingProfile(num_tiers=4)
        populate_profile(profile, speeds=np.linspace(0.5, 5.0, 200))
        speedups = profile.tier_speedups()
        assert speedups is not None and len(speedups) == 4
        # Tier 3 contains the highest-capacity (fastest) devices, whose tail
        # response time is far below the global tail.
        assert speedups[3] < speedups[0]
        assert speedups[3] < 1.0
        assert all(s <= 1.0 + 1e-9 for s in speedups[3:])

    def test_tier_bounds_partition_the_metric_axis(self):
        profile = JobMatchingProfile(num_tiers=3)
        populate_profile(profile, speeds=np.linspace(0.5, 5.0, 60))
        lows, highs = [], []
        for v in range(3):
            low, high = profile.tier_bounds(v)
            lows.append(low)
            highs.append(high)
            assert low < high
        assert lows[0] == -math.inf
        assert highs[-1] == math.inf
        assert highs[0] == lows[1] and highs[1] == lows[2]

    def test_tier_bounds_out_of_range(self):
        profile = JobMatchingProfile(num_tiers=2)
        populate_profile(profile, speeds=np.linspace(0.5, 5.0, 30))
        with pytest.raises(IndexError):
            profile.tier_bounds(5)

    def test_response_to_schedule_ratio(self):
        profile = JobMatchingProfile()
        populate_profile(profile, speeds=[1.0] * 10, rounds=((100.0, 25.0),))
        assert profile.response_to_schedule_ratio() == pytest.approx(0.25)

    def test_zero_scheduling_delay_gives_infinite_ratio(self):
        profile = JobMatchingProfile()
        populate_profile(profile, speeds=[1.0] * 10, rounds=((0.0, 25.0),))
        assert math.isinf(profile.response_to_schedule_ratio())


class TestTierMatcher:
    def test_no_decision_without_profile(self):
        matcher = TierMatcher(num_tiers=4, rng=np.random.default_rng(0))
        assert matcher.decide() == NO_TIER

    def test_single_tier_never_restricts(self):
        matcher = TierMatcher(num_tiers=1, rng=np.random.default_rng(0))
        populate_profile(matcher.profile, speeds=np.linspace(0.5, 5.0, 50))
        assert matcher.decide() == NO_TIER

    def test_restricts_when_response_time_dominates(self):
        """When c_i is huge (response time >> scheduling delay) and the tier
        speed-up is real, the JCT test V + g*c < c + 1 passes for fast tiers."""
        matcher = TierMatcher(num_tiers=2, rng=np.random.default_rng(3))
        populate_profile(
            matcher.profile,
            speeds=np.linspace(0.5, 5.0, 200),
            rounds=((1.0, 500.0),),  # c_i = 500
        )
        decisions = [matcher.decide() for _ in range(50)]
        assert any(d.use_tier for d in decisions)
        for d in decisions:
            if d.use_tier:
                assert 0 <= d.tier_index < 2
                assert d.low < d.high

    def test_never_restricts_when_scheduling_delay_dominates(self):
        """When scheduling delay dominates (c_i small), tiering always loses."""
        matcher = TierMatcher(num_tiers=4, rng=np.random.default_rng(3))
        populate_profile(
            matcher.profile,
            speeds=np.linspace(0.5, 5.0, 200),
            rounds=((1000.0, 10.0),),  # c_i = 0.01
        )
        assert all(not matcher.decide().use_tier for _ in range(50))

    @given(
        ci=st.floats(min_value=0.01, max_value=1000.0),
        tiers=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_decision_consistent_with_jct_test(self, ci, tiers, seed):
        """Property: whenever a tier is chosen, the Algorithm-2 inequality
        V + g_u * c_i < c_i + 1 actually holds for the chosen tier."""
        matcher = TierMatcher(num_tiers=tiers, rng=np.random.default_rng(seed))
        populate_profile(
            matcher.profile,
            speeds=np.linspace(0.5, 5.0, 120),
            rounds=((100.0, 100.0 * ci),),
        )
        speedups = matcher.profile.tier_speedups()
        decision = matcher.decide()
        if decision.use_tier:
            g = speedups[decision.tier_index]
            measured_ci = matcher.profile.response_to_schedule_ratio()
            assert tiers + g * measured_ci < measured_ci + 1.0
