"""Unit and property tests for eligibility requirements and the atom space."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.requirements import (
    COMPUTE_RICH,
    DEFAULT_CATEGORIES,
    GENERAL,
    HIGH_PERFORMANCE,
    MEMORY_RICH,
    AtomSpace,
    EligibilityRequirement,
    signature_of,
)
from tests.conftest import make_device


class TestEligibilityRequirement:
    def test_general_accepts_everything(self):
        assert GENERAL.is_eligible(make_device(cpu=0.0, mem=0.0))
        assert GENERAL.is_eligible(make_device(cpu=1.0, mem=1.0))

    def test_thresholds(self):
        weak = make_device(cpu=0.2, mem=0.9)
        strong = make_device(cpu=0.9, mem=0.9)
        assert not COMPUTE_RICH.is_eligible(weak)
        assert COMPUTE_RICH.is_eligible(strong)
        assert MEMORY_RICH.is_eligible(weak)
        assert HIGH_PERFORMANCE.is_eligible(strong)
        assert not HIGH_PERFORMANCE.is_eligible(weak)

    def test_data_domain_requirement(self):
        emoji_req = EligibilityRequirement("emoji", data_domain="emoji")
        assert emoji_req.is_eligible(make_device(domains={"emoji", "speech"}))
        assert not emoji_req.is_eligible(make_device(domains={"speech"}))

    def test_requires_name(self):
        with pytest.raises(ValueError):
            EligibilityRequirement("")

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EligibilityRequirement("x", min_cpu=1.5)
        with pytest.raises(ValueError):
            EligibilityRequirement("x", min_memory=-0.1)

    def test_subsumes(self):
        assert GENERAL.subsumes(HIGH_PERFORMANCE)
        assert GENERAL.subsumes(COMPUTE_RICH)
        assert not HIGH_PERFORMANCE.subsumes(GENERAL)
        assert COMPUTE_RICH.subsumes(HIGH_PERFORMANCE)
        assert not COMPUTE_RICH.subsumes(MEMORY_RICH)

    def test_intersects_threshold_requirements(self):
        # Threshold requirements always share the (1, 1) corner.
        assert COMPUTE_RICH.intersects(MEMORY_RICH)
        assert MEMORY_RICH.intersects(COMPUTE_RICH)

    def test_intersects_respects_data_domains(self):
        emoji = EligibilityRequirement("emoji", data_domain="emoji")
        speech = EligibilityRequirement("speech", data_domain="speech")
        assert not emoji.intersects(speech)
        assert emoji.intersects(GENERAL)


class TestSignature:
    def test_signature_of_default_categories(self):
        strong = make_device(cpu=0.9, mem=0.9)
        sig = signature_of(strong, DEFAULT_CATEGORIES)
        assert sig == frozenset(
            {"general", "compute_rich", "memory_rich", "high_performance"}
        )

    def test_signature_low_end(self):
        weak = make_device(cpu=0.1, mem=0.1)
        assert signature_of(weak, DEFAULT_CATEGORIES) == frozenset({"general"})

    @given(
        cpu=st.floats(min_value=0.0, max_value=1.0),
        mem=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_signature_monotone_in_capacity(self, cpu, mem):
        """A strictly stronger device satisfies a superset of requirements."""
        weak = make_device(device_id=0, cpu=cpu * 0.5, mem=mem * 0.5)
        strong = make_device(device_id=1, cpu=cpu, mem=mem)
        weak_sig = signature_of(weak, DEFAULT_CATEGORIES)
        strong_sig = signature_of(strong, DEFAULT_CATEGORIES)
        assert weak_sig <= strong_sig


class TestAtomSpace:
    def test_unique_names_required(self):
        with pytest.raises(ValueError):
            AtomSpace([GENERAL, EligibilityRequirement("general", min_cpu=0.3)])

    def test_enumerates_default_category_atoms(self, categories):
        space = AtomSpace(categories)
        atoms = space.atoms
        # The four quadrants of the (cpu, mem) grid must all be present.
        assert frozenset({"general"}) in atoms
        assert frozenset({"general", "compute_rich"}) in atoms
        assert frozenset({"general", "memory_rich"}) in atoms
        assert (
            frozenset(
                {"general", "compute_rich", "memory_rich", "high_performance"}
            )
            in atoms
        )

    def test_eligible_atoms_nesting(self, categories):
        space = AtomSpace(categories)
        assert space.eligible_atoms("high_performance") <= space.eligible_atoms(
            "compute_rich"
        )
        assert space.eligible_atoms("compute_rich") <= space.eligible_atoms("general")
        assert space.contains("general", "high_performance")
        assert not space.contains("high_performance", "general")

    def test_shared_atoms(self, categories):
        space = AtomSpace(categories)
        shared = space.shared_atoms("compute_rich", "memory_rich")
        assert shared == space.eligible_atoms("high_performance")

    def test_signature_registers_new_atom(self, categories):
        space = AtomSpace(categories)
        before = len(space.atoms)
        device = make_device(cpu=0.9, mem=0.1, domains={"emoji"})
        sig = space.signature(device)
        assert "compute_rich" in sig and "memory_rich" not in sig
        assert len(space.atoms) >= before

    def test_observe_signature_validates_names(self, categories):
        space = AtomSpace(categories)
        with pytest.raises(KeyError):
            space.observe_signature(frozenset({"nonexistent"}))

    def test_eligible_atoms_unknown_requirement(self, categories):
        space = AtomSpace(categories)
        with pytest.raises(KeyError):
            space.eligible_atoms("nope")

    def test_domain_requirements_create_domain_atoms(self):
        emoji = EligibilityRequirement("emoji", data_domain="emoji")
        space = AtomSpace([GENERAL, emoji])
        emoji_atoms = space.eligible_atoms("emoji")
        assert all("emoji" in atom for atom in emoji_atoms)
        # Devices without the domain form a general-only atom.
        assert frozenset({"general"}) in space.atoms

    @given(
        cpu=st.floats(min_value=0.0, max_value=1.0),
        mem=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_device_signature_is_known_atom(self, cpu, mem):
        """The grid enumeration covers every threshold-only device signature."""
        space = AtomSpace(DEFAULT_CATEGORIES)
        known = set(space.atoms)
        device = make_device(cpu=cpu, mem=mem)
        assert signature_of(device, DEFAULT_CATEGORIES) in known
