"""Unit and property tests for the fairness / starvation-prevention knob."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fairness import FairnessController, default_solo_jct_estimator
from tests.conftest import make_job


class TestFairnessController:
    def test_epsilon_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            FairnessController(epsilon=-1.0)

    def test_default_solo_estimator_scales_with_rounds(self):
        short = make_job(rounds=2, base_task_duration=60.0)
        long = make_job(rounds=20, base_task_duration=60.0)
        assert default_solo_jct_estimator(long) > default_solo_jct_estimator(short)

    def test_register_rejects_nonpositive_solo_jct(self):
        ctrl = FairnessController(epsilon=1.0)
        with pytest.raises(ValueError):
            ctrl.register_job(make_job(), now=0.0, solo_jct=0.0)

    def test_epsilon_zero_is_identity(self):
        ctrl = FairnessController(epsilon=0.0)
        job = make_job(job_id=1)
        ctrl.register_job(job, now=0.0, solo_jct=100.0)
        assert ctrl.adjusted_demand(1, 50.0, now=1000.0, num_active_jobs=5) == 50.0
        assert (
            ctrl.adjusted_queue_length([1], 3.0, now=1000.0, num_active_jobs=5) == 3.0
        )

    def test_untracked_job_demand_unchanged(self):
        ctrl = FairnessController(epsilon=2.0)
        assert ctrl.adjusted_demand(99, 10.0, now=50.0, num_active_jobs=3) == 10.0

    def test_fair_share_target(self):
        ctrl = FairnessController(epsilon=1.0)
        job = make_job(job_id=1)
        ctrl.register_job(job, now=0.0, solo_jct=100.0)
        assert ctrl.fair_share_jct(1, num_active_jobs=4) == 400.0

    def test_job_within_fair_share_gets_boosted(self):
        """A job that has consumed a small fraction of its fair share gets its
        demand shrunk (boosted priority)."""
        ctrl = FairnessController(epsilon=1.0)
        job = make_job(job_id=1)
        ctrl.register_job(job, now=0.0, solo_jct=1000.0)
        # At t=100 with M=10, fair share = 10000; ratio = 0.01.
        adjusted = ctrl.adjusted_demand(1, 100.0, now=100.0, num_active_jobs=10)
        assert adjusted < 100.0

    def test_job_past_fair_share_gets_deprioritised(self):
        ctrl = FairnessController(epsilon=1.0)
        job = make_job(job_id=1)
        ctrl.register_job(job, now=0.0, solo_jct=10.0)
        # At t=1000 with M=2, fair share = 20 << elapsed.
        adjusted = ctrl.adjusted_demand(1, 100.0, now=1000.0, num_active_jobs=2)
        assert adjusted > 100.0

    def test_queue_length_boost_for_underserved_group(self):
        ctrl = FairnessController(epsilon=1.0)
        for jid in (1, 2):
            ctrl.register_job(make_job(job_id=jid), now=0.0, solo_jct=1000.0)
        boosted = ctrl.adjusted_queue_length(
            [1, 2], 2.0, now=100.0, num_active_jobs=10
        )
        assert boosted > 2.0

    def test_meets_fair_share(self):
        ctrl = FairnessController(epsilon=1.0)
        ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=100.0)
        assert ctrl.meets_fair_share(1, jct=300.0, num_active_jobs=4)
        assert not ctrl.meets_fair_share(1, jct=500.0, num_active_jobs=4)

    def test_forget_job(self):
        ctrl = FairnessController(epsilon=1.0)
        ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=100.0)
        ctrl.forget_job(1)
        assert not ctrl.is_tracked(1)
        # Forgetting twice is harmless.
        ctrl.forget_job(1)

    @given(
        epsilon=st.floats(min_value=0.0, max_value=8.0),
        elapsed=st.floats(min_value=0.0, max_value=1e6),
        demand=st.floats(min_value=1.0, max_value=1e4),
        solo=st.floats(min_value=1.0, max_value=1e5),
        m=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_adjusted_demand_is_finite_and_positive(
        self, epsilon, elapsed, demand, solo, m
    ):
        """Property: the adjustment never produces zero, negative or infinite
        demands regardless of ε, elapsed time or fair-share target."""
        ctrl = FairnessController(epsilon=epsilon)
        ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=solo)
        adjusted = ctrl.adjusted_demand(1, demand, now=elapsed, num_active_jobs=m)
        assert adjusted > 0.0
        assert adjusted < float("inf")

    @given(
        eps_small=st.floats(min_value=0.0, max_value=2.0),
        eps_big=st.floats(min_value=2.0, max_value=8.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_larger_epsilon_amplifies_the_boost(self, eps_small, eps_big):
        """Property: for a job well within its fair share, a larger ε shrinks
        the adjusted demand at least as much as a smaller ε."""
        demand, solo, now, m = 100.0, 10000.0, 10.0, 10
        small = FairnessController(epsilon=eps_small)
        big = FairnessController(epsilon=eps_big)
        for ctrl in (small, big):
            ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=solo)
        assert big.adjusted_demand(1, demand, now, m) <= small.adjusted_demand(
            1, demand, now, m
        ) + 1e-9


class TestFairnessMonotonicity:
    """Monotonicity of the knob in its three inputs: elapsed time, fair-share
    target and ε (§4.4: jobs ahead of their fair share lose priority
    smoothly, never discontinuously)."""

    @given(
        epsilon=st.floats(min_value=0.1, max_value=6.0),
        t_small=st.floats(min_value=0.0, max_value=1e5),
        t_delta=st.floats(min_value=0.0, max_value=1e5),
        m=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_adjusted_demand_monotone_in_elapsed_time(
        self, epsilon, t_small, t_delta, m
    ):
        """More time in the system can only raise a job's adjusted demand
        (i.e. weaken its boost) — never lower it."""
        ctrl = FairnessController(epsilon=epsilon)
        ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=500.0)
        early = ctrl.adjusted_demand(1, 100.0, now=t_small, num_active_jobs=m)
        late = ctrl.adjusted_demand(
            1, 100.0, now=t_small + t_delta, num_active_jobs=m
        )
        assert late >= early - 1e-9

    @given(
        epsilon=st.floats(min_value=0.1, max_value=6.0),
        m_small=st.integers(min_value=1, max_value=20),
        m_extra=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=100, deadline=None)
    def test_adjusted_demand_antitone_in_active_jobs(
        self, epsilon, m_small, m_extra
    ):
        """More concurrent jobs means a larger fair-share target, hence a
        stronger boost (smaller adjusted demand)."""
        ctrl = FairnessController(epsilon=epsilon)
        ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=100.0)
        crowded = ctrl.adjusted_demand(
            1, 50.0, now=300.0, num_active_jobs=m_small + m_extra
        )
        quiet = ctrl.adjusted_demand(1, 50.0, now=300.0, num_active_jobs=m_small)
        assert crowded <= quiet + 1e-9

    @given(
        epsilon=st.floats(min_value=0.0, max_value=6.0),
        elapsed=st.floats(min_value=0.0, max_value=1e6),
        m=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_queue_length_adjustment_finite_and_positive(
        self, epsilon, elapsed, m
    ):
        ctrl = FairnessController(epsilon=epsilon)
        ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=100.0)
        adjusted = ctrl.adjusted_queue_length(
            [1], 4.0, now=elapsed, num_active_jobs=m
        )
        assert 0.0 < adjusted < float("inf")

    @given(
        eps_small=st.floats(min_value=0.0, max_value=3.0),
        eps_delta=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_larger_epsilon_amplifies_the_penalty(self, eps_small, eps_delta):
        """Dual of the boost property: for a job past its fair share, larger
        ε inflates the adjusted demand at least as much."""
        demand, solo, now, m = 100.0, 10.0, 10_000.0, 2
        small = FairnessController(epsilon=eps_small)
        big = FairnessController(epsilon=eps_small + eps_delta)
        for ctrl in (small, big):
            ctrl.register_job(make_job(job_id=1), now=0.0, solo_jct=solo)
        assert big.adjusted_demand(1, demand, now, m) >= small.adjusted_demand(
            1, demand, now, m
        ) - 1e-9
