"""Unit tests for the baseline scheduling policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    POLICY_NAMES,
    ClientDrivenRandomPolicy,
    FIFOPolicy,
    JobDrivenRandomPolicy,
    RandomMatchingPolicy,
    SRSFPolicy,
    UniformRandomPolicy,
    make_policy,
)
from repro.core.requirements import GENERAL, HIGH_PERFORMANCE
from repro.core.scheduler import VennScheduler
from repro.core.types import ResourceRequest
from tests.conftest import make_device, make_job


def open_request(policy, job, now=0.0, request_id=None):
    """Register a job and open one round request for it."""
    policy.on_job_arrival(job, now)
    request = ResourceRequest(
        request_id=request_id if request_id is not None else job.job_id,
        job_id=job.job_id,
        demand=job.demand_per_round,
        submit_time=now,
        deadline=now + job.round_deadline,
        min_reports=job.min_reports,
    )
    policy.on_request_open(request, now)
    return request


class TestMakePolicy:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_factory_constructs_every_policy(self, name):
        policy = make_policy(name, seed=1)
        assert policy.name  # every policy advertises a name

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("does-not-exist")

    def test_factory_venn_ablations(self):
        wo_sched = make_policy("venn_wo_sched", seed=1)
        wo_match = make_policy("venn_wo_match", seed=1)
        assert isinstance(wo_sched, VennScheduler) and not wo_sched.enable_scheduling
        assert isinstance(wo_match, VennScheduler) and not wo_match.enable_matching


class TestBasePolicyBookkeeping:
    def test_duplicate_job_rejected(self):
        policy = FIFOPolicy()
        job = make_job(1)
        policy.on_job_arrival(job, 0.0)
        with pytest.raises(ValueError):
            policy.on_job_arrival(job, 1.0)

    def test_request_for_unknown_job_rejected(self):
        policy = FIFOPolicy()
        request = ResourceRequest(
            request_id=1,
            job_id=99,
            demand=5,
            submit_time=0.0,
            deadline=10.0,
            min_reports=4,
        )
        with pytest.raises(KeyError):
            policy.on_request_open(request, 0.0)

    def test_request_close_updates_round_count(self):
        policy = SRSFPolicy()
        job = make_job(1, demand=5, rounds=3)
        request = open_request(policy, job)
        before = policy.remaining_job_demand(1)
        request.state = request.state.__class__.COMPLETED
        policy.on_request_closed(request, 10.0)
        assert policy.rounds_completed[1] == 1
        assert policy.remaining_job_demand(1) < before

    def test_job_finished_clears_state(self):
        policy = FIFOPolicy()
        job = make_job(1)
        open_request(policy, job)
        policy.on_job_finished(1, 5.0)
        assert 1 not in policy.jobs
        assert 1 not in policy.open_requests

    def test_eligible_open_requests_filters_by_requirement(self):
        policy = FIFOPolicy()
        open_request(policy, make_job(1, requirement=GENERAL, demand=5), request_id=1)
        open_request(
            policy, make_job(2, requirement=HIGH_PERFORMANCE, demand=5), request_id=2
        )
        weak = make_device(cpu=0.1, mem=0.1)
        strong = make_device(cpu=0.9, mem=0.9)
        assert {r.job_id for r in policy.eligible_open_requests(weak)} == {1}
        assert {r.job_id for r in policy.eligible_open_requests(strong)} == {1, 2}

    def test_satisfied_requests_are_not_offered(self):
        policy = FIFOPolicy()
        request = open_request(policy, make_job(1, demand=1))
        request.record_assignment(55, 1.0)
        assert policy.eligible_open_requests(make_device()) == []


class TestOrderingPolicies:
    def test_fifo_prefers_earliest_arrival(self):
        policy = FIFOPolicy()
        open_request(policy, make_job(1, arrival=100.0), now=100.0, request_id=1)
        open_request(policy, make_job(2, arrival=5.0), now=5.0, request_id=2)
        chosen = policy.assign(make_device(), now=200.0)
        assert chosen.job_id == 2

    def test_srsf_prefers_smallest_remaining_service(self):
        policy = SRSFPolicy()
        open_request(policy, make_job(1, demand=50, rounds=5), request_id=1)
        open_request(policy, make_job(2, demand=5, rounds=1), request_id=2)
        chosen = policy.assign(make_device(), now=10.0)
        assert chosen.job_id == 2

    def test_assign_returns_none_when_nothing_eligible(self):
        policy = SRSFPolicy()
        open_request(policy, make_job(1, requirement=HIGH_PERFORMANCE))
        weak_device = make_device(cpu=0.1, mem=0.1)
        assert policy.assign(weak_device, now=1.0) is None

    def test_random_policy_is_seed_deterministic(self):
        def run(seed):
            policy = RandomMatchingPolicy(seed=seed)
            for jid in range(5):
                open_request(policy, make_job(jid, demand=10), request_id=jid)
            return [policy.assign(make_device(device_id=i), 1.0).job_id for i in range(20)]

        assert run(3) == run(3)

    def test_random_policy_concentrates_within_a_round(self):
        """With a fixed per-round priority the same request keeps winning
        until it is satisfied."""
        policy = RandomMatchingPolicy(seed=0)
        for jid in range(3):
            open_request(policy, make_job(jid, demand=4), request_id=jid)
        first = policy.assign(make_device(device_id=0), 1.0)
        second = policy.assign(make_device(device_id=1), 1.1)
        assert first.job_id == second.job_id


class TestRandomScatterPolicies:
    def test_uniform_random_spreads_across_jobs(self):
        policy = UniformRandomPolicy(seed=7)
        for jid in range(4):
            open_request(policy, make_job(jid, demand=1000), request_id=jid)
        chosen = {
            policy.assign(make_device(device_id=i), 1.0).job_id for i in range(100)
        }
        assert len(chosen) > 1

    def test_client_driven_same_behaviour_as_uniform(self):
        assert issubclass(ClientDrivenRandomPolicy, UniformRandomPolicy)

    def test_job_driven_weights_by_demand(self):
        policy = JobDrivenRandomPolicy(seed=7)
        open_request(policy, make_job(1, demand=500), request_id=1)
        open_request(policy, make_job(2, demand=5), request_id=2)
        picks = [policy.assign(make_device(device_id=i), 1.0).job_id for i in range(200)]
        counts = {jid: picks.count(jid) for jid in (1, 2)}
        assert counts[1] > counts[2]

    def test_scatter_policies_return_none_without_requests(self):
        for cls in (UniformRandomPolicy, JobDrivenRandomPolicy):
            policy = cls(seed=1)
            assert policy.assign(make_device(), 0.0) is None
