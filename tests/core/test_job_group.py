"""Unit tests for resource-homogeneous job groups."""

from __future__ import annotations

import pytest

from repro.core.job_group import JobGroupRegistry
from repro.core.requirements import COMPUTE_RICH, GENERAL, HIGH_PERFORMANCE
from tests.conftest import make_job


class TestJobGroupRegistry:
    def test_upsert_creates_groups_by_requirement(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=10)
        reg.upsert_job(2, GENERAL, remaining_demand=5)
        reg.upsert_job(3, COMPUTE_RICH, remaining_demand=8)
        assert len(reg) == 2
        assert reg.group("general").queue_length == 2
        assert reg.group("compute_rich").queue_length == 1

    def test_upsert_refreshes_existing_entry(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=10)
        reg.upsert_job(1, GENERAL, remaining_demand=4)
        assert reg.group("general").entries[1].remaining_demand == 4
        assert reg.group("general").queue_length == 1

    def test_negative_demand_rejected(self):
        reg = JobGroupRegistry()
        with pytest.raises(ValueError):
            reg.upsert_job(1, GENERAL, remaining_demand=-1)

    def test_conflicting_requirement_definition_rejected(self):
        from repro.core.requirements import EligibilityRequirement

        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=1)
        clone_with_threshold = EligibilityRequirement("general", min_cpu=0.9)
        with pytest.raises(ValueError):
            reg.upsert_job(2, clone_with_threshold, remaining_demand=1)

    def test_ordered_jobs_ascending_adjusted_demand(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=30)
        reg.upsert_job(2, GENERAL, remaining_demand=5)
        reg.upsert_job(3, GENERAL, remaining_demand=12)
        ordered = [e.job_id for e in reg.group("general").ordered_jobs()]
        assert ordered == [2, 3, 1]

    def test_ordered_jobs_respects_adjusted_demand_override(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=30, adjusted_demand=1.0)
        reg.upsert_job(2, GENERAL, remaining_demand=5, adjusted_demand=100.0)
        ordered = [e.job_id for e in reg.group("general").ordered_jobs()]
        assert ordered == [1, 2]

    def test_ordered_jobs_tie_broken_by_job_id(self):
        reg = JobGroupRegistry()
        reg.upsert_job(9, GENERAL, remaining_demand=5)
        reg.upsert_job(3, GENERAL, remaining_demand=5)
        ordered = [e.job_id for e in reg.group("general").ordered_jobs()]
        assert ordered == [3, 9]

    def test_jobs_without_open_request_excluded_from_queue(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=5, has_open_request=False)
        reg.upsert_job(2, GENERAL, remaining_demand=9)
        group = reg.group("general")
        assert group.queue_length == 1
        assert group.head().job_id == 2

    def test_head_none_when_all_idle(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=5, has_open_request=False)
        assert reg.group("general").head() is None

    def test_remove_job_drops_empty_groups(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, HIGH_PERFORMANCE, remaining_demand=5)
        reg.remove_job(1)
        assert len(reg) == 0
        assert "high_performance" not in reg

    def test_group_of_job(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=5)
        assert reg.group_of_job(1).key == "general"
        assert reg.group_of_job(99) is None

    def test_total_remaining_demand(self):
        reg = JobGroupRegistry()
        reg.upsert_job(1, GENERAL, remaining_demand=5)
        reg.upsert_job(2, GENERAL, remaining_demand=7, has_open_request=False)
        assert reg.group("general").total_remaining_demand == 5

    def test_from_jobs_snapshot(self):
        jobs = {
            1: make_job(1, GENERAL, demand=10),
            2: make_job(2, COMPUTE_RICH, demand=20),
            3: make_job(3, COMPUTE_RICH, demand=5),
        }
        remaining = {1: 10.0, 2: 20.0, 3: 5.0}
        reg = JobGroupRegistry.from_jobs(jobs, remaining, open_jobs=[1, 3])
        assert reg.group("general").queue_length == 1
        compute = reg.group("compute_rich")
        assert compute.queue_length == 1
        assert compute.head().job_id == 3
