"""Unit tests for the end-to-end Venn scheduling policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.requirements import GENERAL, HIGH_PERFORMANCE
from repro.core.scheduler import VennScheduler
from repro.core.types import ResourceRequest
from tests.conftest import make_device, make_job


def open_request(policy, job, now=0.0, request_id=None):
    policy.on_job_arrival(job, now)
    request = ResourceRequest(
        request_id=request_id if request_id is not None else job.job_id,
        job_id=job.job_id,
        demand=job.demand_per_round,
        submit_time=now,
        deadline=now + job.round_deadline,
        min_reports=job.min_reports,
    )
    policy.on_request_open(request, now)
    return request


def feed_checkins(policy, devices, start=0.0, step=1.0):
    t = start
    for d in devices:
        policy.on_device_checkin(d, t)
        t += step
    return t


class TestVennSchedulerConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VennScheduler(num_tiers=0)
        with pytest.raises(ValueError):
            VennScheduler(demand_mode="banana")

    def test_ablation_names(self):
        assert VennScheduler().name == "venn"
        assert VennScheduler(enable_scheduling=False).name == "venn_wo_sched"
        assert VennScheduler(enable_matching=False).name == "venn_wo_match"


class TestVennSchedulerAssignment:
    def test_assign_none_without_requests(self):
        sched = VennScheduler(seed=0)
        assert sched.assign(make_device(), 0.0) is None

    def test_scarce_device_goes_to_scarce_job(self):
        """A high-performance device must serve the high-performance job even
        when a general job with smaller demand is also waiting."""
        sched = VennScheduler(seed=0)
        open_request(sched, make_job(1, GENERAL, demand=5), request_id=1)
        open_request(sched, make_job(2, HIGH_PERFORMANCE, demand=50), request_id=2)
        # Observed supply: plenty of weak devices, few strong ones.
        weak = [make_device(device_id=i, cpu=0.1, mem=0.1) for i in range(20)]
        strong = [make_device(device_id=100 + i, cpu=0.9, mem=0.9) for i in range(2)]
        feed_checkins(sched, weak + strong)
        chosen = sched.assign(make_device(device_id=999, cpu=0.9, mem=0.9), now=30.0)
        assert chosen.job_id == 2

    def test_weak_device_goes_to_general_job(self):
        sched = VennScheduler(seed=0)
        open_request(sched, make_job(1, GENERAL, demand=5), request_id=1)
        open_request(sched, make_job(2, HIGH_PERFORMANCE, demand=5), request_id=2)
        feed_checkins(
            sched, [make_device(device_id=i, cpu=0.2, mem=0.2) for i in range(5)]
        )
        chosen = sched.assign(make_device(device_id=999, cpu=0.2, mem=0.2), now=10.0)
        assert chosen.job_id == 1

    def test_intra_group_order_prefers_smaller_demand(self):
        sched = VennScheduler(seed=0)
        open_request(sched, make_job(1, GENERAL, demand=40, rounds=1), request_id=1)
        open_request(sched, make_job(2, GENERAL, demand=3, rounds=1), request_id=2)
        feed_checkins(sched, [make_device(device_id=i) for i in range(5)])
        chosen = sched.assign(make_device(device_id=999), now=10.0)
        assert chosen.job_id == 2

    def test_demand_mode_round_uses_request_remaining(self):
        sched = VennScheduler(seed=0, demand_mode="round")
        # Job 1: huge total demand but tiny current round; job 2 the reverse.
        r1 = open_request(sched, make_job(1, GENERAL, demand=3, rounds=50), request_id=1)
        open_request(sched, make_job(2, GENERAL, demand=10, rounds=1), request_id=2)
        feed_checkins(sched, [make_device(device_id=i) for i in range(5)])
        chosen = sched.assign(make_device(device_id=999), now=10.0)
        assert chosen.job_id == 1
        assert r1.remaining_demand == 3  # not assigned by the engine here

    def test_work_conserving_fallback_across_groups(self):
        """When the owning group needs nothing, devices flow to other groups."""
        sched = VennScheduler(seed=0)
        open_request(sched, make_job(1, GENERAL, demand=5), request_id=1)
        job2 = make_job(2, HIGH_PERFORMANCE, demand=1)
        request2 = open_request(sched, job2, request_id=2)
        request2.record_assignment(42, 1.0)  # high-perf demand satisfied
        feed_checkins(sched, [make_device(device_id=i, cpu=0.9, mem=0.9) for i in range(3)])
        chosen = sched.assign(make_device(device_id=999, cpu=0.9, mem=0.9), now=10.0)
        assert chosen.job_id == 1

    def test_assignment_respects_eligibility(self):
        sched = VennScheduler(seed=0)
        open_request(sched, make_job(1, HIGH_PERFORMANCE, demand=5), request_id=1)
        weak = make_device(device_id=1, cpu=0.1, mem=0.1)
        sched.on_device_checkin(weak, 0.0)
        assert sched.assign(weak, 1.0) is None

    def test_plan_refreshed_on_request_events(self):
        """Request events invalidate the plan; with incremental maintenance
        (the default) a same-requirement trigger is served by an in-place
        update instead of a from-scratch rebuild."""
        sched = VennScheduler(seed=0)

        def refreshes():
            return sched.plan_rebuilds + sched.plan_profile.incremental_updates

        open_request(sched, make_job(1, GENERAL, demand=5), request_id=1)
        sched.assign(make_device(device_id=1), 1.0)
        seen = refreshes()
        request2 = open_request(sched, make_job(2, GENERAL, demand=5), request_id=2)
        sched.assign(make_device(device_id=2), 2.0)
        assert refreshes() > seen
        # Job 2 shares job 1's requirement, so its arrival + request were
        # classified incrementally — no extra full rebuild.
        assert sched.plan_profile.incremental_updates > 0
        request2.state = request2.state.__class__.COMPLETED
        sched.on_request_closed(request2, 3.0)
        sched.assign(make_device(device_id=3), 4.0)
        assert refreshes() > seen + 1

    def test_plan_rebuilt_on_request_events_in_full_mode(self):
        """The oracle mode preserves the paper-literal behaviour: every
        trigger is served by a full rebuild."""
        sched = VennScheduler(seed=0, plan_maintenance="full")
        open_request(sched, make_job(1, GENERAL, demand=5), request_id=1)
        sched.assign(make_device(device_id=1), 1.0)
        rebuilds = sched.plan_rebuilds
        request2 = open_request(sched, make_job(2, GENERAL, demand=5), request_id=2)
        sched.assign(make_device(device_id=2), 2.0)
        assert sched.plan_rebuilds > rebuilds
        request2.state = request2.state.__class__.COMPLETED
        sched.on_request_closed(request2, 3.0)
        sched.assign(make_device(device_id=3), 4.0)
        assert sched.plan_rebuilds > rebuilds + 1
        assert sched.plan_profile.incremental_updates == 0


class TestVennSchedulerMatchingIntegration:
    def _profiled_scheduler(self, ci_response=500.0, num_tiers=2):
        """Scheduler with one job whose profile says response time dominates."""
        sched = VennScheduler(seed=1, num_tiers=num_tiers)
        job = make_job(1, GENERAL, demand=3, rounds=5)
        request = open_request(sched, job, request_id=1)
        matcher = sched._matchers[1]
        for i, speed in enumerate(np.linspace(0.5, 5.0, 100)):
            matcher.record_participation(
                make_device(device_id=i, speed=float(speed)), response_time=10 * speed
            )
        matcher.record_round(1.0, ci_response)
        return sched, request

    def test_tier_decision_cached_per_request(self):
        sched, request = self._profiled_scheduler()
        sched.assign(make_device(device_id=500, speed=1.0), now=1.0)
        assert request.request_id in sched._tier_decisions
        first = sched._tier_decisions[request.request_id]
        sched.assign(make_device(device_id=501, speed=1.0), now=2.0)
        assert sched._tier_decisions[request.request_id] is first

    def test_matching_disabled_never_restricts(self):
        sched = VennScheduler(seed=1, enable_matching=False)
        job = make_job(1, GENERAL, demand=3)
        request = open_request(sched, job, request_id=1)
        sched.assign(make_device(device_id=5), now=1.0)
        assert not sched._tier_decisions[request.request_id].use_tier

    def test_tier_restricted_device_still_assigned_as_fallback(self):
        """A device outside the chosen tier is used as a fallback rather than
        wasted when no other job can take it."""
        sched, request = self._profiled_scheduler()
        # Find a decision that actually uses a tier by retrying seeds.
        decision = None
        for _ in range(20):
            sched._tier_decisions.clear()
            sched.assign(make_device(device_id=600, speed=1.0), now=1.0)
            decision = sched._tier_decisions[request.request_id]
            if decision.use_tier:
                break
        if not decision.use_tier:
            pytest.skip("rng never chose a beneficial tier")
        # A device far outside any finite tier bound still gets assigned.
        slow = make_device(device_id=601, speed=1000.0)
        if decision.accepts(slow):
            pytest.skip("chosen tier already accepts the slow device")
        chosen = sched.assign(slow, now=2.0)
        assert chosen is request

    def test_on_response_updates_profile(self):
        sched = VennScheduler(seed=0)
        job = make_job(1, GENERAL, demand=2)
        request = open_request(sched, job, request_id=1)
        device = make_device(device_id=7)
        sched.on_device_checkin(device, 0.0)
        chosen = sched.assign(device, 1.0)
        chosen.record_assignment(device.device_id, 1.0)
        sched.on_response(request, device, 61.0)
        profile = sched._matchers[1].profile
        assert len(profile._response_times) == 1
        assert profile._response_times[0] == pytest.approx(60.0)

    def test_request_close_records_round_profile(self):
        sched = VennScheduler(seed=0)
        job = make_job(1, GENERAL, demand=1)
        request = open_request(sched, job, request_id=1)
        request.record_assignment(9, 5.0)
        request.record_response(9, 20.0)
        request.state = request.state.__class__.COMPLETED
        request.close_time = 20.0
        sched.on_request_closed(request, 20.0)
        profile = sched._matchers[1].profile
        assert profile.rounds_profiled == 1


class TestVennSchedulerLifecycle:
    def test_job_finish_cleans_up(self):
        sched = VennScheduler(seed=0)
        open_request(sched, make_job(1, GENERAL, demand=5), request_id=1)
        sched.on_job_finished(1, 10.0)
        assert 1 not in sched.jobs
        assert 1 not in sched._matchers
        assert not sched.fairness.is_tracked(1)
        assert sched.assign(make_device(), 11.0) is None

    def test_supply_checkins_feed_estimator(self):
        sched = VennScheduler(seed=0)
        sched.on_job_arrival(make_job(1, GENERAL, demand=5), 0.0)
        feed_checkins(sched, [make_device(device_id=i) for i in range(10)])
        assert sched.supply.total_checkins == 10

    def test_rebuild_plan_with_no_jobs(self):
        sched = VennScheduler(seed=0)
        plan = sched.rebuild_plan(now=0.0)
        assert plan.group_order == []
