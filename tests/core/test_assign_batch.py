"""Differential tests for the batched decision path.

The scalar ``assign`` walk is the decision oracle; ``assign_batch`` (the
commit-callback protocol) and ``assign_batch_bulk`` (the ledger protocol,
Venn only) must produce byte-for-byte identical decision sequences for any
cohort, any plan, any demand shape — including the quota edges where the
protocols differ structurally from the scalar loop: demand zeroing
mid-cohort, a request closing between consults, devices already assigned
to the only candidate, and the cohort-local ledger replaying demand the
engine has not committed yet.

Three layers:

* **Policy-level differential** — every registered policy, one scenario:
  fresh policy + fresh requests per protocol, decisions compared.
* **Hypothesis differential** — random plans, cohorts and demand shapes
  through the Venn scheduler (the only policy with its own batched
  implementations; the baselines share the default fallback, exercised by
  the scenario test above).
* **Protocol units** — ``record_assignments_bulk`` validation and the
  bulk walk's early-stop/dead-signature behaviour.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import POLICY_NAMES, make_policy
from repro.core.requirements import (
    COMPUTE_RICH,
    GENERAL,
    HIGH_PERFORMANCE,
    MEMORY_RICH,
)
from repro.core.types import RequestState, ResourceRequest
from tests.conftest import make_device, make_job

CATEGORIES = [GENERAL, COMPUTE_RICH, MEMORY_RICH, HIGH_PERFORMANCE]


# --------------------------------------------------------------------- #
# Scenario construction
# --------------------------------------------------------------------- #
def build_policy(name, jobs, now=0.0, checkins=()):
    """Fresh policy + fresh open requests for one differential run.

    Each protocol mutates the requests it is offered (``record_assignment``
    bookkeeping between consults), so every run gets its own instances.
    """
    policy = make_policy(name, seed=123)
    requests = []
    for job in jobs:
        policy.on_job_arrival(job, now)
        request = ResourceRequest(
            request_id=job.job_id,
            job_id=job.job_id,
            demand=job.demand_per_round,
            submit_time=now,
            deadline=now + job.round_deadline,
            min_reports=job.min_reports,
        )
        policy.on_request_open(request, now)
        requests.append(request)
    for device in checkins:
        policy.on_device_checkin(device, now)
    return policy, requests


def run_scalar(policy, devices, now):
    """Oracle: consult-commit-consult, exactly like the per-event loop."""
    decisions = []
    for device in devices:
        request = policy.assign(device, now)
        decisions.append(None if request is None else request.request_id)
        if request is not None:
            request.record_assignment(device.device_id, now)
    return decisions


def run_batch(policy, devices, now):
    """Commit-callback protocol with an engine-like always-continue commit."""
    decisions = [None] * len(devices)

    def commit(i, request):
        decisions[i] = request.request_id
        request.record_assignment(devices[i].device_id, now)
        return True

    policy.assign_batch(devices, now, commit)
    return decisions


def run_bulk(policy, devices, now):
    """Ledger protocol driven the way the engine drives it: bulk-commit
    every returned proposal, then resume from the unconsulted remainder."""
    decisions = [None] * len(devices)
    start = 0
    while start < len(devices):
        consumed, proposals = policy.assign_batch_bulk(devices[start:], now)
        grouped = {}
        for j, request in proposals:
            decisions[start + j] = request.request_id
            grouped.setdefault(request.request_id, (request, []))[1].append(
                devices[start + j].device_id
            )
        for request, device_ids in grouped.values():
            request.record_assignments_bulk(device_ids, now)
        if consumed == 0:
            break
        start += consumed
    return decisions


def diverse_devices(n, id_base=0):
    """A cohort spanning the capability spectrum, ascending device ids."""
    devices = []
    for i in range(n):
        devices.append(
            make_device(
                device_id=id_base + i,
                cpu=0.1 + 0.8 * ((i * 7) % 10) / 10.0,
                mem=0.1 + 0.8 * ((i * 3) % 10) / 10.0,
                speed=0.5 + ((i * 11) % 10) / 10.0,
            )
        )
    return devices


# --------------------------------------------------------------------- #
# Every registered policy: batch fallback == scalar oracle
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", POLICY_NAMES)
def test_assign_batch_matches_scalar_for_every_policy(name):
    jobs = [
        make_job(1, GENERAL, demand=7),
        make_job(2, HIGH_PERFORMANCE, demand=4),
        make_job(3, COMPUTE_RICH, demand=5),
    ]
    devices = diverse_devices(40)
    scal_policy, _ = build_policy(name, jobs, checkins=devices)
    batch_policy, _ = build_policy(name, jobs, checkins=devices)
    scalar = run_scalar(scal_policy, devices, now=10.0)
    batch = run_batch(batch_policy, devices, now=10.0)
    assert batch == scalar


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_assign_batch_stops_on_commit_false(name):
    """A ``False`` commit must stop the batch immediately: no decisions —
    and for seeded policies no rng draws — for the unvisited remainder."""
    jobs = [make_job(1, GENERAL, demand=30)]
    devices = diverse_devices(12)
    policy, _ = build_policy(name, jobs, checkins=devices)
    seen = []

    def commit(i, request):
        seen.append(i)
        return len(seen) < 3

    policy.assign_batch(devices, 10.0, commit)
    assert len(seen) == 3


def test_bulk_matches_scalar_venn():
    jobs = [
        make_job(1, GENERAL, demand=9),
        make_job(2, HIGH_PERFORMANCE, demand=6),
        make_job(3, MEMORY_RICH, demand=4),
    ]
    devices = diverse_devices(50)
    scal_policy, _ = build_policy("venn", jobs, checkins=devices)
    bulk_policy, _ = build_policy("venn", jobs, checkins=devices)
    assert run_bulk(bulk_policy, devices, 10.0) == run_scalar(
        scal_policy, devices, 10.0
    )


# --------------------------------------------------------------------- #
# Quota edges
# --------------------------------------------------------------------- #
def test_zero_remaining_demand_skipped_identically():
    """A request whose demand was fully assigned before the cohort must be
    invisible to both protocols (the memoized candidate list may still
    hold it; the per-device demand probe must skip it)."""
    jobs = [make_job(1, GENERAL, demand=2), make_job(2, GENERAL, demand=5)]
    devices = diverse_devices(10)
    results = {}
    for mode in ("scalar", "batch", "bulk"):
        policy, requests = build_policy("venn", jobs, checkins=devices)
        # Exhaust job 1's demand out-of-band, as if an earlier sweep
        # committed it, then let the policy observe the drained request.
        requests[0].record_assignment(900, 5.0)
        requests[0].record_assignment(901, 5.0)
        runner = {"scalar": run_scalar, "batch": run_batch, "bulk": run_bulk}
        results[mode] = runner[mode](policy, devices, 10.0)
    assert results["batch"] == results["scalar"]
    assert results["bulk"] == results["scalar"]
    assert 1 not in results["scalar"]


def test_mid_batch_demand_zeroing_stops_bulk_walk():
    """The ledger walk must stop at the proposal that zeroes a request's
    demand — the engine re-filters there — and report the consulted
    prefix, never deciding past it."""
    jobs = [make_job(1, GENERAL, demand=3)]
    devices = diverse_devices(10)
    policy, _ = build_policy("venn", jobs, checkins=devices)
    consumed, proposals = policy.assign_batch_bulk(devices, 10.0)
    assert len(proposals) == 3
    # The third proposal zeroes the ledger; the walk stops right there.
    assert consumed == proposals[-1][0] + 1
    assert consumed < len(devices)


def test_mid_batch_close_is_respected():
    """A request closed between consults (lifecycle event) is skipped by
    the batch walk exactly like the scalar walk."""
    jobs = [make_job(1, GENERAL, demand=4), make_job(2, GENERAL, demand=4)]
    devices = diverse_devices(8)
    results = {}
    for mode in ("scalar", "batch"):
        policy, requests = build_policy("venn", jobs, checkins=devices)
        requests[0].state = RequestState.CANCELLED
        runner = {"scalar": run_scalar, "batch": run_batch}
        results[mode] = runner[mode](policy, devices, 10.0)
    assert results["batch"] == results["scalar"]
    assert 1 not in results["scalar"]


def test_already_assigned_device_not_reassigned():
    """A device in ``assigned_ids`` must be skipped for that request by
    every protocol (the one-report-per-device rule)."""
    jobs = [make_job(1, GENERAL, demand=5)]
    devices = diverse_devices(4)
    results = {}
    for mode in ("scalar", "batch", "bulk"):
        policy, requests = build_policy("venn", jobs, checkins=devices)
        requests[0].record_assignment(devices[1].device_id, 5.0)
        runner = {"scalar": run_scalar, "batch": run_batch, "bulk": run_bulk}
        results[mode] = runner[mode](policy, devices, 10.0)
    assert results["batch"] == results["scalar"]
    assert results["bulk"] == results["scalar"]
    assert results["scalar"][1] is None


# --------------------------------------------------------------------- #
# Memo invalidation
# --------------------------------------------------------------------- #
def test_candidate_memo_invalidated_on_plan_bump():
    """A new request arriving mid-stream must be visible to the batched
    walk: the lifecycle hook dirties the plan, the refresh bumps
    ``plan_version``, and the memoized candidate lists are rebuilt."""
    jobs = [make_job(1, GENERAL, demand=2)]
    devices = diverse_devices(30)
    policy, _ = build_policy("venn", jobs, checkins=devices)
    assert run_batch(policy, devices[:10], 10.0).count(1) == 2
    # Open a second job after the first cohort drained job 1.
    job2 = make_job(2, GENERAL, demand=3)
    policy.on_job_arrival(job2, 20.0)
    request2 = ResourceRequest(
        request_id=2,
        job_id=2,
        demand=3,
        submit_time=20.0,
        deadline=1220.0,
        min_reports=job2.min_reports,
    )
    policy.on_request_open(request2, 20.0)
    second = run_batch(policy, devices[10:20], 20.0)
    assert second.count(2) == 3


# --------------------------------------------------------------------- #
# record_assignments_bulk protocol units
# --------------------------------------------------------------------- #
def make_request(demand=3):
    return ResourceRequest(
        request_id=1,
        job_id=1,
        demand=demand,
        submit_time=0.0,
        deadline=100.0,
        min_reports=1,
    )


def test_bulk_record_matches_sequential():
    seq = make_request(4)
    bulk = make_request(4)
    for device_id in (10, 11, 12):
        seq.record_assignment(device_id, 5.0)
    bulk.record_assignments_bulk([10, 11, 12], 5.0)
    assert bulk.remaining_demand == seq.remaining_demand == 1
    assert bulk.assigned == seq.assigned
    assert bulk.assigned_ids == seq.assigned_ids
    assert bulk.state == seq.state


def test_bulk_record_rejects_overflow():
    request = make_request(2)
    with pytest.raises(ValueError):
        request.record_assignments_bulk([1, 2, 3], 5.0)


def test_bulk_record_rejects_duplicates():
    request = make_request(3)
    request.record_assignment(7, 1.0)
    with pytest.raises(ValueError):
        request.record_assignments_bulk([8, 7], 5.0)


def test_bulk_record_rejects_closed_request():
    request = make_request(2)
    request.state = RequestState.CANCELLED
    with pytest.raises(ValueError):
        request.record_assignments_bulk([1], 5.0)


# --------------------------------------------------------------------- #
# Hypothesis differential: random plans, cohorts and demand shapes
# --------------------------------------------------------------------- #
@st.composite
def scenario(draw):
    num_jobs = draw(st.integers(min_value=1, max_value=5))
    jobs = []
    for job_id in range(1, num_jobs + 1):
        requirement = draw(st.sampled_from(CATEGORIES))
        demand = draw(st.integers(min_value=1, max_value=12))
        jobs.append(make_job(job_id, requirement, demand=demand))
    num_devices = draw(st.integers(min_value=1, max_value=40))
    devices = []
    for i in range(num_devices):
        devices.append(
            make_device(
                device_id=i,
                cpu=draw(
                    st.floats(
                        min_value=0.05, max_value=1.0, allow_nan=False
                    )
                ),
                mem=draw(
                    st.floats(
                        min_value=0.05, max_value=1.0, allow_nan=False
                    )
                ),
                speed=draw(
                    st.floats(min_value=0.3, max_value=2.0, allow_nan=False)
                ),
            )
        )
    pre_assigned = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_jobs - 1),
                st.integers(min_value=0, max_value=max(0, num_devices - 1)),
            ),
            max_size=5,
        )
    )
    return jobs, devices, pre_assigned


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_hypothesis_batch_and_bulk_match_scalar(scene):
    jobs, devices, pre_assigned = scene
    results = {}
    for mode in ("scalar", "batch", "bulk"):
        policy, requests = build_policy("venn", jobs, checkins=devices)
        for job_index, device_index in pre_assigned:
            request = requests[job_index]
            device_id = devices[device_index].device_id
            if (
                request.remaining_demand > 0
                and device_id not in request.assigned_ids
            ):
                request.record_assignment(device_id, 1.0)
        runner = {"scalar": run_scalar, "batch": run_batch, "bulk": run_bulk}
        results[mode] = runner[mode](policy, devices, 10.0)
    assert results["batch"] == results["scalar"]
    assert results["bulk"] == results["scalar"]


@given(
    st.sampled_from(
        ["random", "uniform_random", "client_driven_random", "fifo", "srsf"]
    ),
    scenario(),
)
@settings(max_examples=30, deadline=None)
def test_hypothesis_fallback_matches_scalar_for_baselines(name, scene):
    jobs, devices, _ = scene
    scal_policy, _ = build_policy(name, jobs, checkins=devices)
    batch_policy, _ = build_policy(name, jobs, checkins=devices)
    assert run_batch(batch_policy, devices, 10.0) == run_scalar(
        scal_policy, devices, 10.0
    )
