"""Differential tests for the bulk response hooks.

The scalar per-event response bookkeeping — ``request.record_response``
followed by ``policy.on_response``, once per reporting device — is the
oracle; the bulk rail the cohort path drives —
``request.record_responses_bulk`` plus ``policy.on_response_batch``, once
per touched request in first-response order — must leave byte-for-byte
identical state behind for any cohort: mixed success/failure, entries
aimed at aborted or already-evicted requests, and day-boundary
timestamps.

Three layers, mirroring ``tests/core/test_assign_batch.py``:

* **Policy-level differential** — every registered policy, one mixed
  scenario, pickled policy state and request state compared.
* **Hypothesis differential** — random jobs, assignments and cohorts
  through the Venn scheduler and sampled baselines.
* **Protocol units** — ``record_responses_bulk`` validation and the
  default ``on_response_batch`` fallback's skip/loop behaviour
  (including through a ``RecordingPolicy`` wrapper).
"""

from __future__ import annotations

import pickle

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import POLICY_NAMES
from repro.core.policy import BasePolicy
from repro.core.requirements import GENERAL
from repro.core.types import RequestState
from repro.resilience import RecordingPolicy
from tests.conftest import make_device, make_job
from tests.core.test_assign_batch import (
    CATEGORIES,
    build_policy,
    diverse_devices,
    make_request,
)

#: Timestamps around the daily-limit rollover — the regime the engine's
#: cohort path special-cases (refunds flip ``last_day``); at the hook
#: level they exercise large / zero / boundary RTTs.
DAY_BOUNDARY_TIMES = [10.0, 86_399.5, 86_400.0, 172_800.25]


# --------------------------------------------------------------------- #
# Replays: the two rails the engine drives
# --------------------------------------------------------------------- #
def replay_scalar(policy, cohort, now):
    """Oracle: per-event bookkeeping in cohort order, exactly like the
    per-event response handler (failures and closed/evicted requests
    never reach the policy)."""
    for request, device, success in cohort:
        if success and request is not None and request.is_open:
            request.record_response(device.device_id, now)
            policy.on_response(request, device, now)


def replay_bulk(policy, cohort, now):
    """The cohort rail: group policy-visible responses per request in
    first-occurrence order, then one bulk record + one batch hook per
    request — the grouping ``_apply_response_prefix`` performs."""
    grouped = {}
    for request, device, success in cohort:
        if success and request is not None and request.is_open:
            grouped.setdefault(id(request), (request, []))[1].append(device)
    for request, devices in grouped.values():
        request.record_responses_bulk(
            [device.device_id for device in devices], now
        )
        policy.on_response_batch(request, devices, now)


def build_cohort(requests, devices, entries):
    """Materialise ``(request_index | None, device_index, success)`` triples
    against one run's fresh request instances."""
    cohort = []
    for request_index, device_index, success in entries:
        request = (
            None if request_index is None else requests[request_index]
        )
        cohort.append((request, devices[device_index], success))
    return cohort


def assert_identical(name, jobs, devices, prepare, entries, now):
    """Run both rails on independently built twins and compare state."""
    states = {}
    for rail, replay in (("scalar", replay_scalar), ("bulk", replay_bulk)):
        policy, requests = build_policy(name, jobs, checkins=devices)
        prepare(policy, requests)
        replay(policy, build_cohort(requests, devices, entries), now)
        states[rail] = (
            pickle.dumps(policy),
            [
                (
                    request.state,
                    list(request.responses.items()),
                    request.assigned,
                )
                for request in requests
            ],
        )
    assert states["bulk"][1] == states["scalar"][1]
    assert states["bulk"][0] == states["scalar"][0]


# --------------------------------------------------------------------- #
# Every registered policy: bulk rail == scalar oracle
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", POLICY_NAMES)
@pytest.mark.parametrize("now", DAY_BOUNDARY_TIMES)
def test_bulk_hooks_match_scalar_for_every_policy(name, now):
    jobs = [
        make_job(1, GENERAL, demand=4),
        make_job(2, GENERAL, demand=3),
        make_job(3, GENERAL, demand=2),
    ]
    devices = diverse_devices(10)

    def prepare(policy, requests):
        # Job 1 and 2 collected assignments; job 3 aborted mid-collection.
        for device_index in (0, 1, 2, 3):
            requests[0].record_assignment(devices[device_index].device_id, 1.0)
        for device_index in (4, 5):
            requests[1].record_assignment(devices[device_index].device_id, 2.0)
        requests[2].record_assignment(devices[6].device_id, 3.0)
        requests[2].state = RequestState.ABORTED
        policy.on_request_closed(requests[2], 5.0)

    # Interleaved successes across two open requests, failures, a straggler
    # of the aborted request and an entry whose request was already evicted.
    entries = [
        (0, 0, True),
        (1, 4, True),
        (0, 1, False),
        (2, 6, True),      # aborted request: skipped by both rails
        (0, 2, True),
        (None, 7, True),   # evicted request: skipped by both rails
        (1, 5, True),
        (0, 3, True),
    ]
    assert_identical(name, jobs, devices, prepare, entries, now)


# --------------------------------------------------------------------- #
# Hypothesis differential: random assignments and cohorts
# --------------------------------------------------------------------- #
@st.composite
def response_scenario(draw):
    num_jobs = draw(st.integers(min_value=1, max_value=4))
    jobs = []
    for job_id in range(1, num_jobs + 1):
        requirement = draw(st.sampled_from(CATEGORIES))
        demand = draw(st.integers(min_value=1, max_value=8))
        jobs.append(make_job(job_id, requirement, demand=demand))
    num_devices = draw(st.integers(min_value=1, max_value=24))
    devices = diverse_devices(num_devices)
    # Per job: which devices were assigned (capped by demand), and whether
    # the request aborted before the cohort landed.
    assigned, aborted = [], []
    for job in jobs:
        ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_devices - 1),
                unique=True,
                max_size=job.demand_per_round,
            )
        )
        assigned.append(ids)
        aborted.append(draw(st.booleans()))
    # The cohort: unique (request, device) pairs drawn from the assigned
    # sets (one in-flight response per device per request), plus entries
    # for an evicted request, in random interleaved order.
    pool = [
        (job_index, device_index)
        for job_index, ids in enumerate(assigned)
        for device_index in ids
    ]
    picks = draw(
        st.lists(
            st.sampled_from(pool) if pool else st.nothing(),
            unique=True,
            max_size=len(pool),
        )
    )
    entries = [
        (job_index, device_index, draw(st.booleans()))
        for job_index, device_index in picks
    ]
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        entries.append(
            (None, draw(st.integers(0, num_devices - 1)), True)
        )
    entries = draw(st.permutations(entries))
    now = draw(st.sampled_from(DAY_BOUNDARY_TIMES))
    return jobs, devices, assigned, aborted, entries, now


def run_random_scenario(name, scene):
    jobs, devices, assigned, aborted, entries, now = scene

    def prepare(policy, requests):
        for request, ids, closed in zip(requests, assigned, aborted):
            for device_index in ids:
                request.record_assignment(devices[device_index].device_id, 1.0)
            if closed:
                request.state = RequestState.ABORTED
                policy.on_request_closed(request, 5.0)

    assert_identical(name, jobs, devices, prepare, entries, now)


@given(response_scenario())
@settings(max_examples=60, deadline=None)
def test_hypothesis_bulk_matches_scalar_venn(scene):
    run_random_scenario("venn", scene)


@given(
    st.sampled_from(
        ["random", "uniform_random", "client_driven_random", "fifo", "srsf"]
    ),
    response_scenario(),
)
@settings(max_examples=30, deadline=None)
def test_hypothesis_bulk_matches_scalar_for_baselines(name, scene):
    run_random_scenario(name, scene)


# --------------------------------------------------------------------- #
# Default fallback behaviour
# --------------------------------------------------------------------- #
class _CountingPolicy(BasePolicy):
    """A policy that overrides ``on_response`` but not the batch hook: the
    default ``on_response_batch`` must loop the override per device, in
    order."""

    name = "counting"

    def __init__(self):
        super().__init__()
        self.seen = []

    def assign(self, device, now):
        return None

    def on_response(self, request, device, now):
        self.seen.append((request.request_id, device.device_id, now))


def test_default_batch_hook_loops_overridden_on_response():
    policy = _CountingPolicy()
    request = make_request(4)
    devices = [make_device(device_id=i) for i in (3, 1, 2)]
    policy.on_response_batch(request, devices, 7.0)
    assert policy.seen == [(1, 3, 7.0), (1, 1, 7.0), (1, 2, 7.0)]


def test_default_batch_hook_skips_without_override():
    """No override means the loop is skipped entirely — the engine's bulk
    rail must not pay a per-device python call for no-op policies."""
    policy, _ = build_policy("fifo", [make_job(1, GENERAL, demand=2)])
    assert type(policy).on_response.__qualname__.startswith(
        "SchedulingPolicy."
    )
    policy.on_response_batch(make_request(2), [make_device(device_id=1)], 3.0)


def test_recording_wrapper_preserves_batch_dispatch():
    """``RecordingPolicy`` forwards the response hooks via ``__getattr__``,
    so the override check evaluates against the *inner* policy's type."""
    inner = _CountingPolicy()
    wrapper = RecordingPolicy(inner)
    request = make_request(3)
    wrapper.on_response_batch(
        request, [make_device(device_id=5), make_device(device_id=6)], 9.0
    )
    assert inner.seen == [(1, 5, 9.0), (1, 6, 9.0)]


# --------------------------------------------------------------------- #
# record_responses_bulk protocol units
# --------------------------------------------------------------------- #
def test_bulk_record_matches_sequential_responses():
    seq = make_request(4)
    bulk = make_request(4)
    for request in (seq, bulk):
        request.record_assignments_bulk([10, 11, 12], 2.0)
    for device_id in (11, 10):
        seq.record_response(device_id, 6.0)
    bulk.record_responses_bulk([11, 10], 6.0)
    assert list(bulk.responses.items()) == list(seq.responses.items())


def test_bulk_record_rejects_unassigned_device():
    request = make_request(3)
    request.record_assignment(10, 2.0)
    with pytest.raises(ValueError):
        request.record_responses_bulk([10, 99], 6.0)
    # The failed batch must not have recorded a partial prefix.
    assert request.responses == {}
