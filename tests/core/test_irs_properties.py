"""Property-based tests for Algorithm 1 invariants and AtomIndex equivalence.

These pin the structural guarantees the indexed check-in fast path relies
on:

* the atom-to-group allocation is a *partition* (every atom eligible to at
  least one group is owned by exactly one group);
* with reallocation disabled, ownership is exactly scarcest-supply-first;
* the reallocation phase never increases the summed queue-length/supply
  ratio of the groups (the Appendix-D objective standing in for average
  scheduling delay);
* the :class:`~repro.core.atom_index.AtomIndex` yields *identical*
  device -> job candidate sequences as the pre-index linear scan, for known
  and unknown signatures alike, and every candidate it yields is eligible
  by construction.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.irs import _EPS, build_plan
from repro.core.job_group import JobGroupRegistry
from repro.core.requirements import (
    DEFAULT_CATEGORIES,
    AtomSpace,
    EligibilityRequirement,
)

#: Pool of requirements used to build randomised scenarios: the four paper
#: categories plus two data-domain requirements so that disjoint and
#: partially-overlapping eligible sets all occur.
REQUIREMENT_POOL = list(DEFAULT_CATEGORIES) + [
    EligibilityRequirement("kb_mid", min_cpu=0.3, data_domain="keyboard"),
    EligibilityRequirement("emoji_any", data_domain="emoji"),
]


def random_scenario(rng: np.random.Generator, demands, rate_values):
    """Build (groups, space, rates, queue_lengths) from hypothesis draws."""
    n_reqs = int(rng.integers(2, len(REQUIREMENT_POOL) + 1))
    picks = [REQUIREMENT_POOL[i] for i in rng.permutation(len(REQUIREMENT_POOL))[:n_reqs]]
    registry = JobGroupRegistry()
    for job_id, demand in enumerate(demands):
        req = picks[int(rng.integers(0, len(picks)))]
        registry.upsert_job(job_id, req, remaining_demand=demand)
    space = AtomSpace(picks)
    atoms = sorted(space.atoms, key=sorted)
    rates = {
        atom: rate_values[i % len(rate_values)]
        for i, atom in enumerate(atoms)
        if atom  # the empty signature has no eligible group
    }
    return registry, space, rates


SCENARIO = dict(
    demands=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=16),
    rate_values=st.lists(
        st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=8
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)


class TestAllocationPartition:
    @given(**SCENARIO)
    @settings(max_examples=80, deadline=None)
    def test_every_atom_assigned_to_exactly_one_group(self, demands, rate_values, seed):
        rng = np.random.default_rng(seed)
        registry, space, rates = random_scenario(rng, demands, rate_values)
        plan = build_plan(registry.groups(), space, rates)

        group_keys = [g.key for g in registry.groups()]
        eligible_union = set()
        for key in group_keys:
            eligible_union |= set(space.eligible_atoms(key))
        eligible_union |= {sig for sig in rates if any(k in sig for k in group_keys)}

        owners_of = {}
        for key, alloc in plan.allocations.items():
            for atom in alloc.allocated_atoms:
                owners_of.setdefault(atom, []).append(key)
        for atom, owners in owners_of.items():
            assert len(owners) == 1, f"atom {sorted(atom)} owned by {owners}"
        for atom in eligible_union:
            assert atom in owners_of, f"eligible atom {sorted(atom)} unallocated"

    @given(**SCENARIO)
    @settings(max_examples=60, deadline=None)
    def test_initial_allocation_is_scarcest_first(self, demands, rate_values, seed):
        """Without reallocation, every atom belongs to the scarcest (by
        estimated supply, ties by name) of its eligible groups."""
        rng = np.random.default_rng(seed)
        registry, space, rates = random_scenario(rng, demands, rate_values)
        plan = build_plan(registry.groups(), space, rates, reallocate=False)

        for key, alloc in plan.allocations.items():
            for atom in alloc.allocated_atoms:
                eligible = [
                    k
                    for k in plan.allocations
                    if atom in space.eligible_atoms(k) or k in atom
                ]
                scarcest = min(
                    eligible,
                    key=lambda k: (plan.allocations[k].supply_rate, k),
                )
                assert key == scarcest

    @given(**SCENARIO)
    @settings(max_examples=60, deadline=None)
    def test_reallocation_never_worsens_queue_supply_ratio(
        self, demands, rate_values, seed
    ):
        """The Appendix-D objective: summed queue-length / effective-supply
        ratio over groups must not increase when reallocation runs."""
        rng = np.random.default_rng(seed)
        registry, space, rates = random_scenario(rng, demands, rate_values)
        base = build_plan(registry.groups(), space, rates, reallocate=False)
        realloc = build_plan(registry.groups(), space, rates, reallocate=True)

        def objective(plan):
            total = 0.0
            for alloc in plan.allocations.values():
                denom = (
                    alloc.allocated_rate
                    if alloc.allocated_rate > _EPS
                    else alloc.supply_rate
                )
                total += alloc.queue_length / max(denom, _EPS)
            return total

        assert objective(realloc) <= objective(base) * (1 + 1e-9) + 1e-9


class TestAtomIndexEquivalence:
    @given(**SCENARIO)
    @settings(max_examples=80, deadline=None)
    def test_index_matches_legacy_scan(self, demands, rate_values, seed):
        """The indexed candidate list equals the pre-index linear flattening
        for every known atom and for random unknown signatures."""
        rng = np.random.default_rng(seed)
        registry, space, rates = random_scenario(rng, demands, rate_values)
        plan = build_plan(registry.groups(), space, rates)
        index = plan.index()

        signatures = list(space.atoms)
        # Random subsets of requirement names model signatures the atom
        # space never anticipated (e.g. surprising data-domain combos).
        names = sorted({g.key for g in registry.groups()})
        for _ in range(5):
            mask = rng.integers(0, 2, size=len(names)).astype(bool)
            signatures.append(frozenset(n for n, m in zip(names, mask) if m))

        for sig in signatures:
            legacy = [tuple(c) for c in plan.ordered_jobs_for(sig)]
            fast = [tuple(c) for c in index.candidates(sig)]
            assert fast == legacy, f"divergence for signature {sorted(sig)}"

    @given(**SCENARIO)
    @settings(max_examples=40, deadline=None)
    def test_index_candidates_always_eligible(self, demands, rate_values, seed):
        """Every candidate group the index yields is contained in the
        signature — the guarantee that lets the fast path skip per-job
        eligibility checks."""
        rng = np.random.default_rng(seed)
        registry, space, rates = random_scenario(rng, demands, rate_values)
        plan = build_plan(registry.groups(), space, rates)
        index = plan.index()
        for sig in space.atoms:
            for group_key, _job_id in index.candidates(sig):
                assert group_key in sig
