"""Unit and property tests for the supply estimator (§4.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.supply import DEFAULT_WINDOW, SupplyEstimator

SIG_A = frozenset({"general"})
SIG_B = frozenset({"general", "high_performance"})


class TestSupplyEstimator:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SupplyEstimator(window=0)

    def test_empty_estimator_rate_zero(self):
        est = SupplyEstimator()
        assert est.rate(SIG_A, now=100.0) == 0.0
        assert est.total_checkins == 0

    def test_basic_rate(self):
        est = SupplyEstimator(window=100.0)
        for t in range(10):
            est.record_checkin(SIG_A, float(t * 10))
        # 10 events over a 90-second observed span.
        rate = est.rate(SIG_A, now=90.0)
        assert rate == pytest.approx(10 / 90.0)

    def test_rate_per_signature_is_independent(self):
        est = SupplyEstimator(window=100.0)
        est.record_checkin(SIG_A, 0.0)
        est.record_checkin(SIG_B, 1.0)
        est.record_checkin(SIG_A, 2.0)
        assert est.count_in_window(SIG_A, 10.0) == 2
        assert est.count_in_window(SIG_B, 10.0) == 1

    def test_old_events_pruned(self):
        est = SupplyEstimator(window=50.0)
        est.record_checkin(SIG_A, 0.0)
        est.record_checkin(SIG_A, 10.0)
        est.record_checkin(SIG_A, 100.0)
        assert est.count_in_window(SIG_A, 100.0) == 1

    def test_out_of_order_rejected(self):
        est = SupplyEstimator()
        est.record_checkin(SIG_A, 50.0)
        with pytest.raises(ValueError):
            est.record_checkin(SIG_A, 10.0)

    def test_rate_for_atoms_sums(self):
        est = SupplyEstimator(window=100.0)
        for t in range(0, 100, 10):
            est.record_checkin(SIG_A if t % 20 == 0 else SIG_B, float(t))
        total = est.rate_for_atoms([SIG_A, SIG_B], now=95.0)
        assert total == pytest.approx(est.rate(SIG_A, 95.0) + est.rate(SIG_B, 95.0))

    def test_rate_for_atoms_deduplicates(self):
        est = SupplyEstimator(window=100.0)
        est.record_checkin(SIG_A, 1.0)
        one = est.rate_for_atoms([SIG_A], now=10.0)
        two = est.rate_for_atoms([SIG_A, frozenset(SIG_A)], now=10.0)
        assert one == pytest.approx(two)

    def test_prior_rates_used_before_observations(self):
        est = SupplyEstimator(window=100.0, prior_rates={SIG_A: 0.5})
        assert est.rate(SIG_A, now=0.0) == pytest.approx(0.5)

    def test_prior_blended_out_as_window_fills(self):
        est = SupplyEstimator(window=100.0, prior_rates={SIG_A: 100.0})
        for t in range(0, 100, 2):
            est.record_checkin(SIG_A, float(t))
        # Window almost full: the empirical rate (~0.5/s) should dominate the
        # absurd prior of 100/s.
        assert est.rate(SIG_A, now=99.0) < 10.0

    def test_rates_returns_all_signatures(self):
        est = SupplyEstimator(prior_rates={SIG_B: 0.1})
        est.record_checkin(SIG_A, 5.0)
        rates = est.rates(now=10.0)
        assert SIG_A in rates and SIG_B in rates

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rate_is_nonnegative_and_bounded(self, times):
        """Property: the rate never goes negative and never exceeds the
        count of events divided by the minimum effective span (1 second)."""
        est = SupplyEstimator(window=DEFAULT_WINDOW)
        for t in sorted(times):
            est.record_checkin(SIG_A, t)
        now = max(times)
        rate = est.rate(SIG_A, now)
        assert rate >= 0.0
        assert rate <= len(times)

    @given(
        n_a=st.integers(min_value=0, max_value=50),
        n_b=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_checkins_means_higher_rate(self, n_a, n_b):
        """Property: within one window, more check-ins => a larger rate."""
        est = SupplyEstimator(window=1000.0)
        t = 0.0
        for i in range(n_a):
            est.record_checkin(SIG_A, t)
            t += 1.0
        for i in range(n_b):
            est.record_checkin(SIG_B, t)
            t += 1.0
        now = max(t, 1.0)
        rate_a, rate_b = est.rate(SIG_A, now), est.rate(SIG_B, now)
        if n_a > n_b:
            assert rate_a >= rate_b
        elif n_b > n_a:
            assert rate_b >= rate_a


class TestSignatureVersion:
    """The observed-signature version the incremental plan maintainer
    caches eligible-atom sets against."""

    def test_version_bumps_only_on_new_signatures(self):
        est = SupplyEstimator(window=1000.0)
        v0 = est.signature_version
        est.record_checkin(SIG_A, 1.0)
        assert est.signature_version == v0 + 1
        est.record_checkin(SIG_A, 2.0)
        est.record_checkin(SIG_A, 3.0)
        assert est.signature_version == v0 + 1  # repeat: set unchanged
        est.record_checkin(SIG_B, 4.0)
        assert est.signature_version == v0 + 2

    def test_prior_signatures_count_at_init(self):
        est = SupplyEstimator(window=1000.0, prior_rates={SIG_A: 0.5})
        v0 = est.signature_version
        # A check-in for a signature already known through the prior does
        # not grow the observed set.
        est.record_checkin(SIG_A, 1.0)
        assert est.signature_version == v0
        est.record_checkin(SIG_B, 2.0)
        assert est.signature_version == v0 + 1

    def test_unchanged_version_means_unchanged_rate_keys(self):
        est = SupplyEstimator(window=1000.0)
        est.record_checkin(SIG_A, 1.0)
        est.record_checkin(SIG_B, 2.0)
        version = est.signature_version
        keys = set(est.rates(10.0))
        est.record_checkin(SIG_A, 11.0)
        est.record_checkin(SIG_B, 12.0)
        assert est.signature_version == version
        assert set(est.rates(20.0)) == keys
