"""Unit and property tests for the supply estimator (§4.4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.supply import DEFAULT_WINDOW, SupplyEstimator

SIG_A = frozenset({"general"})
SIG_B = frozenset({"general", "high_performance"})


class TestSupplyEstimator:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SupplyEstimator(window=0)

    def test_empty_estimator_rate_zero(self):
        est = SupplyEstimator()
        assert est.rate(SIG_A, now=100.0) == 0.0
        assert est.total_checkins == 0

    def test_basic_rate(self):
        est = SupplyEstimator(window=100.0)
        for t in range(10):
            est.record_checkin(SIG_A, float(t * 10))
        # 10 events over a 90-second observed span.
        rate = est.rate(SIG_A, now=90.0)
        assert rate == pytest.approx(10 / 90.0)

    def test_rate_per_signature_is_independent(self):
        est = SupplyEstimator(window=100.0)
        est.record_checkin(SIG_A, 0.0)
        est.record_checkin(SIG_B, 1.0)
        est.record_checkin(SIG_A, 2.0)
        assert est.count_in_window(SIG_A, 10.0) == 2
        assert est.count_in_window(SIG_B, 10.0) == 1

    def test_old_events_pruned(self):
        est = SupplyEstimator(window=50.0)
        est.record_checkin(SIG_A, 0.0)
        est.record_checkin(SIG_A, 10.0)
        est.record_checkin(SIG_A, 100.0)
        assert est.count_in_window(SIG_A, 100.0) == 1

    def test_out_of_order_rejected(self):
        est = SupplyEstimator()
        est.record_checkin(SIG_A, 50.0)
        with pytest.raises(ValueError):
            est.record_checkin(SIG_A, 10.0)

    def test_rate_for_atoms_sums(self):
        est = SupplyEstimator(window=100.0)
        for t in range(0, 100, 10):
            est.record_checkin(SIG_A if t % 20 == 0 else SIG_B, float(t))
        total = est.rate_for_atoms([SIG_A, SIG_B], now=95.0)
        assert total == pytest.approx(est.rate(SIG_A, 95.0) + est.rate(SIG_B, 95.0))

    def test_rate_for_atoms_deduplicates(self):
        est = SupplyEstimator(window=100.0)
        est.record_checkin(SIG_A, 1.0)
        one = est.rate_for_atoms([SIG_A], now=10.0)
        two = est.rate_for_atoms([SIG_A, frozenset(SIG_A)], now=10.0)
        assert one == pytest.approx(two)

    def test_prior_rates_used_before_observations(self):
        est = SupplyEstimator(window=100.0, prior_rates={SIG_A: 0.5})
        assert est.rate(SIG_A, now=0.0) == pytest.approx(0.5)

    def test_prior_blended_out_as_window_fills(self):
        est = SupplyEstimator(window=100.0, prior_rates={SIG_A: 100.0})
        for t in range(0, 100, 2):
            est.record_checkin(SIG_A, float(t))
        # Window almost full: the empirical rate (~0.5/s) should dominate the
        # absurd prior of 100/s.
        assert est.rate(SIG_A, now=99.0) < 10.0

    def test_rates_returns_all_signatures(self):
        est = SupplyEstimator(prior_rates={SIG_B: 0.1})
        est.record_checkin(SIG_A, 5.0)
        rates = est.rates(now=10.0)
        assert SIG_A in rates and SIG_B in rates

    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=200
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rate_is_nonnegative_and_bounded(self, times):
        """Property: the rate never goes negative and never exceeds the
        count of events divided by the minimum effective span (1 second)."""
        est = SupplyEstimator(window=DEFAULT_WINDOW)
        for t in sorted(times):
            est.record_checkin(SIG_A, t)
        now = max(times)
        rate = est.rate(SIG_A, now)
        assert rate >= 0.0
        assert rate <= len(times)

    @given(
        n_a=st.integers(min_value=0, max_value=50),
        n_b=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_checkins_means_higher_rate(self, n_a, n_b):
        """Property: within one window, more check-ins => a larger rate."""
        est = SupplyEstimator(window=1000.0)
        t = 0.0
        for i in range(n_a):
            est.record_checkin(SIG_A, t)
            t += 1.0
        for i in range(n_b):
            est.record_checkin(SIG_B, t)
            t += 1.0
        now = max(t, 1.0)
        rate_a, rate_b = est.rate(SIG_A, now), est.rate(SIG_B, now)
        if n_a > n_b:
            assert rate_a >= rate_b
        elif n_b > n_a:
            assert rate_b >= rate_a


class TestSignatureVersion:
    """The observed-signature version the incremental plan maintainer
    caches eligible-atom sets against."""

    def test_version_bumps_only_on_new_signatures(self):
        est = SupplyEstimator(window=1000.0)
        v0 = est.signature_version
        est.record_checkin(SIG_A, 1.0)
        assert est.signature_version == v0 + 1
        est.record_checkin(SIG_A, 2.0)
        est.record_checkin(SIG_A, 3.0)
        assert est.signature_version == v0 + 1  # repeat: set unchanged
        est.record_checkin(SIG_B, 4.0)
        assert est.signature_version == v0 + 2

    def test_prior_signatures_count_at_init(self):
        est = SupplyEstimator(window=1000.0, prior_rates={SIG_A: 0.5})
        v0 = est.signature_version
        # A check-in for a signature already known through the prior does
        # not grow the observed set.
        est.record_checkin(SIG_A, 1.0)
        assert est.signature_version == v0
        est.record_checkin(SIG_B, 2.0)
        assert est.signature_version == v0 + 1

    def test_unchanged_version_means_unchanged_rate_keys(self):
        est = SupplyEstimator(window=1000.0)
        est.record_checkin(SIG_A, 1.0)
        est.record_checkin(SIG_B, 2.0)
        version = est.signature_version
        keys = set(est.rates(10.0))
        est.record_checkin(SIG_A, 11.0)
        est.record_checkin(SIG_B, 12.0)
        assert est.signature_version == version
        assert set(est.rates(20.0)) == keys


class TestBucketAgingBoundary:
    """Differential tests of bucket aging against an exact sliding window.

    The estimator retires bucket ``b`` once ``(b + 1) * width <= now -
    window`` — the whole bucket lies strictly before the window start.  The
    consequences, pinned here as the estimator's documented contract:

    * no event still inside the closed window ``[now - window, now]`` is
      ever retired (the count never undershoots the exact window), and
    * events age out at most one bucket late (the count never overshoots
      the exact count by more than the events of one partially-expired
      bucket),

    including at exact ``k * bucket_width`` timestamps, where naive
    rounded-quotient day/bucket arithmetic is most likely to disagree with
    the fmod-based floor division both paths use.
    """

    WINDOW = 100.0
    BUCKETS = 10  # bucket_width = 10.0

    def _bounds(self, events, now, width):
        exact = sum(1 for t in events if t >= now - self.WINDOW)
        loose = sum(1 for t in events if t > now - self.WINDOW - width)
        return exact, loose

    def _check(self, events, queries):
        est = SupplyEstimator(window=self.WINDOW, num_buckets=self.BUCKETS)
        width = est.window / est.num_buckets
        events = sorted(events)
        cursor = 0
        for now in sorted(queries):
            while cursor < len(events) and events[cursor] <= now:
                est.record_checkin(SIG_A, events[cursor])
                cursor += 1
            got = est.count_in_window(SIG_A, now)
            exact, loose = self._bounds(events[:cursor], now, width)
            assert exact <= got <= loose, (
                f"count_in_window({now}) = {got} outside exact-window "
                f"bounds [{exact}, {loose}]"
            )

    def test_exact_multiple_of_bucket_width_boundaries(self):
        # Events and queries pinned to exact k * bucket_width timestamps:
        # an event at now - window (here 20.0 seen from 120.0) is exactly
        # on the window edge and must still be counted.
        events = [0.0, 10.0, 20.0, 30.0, 100.0]
        self._check(events, queries=[100.0, 110.0, 120.0, 130.0, 200.0])

    def test_event_on_window_edge_is_kept(self):
        est = SupplyEstimator(window=self.WINDOW, num_buckets=self.BUCKETS)
        est.record_checkin(SIG_A, 20.0)
        # now - window == 20.0 exactly: the event sits on the closed edge.
        assert est.count_in_window(SIG_A, 120.0) == 1
        # One bucket later the whole bucket [20, 30) has aged out.
        assert est.count_in_window(SIG_A, 130.0) == 0

    def test_float_boundary_just_below_multiple(self):
        # 29.999999999999996 is the largest float below 30.0: bucket 2,
        # not bucket 3 — the fmod-based floor must not round up.
        t = float.fromhex("0x1.dffffffffffffp+4")
        assert t < 30.0
        est = SupplyEstimator(window=self.WINDOW, num_buckets=self.BUCKETS)
        est.record_checkin(SIG_A, t)
        # Bucket [20, 30) retires once (2+1)*10 <= now - 100, i.e. at
        # now >= 130; at any query below that the event is still counted.
        assert est.count_in_window(SIG_A, 129.9999) == 1
        assert est.count_in_window(SIG_A, 130.0) == 0

    @given(
        events=st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=500.0),
                # Exact bucket multiples, the aging boundary.
                st.integers(min_value=0, max_value=50).map(lambda k: k * 10.0),
            ),
            max_size=60,
        ),
        query_offsets=st.lists(
            st.one_of(
                st.floats(min_value=0.0, max_value=200.0),
                st.integers(min_value=0, max_value=20).map(lambda k: k * 10.0),
            ),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_differential_vs_exact_window(self, events, query_offsets):
        if not events:
            return
        top = max(events)
        self._check(events, queries=[top + off for off in query_offsets])


class TestBatchRecordEquivalence:
    """``record_checkins_batch`` must leave bit-identical estimator state."""

    def _state(self, est):
        return (
            {sig: list(map(tuple, ring)) for sig, ring in est._buckets.items()},
            dict(est._counts),
            est.signature_version,
            est.total_checkins,
            est._first_event_time,
            est._last_event_time,
        )

    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.floats(min_value=0.0, max_value=400.0),
            ),
            min_size=1,
            max_size=50,
        ),
        split=st.integers(min_value=1, max_value=49),
    )
    @settings(max_examples=150, deadline=None)
    def test_batch_matches_scalar(self, data, split):
        import numpy as np

        table = [SIG_A, SIG_B, frozenset({"gpu"})]
        data = sorted(data, key=lambda pair: pair[1])
        scalar = SupplyEstimator(window=120.0, num_buckets=8)
        for sid, t in data:
            scalar.record_checkin(table[sid], t)
        batched = SupplyEstimator(window=120.0, num_buckets=8)
        for chunk in (data[:split], data[split:]):
            if not chunk:
                continue
            sids = np.array([sid for sid, _ in chunk], dtype=np.int64)
            times = np.array([t for _, t in chunk], dtype=np.float64)
            batched.record_checkins_batch(sids, times, table)
        assert self._state(batched) == self._state(scalar)
        for sig in table:
            now = data[-1][1] + 50.0
            assert batched.count_in_window(sig, now) == scalar.count_in_window(
                sig, now
            )
            assert batched.rate(sig, now) == scalar.rate(sig, now)

    def test_batch_rejects_unsorted_times(self):
        import numpy as np

        est = SupplyEstimator(window=100.0)
        with pytest.raises(ValueError):
            est.record_checkins_batch(
                np.array([0, 0]), np.array([5.0, 1.0]), [SIG_A]
            )

    def test_batch_rejects_time_regression(self):
        import numpy as np

        est = SupplyEstimator(window=100.0)
        est.record_checkin(SIG_A, 50.0)
        with pytest.raises(ValueError):
            est.record_checkins_batch(
                np.array([0]), np.array([10.0]), [SIG_A]
            )
