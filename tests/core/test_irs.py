"""Unit and property tests for Algorithm 1 (Intersection Resource Scheduling)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.irs import build_plan
from repro.core.job_group import JobGroupRegistry
from repro.core.requirements import (
    COMPUTE_RICH,
    DEFAULT_CATEGORIES,
    GENERAL,
    HIGH_PERFORMANCE,
    MEMORY_RICH,
    AtomSpace,
    EligibilityRequirement,
)

# The four atoms induced by the default categories.
ATOM_LOW = frozenset({"general"})
ATOM_CPU = frozenset({"general", "compute_rich"})
ATOM_MEM = frozenset({"general", "memory_rich"})
ATOM_HIGH = frozenset(
    {"general", "compute_rich", "memory_rich", "high_performance"}
)


def default_space() -> AtomSpace:
    return AtomSpace(DEFAULT_CATEGORIES)


def registry_with(jobs):
    """jobs: list of (job_id, requirement, demand)."""
    reg = JobGroupRegistry()
    for job_id, req, demand in jobs:
        reg.upsert_job(job_id, req, remaining_demand=demand)
    return reg


DEFAULT_RATES = {
    ATOM_LOW: 0.5,
    ATOM_CPU: 0.1,
    ATOM_MEM: 0.2,
    ATOM_HIGH: 0.2,
}


class TestBuildPlanBasics:
    def test_empty_groups_produce_empty_plan(self):
        plan = build_plan([], default_space(), DEFAULT_RATES)
        assert plan.group_order == []
        assert plan.atom_preferences == {}

    def test_group_order_is_scarcest_first(self):
        reg = registry_with(
            [
                (1, GENERAL, 10),
                (2, COMPUTE_RICH, 10),
                (3, HIGH_PERFORMANCE, 10),
            ]
        )
        plan = build_plan(reg.groups(), default_space(), DEFAULT_RATES)
        # Supply: high_perf 0.2 < compute 0.3 < general 1.0.
        assert plan.group_order == ["high_performance", "compute_rich", "general"]

    def test_job_order_within_group_is_smallest_demand_first(self):
        reg = registry_with(
            [
                (1, GENERAL, 50),
                (2, GENERAL, 5),
                (3, GENERAL, 20),
            ]
        )
        plan = build_plan(reg.groups(), default_space(), DEFAULT_RATES)
        assert plan.job_order["general"] == [2, 3, 1]

    def test_scarce_group_owns_its_only_atom(self):
        reg = registry_with(
            [
                (1, GENERAL, 10),
                (2, HIGH_PERFORMANCE, 10),
            ]
        )
        plan = build_plan(reg.groups(), default_space(), DEFAULT_RATES)
        # The high-performance atom is offered to the high-perf group first.
        assert plan.preference_for(ATOM_HIGH)[0] == "high_performance"
        # The low-end atom can only go to the general group.
        assert plan.preference_for(ATOM_LOW) == ["general"]

    def test_preferences_only_contain_eligible_groups(self):
        reg = registry_with(
            [
                (1, GENERAL, 10),
                (2, COMPUTE_RICH, 10),
                (3, MEMORY_RICH, 10),
                (4, HIGH_PERFORMANCE, 10),
            ]
        )
        plan = build_plan(reg.groups(), default_space(), DEFAULT_RATES)
        assert set(plan.preference_for(ATOM_CPU)) == {"general", "compute_rich"}
        assert set(plan.preference_for(ATOM_MEM)) == {"general", "memory_rich"}
        assert set(plan.preference_for(ATOM_LOW)) == {"general"}
        assert set(plan.preference_for(ATOM_HIGH)) == {
            "general",
            "compute_rich",
            "memory_rich",
            "high_performance",
        }

    def test_unknown_signature_falls_back_to_signature_members(self):
        reg = registry_with([(1, GENERAL, 10), (2, COMPUTE_RICH, 10)])
        plan = build_plan(reg.groups(), default_space(), DEFAULT_RATES)
        pref = plan.preference_for(frozenset({"compute_rich"}))
        assert pref == ["compute_rich"]

    def test_ordered_jobs_for_flattens_preference(self):
        reg = registry_with(
            [
                (1, GENERAL, 5),
                (2, GENERAL, 3),
                (3, HIGH_PERFORMANCE, 4),
            ]
        )
        plan = build_plan(reg.groups(), default_space(), DEFAULT_RATES)
        ordered = plan.ordered_jobs_for(ATOM_HIGH)
        # High-perf job first, then the general jobs by ascending demand.
        assert ordered[0] == ("high_performance", 3)
        assert [j for (_, j) in ordered[1:]] == [2, 1]


class TestReallocation:
    def test_longer_queue_with_scarce_allocation_steals_shared_atom(self):
        """A group with a tiny exclusive allocation and a long queue should
        pull the atoms it shares with a scarcer group (lines 10-23)."""
        jobs = [(i, COMPUTE_RICH, 10) for i in range(8)]
        jobs.append((100, HIGH_PERFORMANCE, 10))
        reg = registry_with(jobs)
        rates = {ATOM_LOW: 0.5, ATOM_CPU: 0.02, ATOM_MEM: 0.2, ATOM_HIGH: 0.2}
        plan = build_plan(reg.groups(), default_space(), rates)
        # compute_rich's queue/alloc ratio (8/0.02) far exceeds
        # high_performance's (1/0.2), so compute_rich takes the shared atom.
        assert plan.preference_for(ATOM_HIGH)[0] == "compute_rich"

    def test_short_queue_does_not_steal(self):
        jobs = [(1, COMPUTE_RICH, 10), (2, HIGH_PERFORMANCE, 10)]
        reg = registry_with(jobs)
        rates = {ATOM_LOW: 0.5, ATOM_CPU: 0.3, ATOM_MEM: 0.2, ATOM_HIGH: 0.05}
        plan = build_plan(reg.groups(), default_space(), rates)
        assert plan.preference_for(ATOM_HIGH)[0] == "high_performance"

    def test_reallocate_false_keeps_initial_allocation(self):
        jobs = [(i, COMPUTE_RICH, 10) for i in range(8)]
        jobs.append((100, HIGH_PERFORMANCE, 10))
        reg = registry_with(jobs)
        rates = {ATOM_LOW: 0.5, ATOM_CPU: 0.02, ATOM_MEM: 0.2, ATOM_HIGH: 0.2}
        plan = build_plan(reg.groups(), default_space(), rates, reallocate=False)
        assert plan.preference_for(ATOM_HIGH)[0] == "high_performance"

    def test_queue_length_override(self):
        jobs = [(1, COMPUTE_RICH, 10), (2, HIGH_PERFORMANCE, 10)]
        reg = registry_with(jobs)
        rates = {ATOM_LOW: 0.5, ATOM_CPU: 0.02, ATOM_MEM: 0.2, ATOM_HIGH: 0.2}
        plan = build_plan(
            reg.groups(),
            default_space(),
            rates,
            queue_lengths={"compute_rich": 50.0, "high_performance": 1.0},
        )
        assert plan.preference_for(ATOM_HIGH)[0] == "compute_rich"


class TestPlanProperties:
    @given(
        demands=st.lists(
            st.integers(min_value=1, max_value=500), min_size=1, max_size=20
        ),
        rates=st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_plan_invariants(self, demands, rates, seed):
        """Properties that must hold for any job mix and supply estimate:

        * every waiting job appears exactly once in its group's order;
        * every atom's preference list contains only eligible groups, without
          duplicates, and the owning group (if any) comes first;
        * the group order contains every group exactly once.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        reqs = list(DEFAULT_CATEGORIES)
        jobs = [
            (i, reqs[int(rng.integers(0, len(reqs)))], d)
            for i, d in enumerate(demands)
        ]
        reg = registry_with(jobs)
        atom_rates = {
            ATOM_LOW: rates[0],
            ATOM_CPU: rates[1],
            ATOM_MEM: rates[2],
            ATOM_HIGH: rates[3],
        }
        space = default_space()
        plan = build_plan(reg.groups(), space, atom_rates)

        group_keys = {g.key for g in reg.groups()}
        assert set(plan.group_order) == group_keys
        assert len(plan.group_order) == len(group_keys)

        for group in reg.groups():
            ordered = plan.job_order[group.key]
            expected = {j for (j, r, _) in jobs if r.name == group.key}
            assert set(ordered) == expected
            assert len(ordered) == len(expected)

        for atom, pref in plan.atom_preferences.items():
            assert len(pref) == len(set(pref))
            for key in pref:
                assert key in atom or key in group_keys
                # Eligibility: the atom must be eligible for the group.
                assert atom in space.eligible_atoms(key) or key in atom

    @given(
        n_scarce=st.integers(min_value=1, max_value=10),
        n_general=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_scarce_only_group_always_reachable(self, n_scarce, n_general):
        """A group whose requirement is strictly contained in another's must
        always appear in the preference list of its atoms (it can never be
        completely shut out by the containing group)."""
        jobs = [(i, HIGH_PERFORMANCE, 10) for i in range(n_scarce)]
        jobs += [(100 + i, GENERAL, 10) for i in range(n_general)]
        reg = registry_with(jobs)
        plan = build_plan(reg.groups(), default_space(), DEFAULT_RATES)
        assert "high_performance" in plan.preference_for(ATOM_HIGH)
