"""Unit tests for the core data types."""

from __future__ import annotations

import math

import pytest

from repro.core.requirements import GENERAL
from repro.core.types import (
    DeviceProfile,
    JobSpec,
    RequestState,
    ResourceRequest,
)
from tests.conftest import make_device, make_job


class TestDeviceProfile:
    def test_valid_construction(self):
        d = make_device(cpu=0.3, mem=0.7, speed=2.0, domains={"emoji"})
        assert d.cpu_score == 0.3
        assert d.memory_score == 0.7
        assert "emoji" in d.data_domains

    @pytest.mark.parametrize("cpu", [-0.1, 1.1])
    def test_cpu_out_of_range(self, cpu):
        with pytest.raises(ValueError):
            make_device(cpu=cpu)

    @pytest.mark.parametrize("mem", [-0.5, 2.0])
    def test_memory_out_of_range(self, mem):
        with pytest.raises(ValueError):
            make_device(mem=mem)

    def test_speed_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            make_device(speed=0.0)

    def test_reliability_out_of_range(self):
        with pytest.raises(ValueError):
            make_device(reliability=1.5)

    def test_hashable(self):
        d1 = make_device(device_id=1)
        d2 = make_device(device_id=1)
        assert d1 == d2
        assert hash(d1) == hash(d2)


class TestJobSpec:
    def test_total_demand(self):
        job = make_job(demand=20, rounds=5)
        assert job.total_demand == 100

    def test_min_reports_default_fraction(self):
        job = make_job(demand=10)
        assert job.min_reports == 8

    def test_min_reports_rounds_up(self):
        job = JobSpec(
            job_id=1,
            requirement=GENERAL,
            demand_per_round=7,
            num_rounds=1,
            min_report_fraction=0.8,
        )
        assert job.min_reports == math.ceil(0.8 * 7)

    def test_min_reports_at_least_one(self):
        job = JobSpec(
            job_id=1,
            requirement=GENERAL,
            demand_per_round=1,
            num_rounds=1,
            min_report_fraction=0.1,
        )
        assert job.min_reports == 1

    def test_default_name(self):
        job = make_job(job_id=42)
        assert job.name == "job-42"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"demand": 0},
            {"rounds": 0},
            {"deadline": 0.0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            make_job(**kwargs)

    def test_invalid_report_fraction(self):
        with pytest.raises(ValueError):
            JobSpec(
                job_id=1,
                requirement=GENERAL,
                demand_per_round=5,
                num_rounds=1,
                min_report_fraction=0.0,
            )


class TestResourceRequest:
    def _request(self, demand=3, submit=10.0):
        return ResourceRequest(
            request_id=1,
            job_id=7,
            demand=demand,
            submit_time=submit,
            deadline=submit + 600,
            min_reports=max(1, int(0.8 * demand)),
        )

    def test_initial_state(self):
        req = self._request()
        assert req.state is RequestState.PENDING
        assert req.remaining_demand == 3
        assert req.is_open

    def test_assignment_progression(self):
        req = self._request(demand=2)
        req.record_assignment(100, 11.0)
        assert req.remaining_demand == 1
        assert req.state is RequestState.PENDING
        req.record_assignment(101, 15.0)
        assert req.remaining_demand == 0
        assert req.state is RequestState.COLLECTING
        assert req.acquired_time == 15.0
        assert req.scheduling_delay == 5.0

    def test_over_assignment_rejected(self):
        req = self._request(demand=1)
        req.record_assignment(1, 11.0)
        with pytest.raises(ValueError):
            req.record_assignment(2, 12.0)

    def test_assignment_to_closed_request_rejected(self):
        req = self._request(demand=2)
        req.state = RequestState.ABORTED
        with pytest.raises(ValueError):
            req.record_assignment(1, 11.0)

    def test_response_requires_assignment(self):
        req = self._request(demand=2)
        with pytest.raises(ValueError):
            req.record_response(55, 20.0)

    def test_response_collection_time(self):
        req = self._request(demand=2)
        req.record_assignment(1, 12.0)
        req.record_assignment(2, 14.0)
        req.record_response(1, 20.0)
        req.record_response(2, 30.0)
        req.state = RequestState.COMPLETED
        req.close_time = 30.0
        assert req.response_collection_time == pytest.approx(16.0)
        assert req.duration == pytest.approx(20.0)

    def test_collection_time_none_when_aborted(self):
        req = self._request(demand=1)
        req.record_assignment(1, 12.0)
        req.state = RequestState.ABORTED
        req.close_time = 600.0
        assert req.response_collection_time is None
        assert req.duration == pytest.approx(590.0)

    def test_scheduling_delay_none_until_acquired(self):
        req = self._request(demand=2)
        req.record_assignment(1, 12.0)
        assert req.scheduling_delay is None
