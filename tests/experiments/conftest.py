"""Shared micro-config helpers for the experiment-driver tests.

The figure/table drivers default to presets sized for human runs; every
test here shrinks them to a population that simulates in well under a
second so whole driver sweeps stay in CI time budget.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.sim.engine import SimulationConfig
from repro.traces.device_trace import DiurnalConfig
from repro.traces.workloads import WorkloadConfig


def make_micro_config(seed: int = 7, num_jobs: int = 4) -> ExperimentConfig:
    """A config small enough that multi-run driver sweeps take seconds."""
    horizon = 6 * 3600.0
    return ExperimentConfig(
        name="micro",
        seed=seed,
        num_devices=150,
        num_jobs=num_jobs,
        horizon=horizon,
        workload=WorkloadConfig(
            rounds_scale=0.004,
            demand_scale=0.05,
            max_rounds=2,
            max_demand=8,
            min_rounds=1,
            min_demand=2,
            base_task_duration=30.0,
            mean_interarrival=400.0,
            deadline_min=1200.0,
            deadline_max=2400.0,
        ),
        availability=DiurnalConfig(horizon=horizon),
        simulation=SimulationConfig(horizon=horizon),
    )


@pytest.fixture
def micro_config():
    return make_micro_config()


@pytest.fixture
def micro_config_factory():
    return make_micro_config
