"""First dedicated tests for :mod:`repro.experiments.ablation`.

Micro-config smoke runs of the Figure-12/13/14 sweeps plus schema and
sanity assertions on the analytic solo-JCT estimator they rely on.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.ablation import (
    estimate_solo_jct,
    figure12_num_jobs,
    figure13_num_tiers,
    figure14_fairness_knob,
)
from repro.experiments.environment import build_environment


class TestSoloJctEstimate:
    def test_positive_and_scales_with_rounds(self, micro_config):
        env = build_environment(micro_config)
        job = env.workload.jobs[0]
        solo = estimate_solo_jct(job, env)
        assert solo > 0.0
        doubled = replace(job, num_rounds=job.num_rounds * 2)
        assert estimate_solo_jct(doubled, env) == pytest.approx(2.0 * solo)

    def test_larger_demand_never_cheaper(self, micro_config):
        env = build_environment(micro_config)
        job = env.workload.jobs[0]
        bigger = replace(job, demand_per_round=job.demand_per_round * 3)
        assert estimate_solo_jct(bigger, env) > estimate_solo_jct(job, env)


class TestFigure12:
    def test_speedup_per_job_count(self, micro_config):
        out = figure12_num_jobs(
            micro_config, job_counts=(2, 3), policies=("venn",)
        )
        assert set(out) == {2, 3}
        for speedups in out.values():
            assert set(speedups) == {"venn"}
            assert speedups["venn"] > 0.0


class TestFigure13:
    def test_speedup_per_tier_count(self, micro_config):
        out = figure13_num_tiers(micro_config, tier_counts=(1, 2), scenario="low")
        assert set(out) == {1, 2}
        for speedup in out.values():
            assert speedup > 0.0


class TestFigure14:
    def test_fairness_knob_schema(self, micro_config):
        out = figure14_fairness_knob(
            micro_config, epsilons=(0.0, 2.0), scenario="even"
        )
        assert set(out) == {0.0, 2.0}
        for speedup, fairness in out.values():
            assert speedup > 0.0
            assert 0.0 <= fairness <= 1.0
