"""Fault-tolerant sweep runner: one broken cell must not sink the sweep.

Covers the failed-row contract (provenance + error + traceback +
attempts), retry accounting, aggregation skipping failed rows, worker-count
byte-identity *with* a failing cell in the matrix, and the CLI exit code.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.aggregate import aggregate_rows
from repro.experiments import sweep
from repro.experiments.sweep import plan_cells, run_sweep

TINY_SCENARIOS = ("even", "flash_crowd")
TINY_POLICIES = ("random",)


@pytest.fixture(scope="module")
def tiny_cells():
    return plan_cells(TINY_SCENARIOS, 1, TINY_POLICIES, root_seed=7)


class TestFailedRows:
    def test_injected_crash_yields_failed_row_others_complete(self, tiny_cells):
        rows = run_sweep(tiny_cells, workers=1, inject_crash_cells=(0,))
        assert len(rows) == len(tiny_cells)
        failed, ok = rows[0], rows[1]
        assert failed["status"] == "failed"
        assert failed["cell"] == 0
        assert failed["scenario"] == tiny_cells[0].scenario
        assert failed["policy"] == tiny_cells[0].policy
        assert failed["entropy"] == tiny_cells[0].entropy
        assert "RuntimeError" in failed["error"]
        assert "injected sweep-cell crash" in failed["traceback"]
        assert failed["attempts"] == 1
        assert ok["status"] == "ok"
        assert ok["average_jct"] > 0

    def test_failed_row_is_json_serialisable(self, tiny_cells):
        rows = run_sweep(tiny_cells, workers=1, inject_crash_cells=(0,))
        assert json.loads(json.dumps(rows[0])) == rows[0]

    def test_retries_are_counted(self, tiny_cells):
        rows = run_sweep(
            tiny_cells, workers=1, inject_crash_cells=(0,), max_cell_retries=2
        )
        # The injected crash raises on every attempt: 1 try + 2 retries.
        assert rows[0]["attempts"] == 3
        assert rows[0]["status"] == "failed"

    def test_unknown_crash_cell_rejected(self, tiny_cells):
        with pytest.raises(ValueError, match="unknown cell"):
            run_sweep(tiny_cells, inject_crash_cells=(99,))

    def test_negative_retries_rejected(self, tiny_cells):
        with pytest.raises(ValueError, match="max_cell_retries"):
            run_sweep(tiny_cells, max_cell_retries=-1)


class TestWorkerIndependence:
    def test_bytes_identical_across_worker_counts_with_a_crash(
        self, tiny_cells, tmp_path
    ):
        """The acceptance property holds even when a cell fails: the failed
        row's bytes must not depend on whether it ran in a pool worker."""
        out1, out2 = tmp_path / "w1.jsonl", tmp_path / "w2.jsonl"
        rows1 = run_sweep(
            tiny_cells, workers=1, out_path=str(out1), inject_crash_cells=(1,)
        )
        rows2 = run_sweep(
            tiny_cells, workers=2, out_path=str(out2), inject_crash_cells=(1,)
        )
        assert rows1 == rows2
        assert out1.read_bytes() == out2.read_bytes()

    def test_incremental_flush_preserves_completed_rows(
        self, tiny_cells, tmp_path
    ):
        out = tmp_path / "sweep.jsonl"
        run_sweep(tiny_cells, workers=1, out_path=str(out))
        lines = out.read_text().splitlines()
        assert len(lines) == len(tiny_cells)
        # Sorted keys per line: the byte-reproducibility contract.
        for line in lines:
            row = json.loads(line)
            assert line == json.dumps(row, sort_keys=True)


class TestAggregationSkipsFailures:
    def test_failed_rows_excluded(self, tiny_cells):
        rows = run_sweep(tiny_cells, workers=1, inject_crash_cells=(0,))
        aggregates = aggregate_rows(rows)
        crashed = (tiny_cells[0].scenario, tiny_cells[0].policy)
        survived = (tiny_cells[1].scenario, tiny_cells[1].policy)
        assert crashed not in aggregates
        assert survived in aggregates

    def test_partial_scenario_keeps_surviving_seeds(self):
        cells = plan_cells(("even",), 2, TINY_POLICIES, root_seed=7)
        rows = run_sweep(cells, workers=1, inject_crash_cells=(1,))
        aggregates = aggregate_rows(rows)
        agg = aggregates[("even", "random")]
        assert agg.num_cells == 1


class TestCli:
    def test_exit_code_one_and_summary_on_failure(self, capsys, tmp_path):
        rc = sweep.main(
            [
                "--scenarios", "even",
                "--policies", "random",
                "--num-seeds", "1",
                "--inject-crash-cell", "0",
                "--out", str(tmp_path / "out.jsonl"),
            ]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "1 cell(s) failed" in captured.err

    def test_exit_code_zero_without_failures(self, capsys):
        rc = sweep.main(
            ["--scenarios", "even", "--policies", "random", "--num-seeds", "1"]
        )
        assert rc == 0
